//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this local crate
//! provides exactly the surface the workspace uses: `StdRng` seeded from a
//! `u64`, `Rng::gen` / `Rng::gen_range` / `Rng::gen_bool`, and
//! `distributions::Uniform` for `f64` and small integers. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality, deterministic, and
//! fast; streams differ from upstream `rand`, which no test relies on.

pub mod rngs {
    /// The standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// Types producible from raw generator output via `Rng::gen`.
pub trait Standard: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Range types usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here
                // (span << 2^64) and irrelevant to correctness.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The generator interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

pub mod distributions {
    use super::Rng;

    /// A value distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types [`Uniform`] can draw from.
    pub trait SampleUniform: PartialOrd + Copy {}
    impl SampleUniform for f64 {}
    impl SampleUniform for i32 {}
    impl SampleUniform for i64 {}
    impl SampleUniform for u32 {}
    impl SampleUniform for u64 {}
    impl SampleUniform for usize {}

    /// Uniform distribution over a range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Self { lo, hi, inclusive: false }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive: empty range");
            Self { lo, hi, inclusive: true }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            // For the inclusive case the closed endpoint has measure zero;
            // scaling the half-open unit sample is accurate enough.
            self.lo + unit * (self.hi - self.lo)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                #[inline]
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    let hi = self.hi as i128 + if self.inclusive { 1 } else { 0 };
                    let span = (hi - self.lo as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(i32, i64, u32, u64, usize);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let b = rng.gen_range(0..3u8);
            assert!(b < 3);
        }
    }

    #[test]
    fn inclusive_uniform_covers_full_small_int_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Uniform::new_inclusive(-2i32, 2i32);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = dist.sample(&mut rng);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all five values should appear");
    }
}
