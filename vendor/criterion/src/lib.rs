//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! measure-and-print harness: per benchmark it warms up briefly, then runs
//! timed batches until the configured measurement time elapses and reports
//! the best batch (ns/iter and, when a throughput is set, elements/s).
//! No statistics, plots, or baselines; the output is line-per-benchmark so
//! `cargo bench` remains scriptable.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), param) }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self { id: param.to_string() }
    }
}

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    measurement_time: Duration,
    /// Best observed seconds per iteration, collected by the group.
    best_secs_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, keeping the fastest batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: one call, plus enough calls to estimate batch size.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;

        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let secs = t0.elapsed().as_secs_f64() / batch as f64;
            if secs < best {
                best = secs;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_secs_per_iter = best;
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b =
            Bencher { measurement_time: self.measurement_time, best_secs_per_iter: f64::NAN };
        f(&mut b);
        self.report(&id, b.best_secs_per_iter);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.id.clone();
        self.bench_function(name, |b| f(b, input))
    }

    fn report(&self, id: &str, secs: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  ({:.3e} /s)", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>12.1} ns/iter{}", self.name, id, secs * 1e9, rate);
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
