//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API subset this
//! workspace uses, implemented over `std::sync` with parking_lot's
//! ergonomics (no poisoning — a poisoned std lock is recovered, matching
//! parking_lot's behavior of not propagating panics through locks).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Mutex::new(7usize);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 7, "lock is usable after a panic while held");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
