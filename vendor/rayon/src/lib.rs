//! Offline stand-in for `rayon`, backed by `std::thread::scope`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of rayon's API the workspace uses — `into_par_iter()` over
//! `Range<usize>` with `for_each` / `for_each_init`, plus
//! `ThreadPoolBuilder::build_global` for a configurable worker count.
//!
//! Work is split into contiguous chunks, one per worker thread; each worker
//! runs its chunk with a private `init()` state, which matches how the GEMM
//! `ic`-loop uses per-worker packing buffers. Threads are spawned per call
//! rather than pooled — for the matrix sizes where parallelism pays, spawn
//! cost is noise; a persistent pool can replace this without API changes.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads parallel iterators use.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced; the type
/// exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Record the requested worker count globally. Unlike upstream rayon
    /// this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// Conversion into a parallel iterator (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { start: self.start, end: self.end }
    }
}

impl ParRange {
    /// Run `op` on every index, with a per-worker state created by `init`.
    pub fn for_each_init<T, I, F>(self, init: I, op: F)
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize) + Sync,
    {
        let len = self.end.saturating_sub(self.start);
        if len == 0 {
            return;
        }
        let workers = current_num_threads().clamp(1, len);
        if workers == 1 {
            let mut state = init();
            for i in self.start..self.end {
                op(&mut state, i);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|s| {
            for w in 0..workers {
                let lo = self.start + w * chunk;
                let hi = (lo + chunk).min(self.end);
                if lo >= hi {
                    break;
                }
                let init = &init;
                let op = &op;
                s.spawn(move || {
                    let mut state = init();
                    for i in lo..hi {
                        op(&mut state, i);
                    }
                });
            }
        });
    }

    /// Run `op` on every index.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_init(|| (), |(), i| op(i));
    }
}

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        (0..100usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_init_creates_worker_private_state() {
        let total = AtomicUsize::new(0);
        (0..64usize).into_par_iter().for_each_init(
            || 0usize,
            |acc, _| {
                *acc += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_range_is_a_noop() {
        (5..5usize).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn build_global_sets_worker_count() {
        crate::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        crate::ThreadPoolBuilder::new().build_global().unwrap(); // reset
    }
}
