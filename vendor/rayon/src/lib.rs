//! Offline stand-in for `rayon`, backed by `std::thread::scope`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of rayon's API the workspace uses — `into_par_iter()` over
//! `Range<usize>` with `for_each` / `for_each_init`, the fork-join
//! primitives [`join`] and [`scope`], plus
//! `ThreadPoolBuilder::build_global` for a configurable worker count (the
//! `RAYON_NUM_THREADS` environment variable is honored, as upstream does).
//!
//! Work is split into contiguous chunks, one per worker thread; each worker
//! runs its chunk with a private `init()` state, which matches how the GEMM
//! `ic`-loop uses per-worker packing buffers. Threads are spawned per call
//! rather than pooled — for the matrix sizes where parallelism pays, spawn
//! cost is noise; a persistent pool can replace this without API changes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS`, read once per process (as upstream rayon does).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
    })
}

/// Number of worker threads parallel iterators use. Resolution order:
/// `ThreadPoolBuilder::build_global`, then `RAYON_NUM_THREADS`, then the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
///
/// With a single configured worker the calls run sequentially on the
/// current thread (no spawn); otherwise `b` runs on a scoped thread while
/// `a` runs inline. A panic in either closure propagates to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A fork-join scope: tasks spawned into it (including tasks spawned by
/// other tasks) all complete before [`scope`] returns.
pub struct Scope<'scope> {
    queue: Mutex<VecDeque<ScopeTask<'scope>>>,
    running: AtomicUsize,
    /// Signaled when a task finishes (it may have spawned more work) so
    /// idle workers can recheck the queue instead of spinning.
    idle: Condvar,
}

impl<'scope> Scope<'scope> {
    /// Queue `body` to run within the scope. Spawning from inside a
    /// running task is allowed.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.queue.lock().unwrap().push_back(Box::new(body));
        self.idle.notify_all();
    }

    /// Drain the queue on the current thread only.
    fn drain_sequential(&self) {
        loop {
            let task = self.queue.lock().unwrap().pop_front();
            match task {
                Some(task) => task(self),
                None => break,
            }
        }
    }
}

/// Decrements the running-task count and wakes idle workers on drop — on
/// the unwind path too, so a panicking task cannot strand its siblings in
/// the exit check.
struct RunningGuard<'a> {
    running: &'a AtomicUsize,
    idle: &'a Condvar,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.running.fetch_sub(1, Ordering::SeqCst);
        self.idle.notify_all();
    }
}

/// Create a fork-join scope, run `op`, then execute every spawned task over
/// the configured worker threads. Returns `op`'s result after all tasks
/// (including transitively spawned ones) have finished; a panic in any
/// task propagates to the caller once the workers have joined.
///
/// Unlike upstream rayon the spawned tasks do not start until `op` returns;
/// rayon makes no ordering guarantee callers could rely on, so the
/// difference is unobservable to well-formed users.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let sc = Scope {
        queue: Mutex::new(VecDeque::new()),
        running: AtomicUsize::new(0),
        idle: Condvar::new(),
    };
    let result = op(&sc);
    let queued = sc.queue.lock().unwrap().len();
    let workers = current_num_threads().min(queued.max(1));
    if workers <= 1 {
        sc.drain_sequential();
        return result;
    }
    std::thread::scope(|ts| {
        for _ in 0..workers {
            ts.spawn(|| loop {
                let mut queue = sc.queue.lock().unwrap();
                if let Some(task) = queue.pop_front() {
                    drop(queue);
                    sc.running.fetch_add(1, Ordering::SeqCst);
                    let _guard = RunningGuard { running: &sc.running, idle: &sc.idle };
                    task(&sc);
                    continue;
                }
                // A running task may still spawn more work; only quit once
                // the queue is empty and nothing runs. Otherwise sleep
                // until a task finishes (the timeout is a safety net
                // against wakeups notified between our check and wait).
                if sc.running.load(Ordering::SeqCst) == 0 {
                    break;
                }
                let _unused = sc.idle.wait_timeout(queue, Duration::from_millis(1)).unwrap();
            });
        }
    });
    result
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced; the type
/// exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Record the requested worker count globally. Unlike upstream rayon
    /// this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// Conversion into a parallel iterator (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { start: self.start, end: self.end }
    }
}

impl ParRange {
    /// Run `op` on every index, with a per-worker state created by `init`.
    pub fn for_each_init<T, I, F>(self, init: I, op: F)
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize) + Sync,
    {
        let len = self.end.saturating_sub(self.start);
        if len == 0 {
            return;
        }
        let workers = current_num_threads().clamp(1, len);
        if workers == 1 {
            let mut state = init();
            for i in self.start..self.end {
                op(&mut state, i);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|s| {
            for w in 0..workers {
                let lo = self.start + w * chunk;
                let hi = (lo + chunk).min(self.end);
                if lo >= hi {
                    break;
                }
                let init = &init;
                let op = &op;
                s.spawn(move || {
                    let mut state = init();
                    for i in lo..hi {
                        op(&mut state, i);
                    }
                });
            }
        });
    }

    /// Run `op` on every index.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_init(|| (), |(), i| op(i));
    }
}

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        (0..100usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_init_creates_worker_private_state() {
        let total = AtomicUsize::new(0);
        (0..64usize).into_par_iter().for_each_init(
            || 0usize,
            |acc, _| {
                *acc += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_range_is_a_noop() {
        (5..5usize).into_par_iter().for_each(|_| panic!("must not run"));
    }

    #[test]
    fn build_global_sets_worker_count() {
        crate::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        crate::ThreadPoolBuilder::new().build_global().unwrap(); // reset
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 6 * 7, || "right".len());
        assert_eq!(a, 42);
        assert_eq!(b, 5);
    }

    #[test]
    fn join_nests() {
        let ((a, b), c) = crate::join(|| crate::join(|| 1, || 2), || 3);
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn join_borrows_shared_state() {
        let total = AtomicUsize::new(0);
        crate::join(
            || total.fetch_add(10, Ordering::SeqCst),
            || total.fetch_add(32, Ordering::SeqCst),
        );
        assert_eq!(total.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn scope_runs_every_spawned_task_before_returning() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let out = crate::scope(|s| {
            for (i, hit) in hits.iter().enumerate() {
                s.spawn(move |_| {
                    hit.fetch_add(1, Ordering::SeqCst);
                });
                let _ = i;
            }
            "done"
        });
        assert_eq!(out, "done");
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let total = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..4 {
                s.spawn(|inner| {
                    total.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(|_| {
                        total.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 44, "4 outer + 4 nested tasks all ran");
    }

    #[test]
    fn empty_scope_is_a_noop() {
        let out = crate::scope(|_| 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn scope_task_panic_propagates_instead_of_hanging() {
        // A panicking task must not strand sibling workers in the exit
        // check: the scope joins everyone and re-raises the panic.
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        survivors.fetch_add(1, Ordering::SeqCst);
                    });
                }
                s.spawn(|_| panic!("task failure"));
            });
        }));
        assert!(result.is_err(), "the task panic reaches the caller");
    }
}
