//! Integration tests for the protocol-v2 pipelined serving path: many
//! requests in flight on one connection with out-of-order completion
//! matched by request id, slow-loris resistance of the readiness loops,
//! the zero-allocation warm ingest path, version negotiation, and the
//! `retry_busy` backoff helper against real backpressure.

use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{ArchSource, EngineConfig, FmmEngine, Routing};
use fmm_model::ArchParams;
use fmm_serve::protocol::{self, FrameKind, HEADER_LEN, VERSION, VERSION_V2};
use fmm_serve::{retry_busy, BatchPolicy, Client, ErrorCode, PipelinedClient};
use fmm_serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Engine pair pinned to the deterministic blocked-GEMM fallback route,
/// so served results are bitwise comparable to the local reference.
fn pinned_engines() -> (Arc<FmmEngine<f64>>, Arc<FmmEngine<f32>>) {
    let config = EngineConfig {
        parallel: true,
        arch: ArchSource::Fixed(ArchParams::paper_machine()),
        routing: Routing::Pinned {
            dims: (9, 9, 9),
            levels: 1,
            variant: fmm_engine::Variant::Naive,
        },
        ..EngineConfig::default()
    };
    (Arc::new(FmmEngine::<f64>::new(config.clone())), Arc::new(FmmEngine::<f32>::new(config)))
}

fn spawn_pinned(config: ServeConfig) -> ServerHandle {
    let (e64, e32) = pinned_engines();
    Server::spawn_with_engines(config, e64, e32).expect("bind loopback")
}

/// Pipeline a window of requests on ONE connection and collect responses
/// in an order shuffled away from submission order; every result must be
/// bitwise identical to the local blocked GEMM.
fn pipeline_shuffled_roundtrip(event_threads: usize) {
    let handle = spawn_pinned(ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(5),
            max_batch: 16,
            straggler_gap: Duration::from_millis(5),
        },
        event_threads,
        ..ServeConfig::default()
    });
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");

    let n = 12;
    let mut problems = Vec::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let a = fill::bench_workload(20 + i, 16, 2 * i as u64 + 1);
        let b = fill::bench_workload(16, 24, 2 * i as u64 + 2);
        ids.push(client.send(&a, &b).expect("send"));
        problems.push((a, b));
    }
    // Receive in an order decorrelated from submission: middle-out.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (i as i64 - n as i64 / 2).abs());
    for &i in &order {
        let c: Matrix<f64> = client.recv(ids[i]).expect("recv");
        let (a, b) = &problems[i];
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert_eq!((c.rows(), c.cols()), (20 + i, 24));
        assert!(
            norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12,
            "request {i} answered with the wrong matrix"
        );
    }

    let snap = handle.metrics().snapshot();
    assert_eq!(snap.responses, n as u64);
    assert!(
        snap.inflight_per_conn_max > 1,
        "pipelining depth gauge saw concurrent requests: {snap:?}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_responses_match_by_id_on_one_event_thread() {
    pipeline_shuffled_roundtrip(1);
}

#[test]
fn pipelined_responses_match_by_id_on_four_event_threads() {
    pipeline_shuffled_roundtrip(4);
}

#[test]
fn pipelined_dtypes_interleave_on_one_connection() {
    let handle = spawn_pinned(ServeConfig::default());
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");

    let a64 = fill::bench_workload(10, 8, 1);
    let b64 = fill::bench_workload(8, 12, 2);
    let a32 = fill::bench_workload_t::<f32>(6, 5, 3);
    let b32 = fill::bench_workload_t::<f32>(5, 7, 4);

    // f64 and f32 requests ride the same connection but route to
    // different dispatchers — completion order is up for grabs, ids
    // disambiguate.
    let id64 = client.send(&a64, &b64).expect("send f64");
    let id32 = client.send(&a32, &b32).expect("send f32");
    let c32: Matrix<f32> = client.recv(id32).expect("recv f32");
    let c64: Matrix<f64> = client.recv(id64).expect("recv f64");

    let r64 = fmm_gemm::reference::matmul(a64.as_ref(), b64.as_ref());
    let r32 = fmm_gemm::reference::matmul(a32.as_ref(), b32.as_ref());
    assert!(norms::rel_error(c64.as_ref(), r64.as_ref()) < 1e-12);
    assert!(norms::rel_error(c32.as_ref(), r32.as_ref()) < 1e-5);
    handle.shutdown();
}

#[test]
fn per_connection_inflight_cap_refuses_with_busy() {
    // A long batch window holds the first request in flight; with a
    // per-connection cap of 1, the second admission on the same
    // connection must be refused Busy while the first is pending.
    let handle = spawn_pinned(ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 8,
            straggler_gap: Duration::from_millis(300),
        },
        max_inflight_per_conn: 1,
        ..ServeConfig::default()
    });
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");
    let a = fill::bench_workload(8, 8, 1);
    let b = fill::bench_workload(8, 8, 2);
    let first = client.send(&a, &b).expect("send first");
    let second = client.send(&a, &b).expect("send second");
    // The refusal answers immediately (out of order, before the held
    // first response).
    let err = client.recv::<f64>(second).expect_err("second refused");
    assert!(err.is_busy(), "expected Busy, got {err}");
    let c: Matrix<f64> = client.recv(first).expect("first served");
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    assert_eq!(handle.metrics().snapshot().rejects_busy, 1);
    handle.shutdown();
}

#[test]
fn per_connection_response_budget_refuses_with_busy() {
    // Admission charges the *declared* response size, so a pipelining
    // connection cannot pin unbounded result memory before any response
    // exists. Each 8×8 f64 response costs 18 + 9 + 512 = 539 bytes; with
    // a 1024-byte cap the first request is admitted (idle connections
    // always make progress) and the second must be refused Busy while the
    // first is still being computed.
    let handle = spawn_pinned(ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 8,
            straggler_gap: Duration::from_millis(300),
        },
        max_conn_backlog_bytes: 1024,
        ..ServeConfig::default()
    });
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");
    let a = fill::bench_workload(8, 8, 31);
    let b = fill::bench_workload(8, 8, 32);
    let first = client.send(&a, &b).expect("send first");
    let second = client.send(&a, &b).expect("send second");
    let err = client.recv::<f64>(second).expect_err("second refused on byte budget");
    assert!(err.is_busy(), "expected Busy, got {err}");
    let c: Matrix<f64> = client.recv(first).expect("first served");
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    assert_eq!(handle.metrics().snapshot().rejects_busy, 1);

    // The budget is released with the response: the same connection gets
    // served again afterwards.
    let third = client.send(&a, &b).expect("send third");
    let c: Matrix<f64> = client.recv(third).expect("third served after budget release");
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    handle.shutdown();
}

#[test]
fn oversized_payload_cap_is_rejected_at_spawn() {
    // The wire header carries payload lengths as u32: a cap the header
    // cannot represent must be refused at spawn, not silently truncated
    // into stream desync at response time.
    let (e64, e32) = pinned_engines();
    let spawned = Server::spawn_with_engines(
        ServeConfig { max_payload_bytes: u32::MAX as usize, ..ServeConfig::default() },
        e64,
        e32,
    );
    match spawned {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(handle) => {
            handle.shutdown();
            panic!("u32-overflowing payload cap must not spawn");
        }
    }
}

#[test]
fn half_closed_peer_still_receives_inflight_response() {
    // A v1 peer that sends one request and immediately half-closes its
    // write side (shutdown(SHUT_WR)) while the request is held in a long
    // batch window: the read-paused connection must neither be torn down
    // nor spin the loop on the hangup — the response still arrives.
    let handle = spawn_pinned(ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(100),
            max_batch: 8,
            straggler_gap: Duration::from_millis(100),
        },
        ..ServeConfig::default()
    });
    let a = fill::bench_workload(6, 4, 21);
    let b = fill::bench_workload(4, 5, 22);
    let payload = protocol::encode_request(&a, &b);
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    protocol::write_frame(&mut s, FrameKind::Request, &payload).expect("send request");
    s.shutdown(std::net::Shutdown::Write).expect("half-close write side");
    let frame = protocol::read_frame(&mut s, 1 << 20).expect("response after half-close");
    assert_eq!(frame.kind, FrameKind::Response);
    let c = protocol::decode_response::<f64>(&frame.payload).expect("decode response");
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    handle.shutdown();
}

#[test]
fn slow_loris_writer_does_not_stall_other_connections() {
    let handle = spawn_pinned(ServeConfig::default());
    let addr = handle.addr();

    // The attacker trickles a valid v2 request one byte at a time and
    // reads its response in 3-byte sips.
    let a = fill::bench_workload(6, 4, 11);
    let b = fill::bench_workload(4, 5, 12);
    let payload = protocol::encode_request(&a, &b);
    let mut wire = Vec::new();
    protocol::write_frame_v(&mut wire, VERSION_V2, 77, FrameKind::Request, &payload)
        .expect("encode");

    let loris = thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect loris");
        for byte in wire {
            s.write_all(&[byte]).expect("dribble");
            s.flush().expect("flush");
            thread::sleep(Duration::from_micros(300));
        }
        // Read the full response in tiny chunks.
        let mut got = Vec::new();
        let mut chunk = [0u8; 3];
        let want = protocol::HEADER_LEN_V2 + protocol::RESPONSE_PRELUDE + 6 * 5 * 8;
        while got.len() < want {
            let n = s.read(&mut chunk).expect("sip");
            assert!(n > 0, "server hung up mid-response");
            got.extend_from_slice(&chunk[..n]);
        }
        got
    });

    // Meanwhile this connection must keep being served bit-exactly.
    let mut client = Client::connect(addr).expect("connect victim");
    for i in 0..8u64 {
        let a = fill::bench_workload(12, 10, 100 + i);
        let b = fill::bench_workload(10, 9, 200 + i);
        let c = client.multiply(&a, &b).expect("service while loris drips");
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    }

    let response = loris.join().expect("loris thread");
    // The trickled request itself was answered correctly: v2 header
    // echoing id 77, then the exact product bytes.
    assert_eq!(&response[..4], protocol::MAGIC.as_slice());
    assert_eq!(response[4], VERSION_V2);
    assert_eq!(response[5], FrameKind::Response as u8);
    let id = u64::from_le_bytes(response[HEADER_LEN..protocol::HEADER_LEN_V2].try_into().unwrap());
    assert_eq!(id, 77);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    let body = &response[protocol::HEADER_LEN_V2..];
    let c = protocol::decode_response::<f64>(body).expect("decode trickled response");
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    handle.shutdown();
}

#[test]
fn warm_path_serves_requests_without_allocating_payload_buffers() {
    let handle = spawn_pinned(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let a = fill::bench_workload(16, 12, 5);
    let b = fill::bench_workload(12, 14, 6);

    let misses = |stats: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix("fmm_serve_pool_f64_misses "))
            .expect("pool miss counter rendered")
            .parse()
            .expect("counter is a number")
    };

    // Warm the pool: the first request allocates A, B, and C buffers.
    client.multiply(&a, &b).expect("warm-up");
    let cold_misses = misses(&handle.render_stats());
    assert!(cold_misses >= 3, "cold path allocated operands and result: {cold_misses}");

    // Steady state: same shape, every buffer comes from the pool — the
    // miss counter must not move, which proves zero heap allocations per
    // request for payload buffers.
    for _ in 0..10 {
        let c = client.multiply(&a, &b).expect("warm request");
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
    }
    let warm_misses = misses(&handle.render_stats());
    assert_eq!(
        warm_misses, cold_misses,
        "warm-path requests allocated payload buffers (pool misses grew)"
    );
    handle.shutdown();
}

#[test]
fn v2_server_answers_v1_clients_in_v1_frames() {
    let handle = spawn_pinned(ServeConfig::default());
    let addr = handle.addr();

    // Raw v1 ping: the reply header must be a 10-byte v1 header (version
    // byte 1), NOT a v2 header — a v1 client reads it unmodified.
    let mut raw = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut raw, FrameKind::Ping, b"negotiate").expect("v1 ping");
    let mut header = [0u8; HEADER_LEN];
    raw.read_exact(&mut header).expect("v1 reply header");
    assert_eq!(&header[..4], protocol::MAGIC.as_slice());
    assert_eq!(header[4], VERSION, "v1 request answered with a v1 frame");
    assert_eq!(header[5], FrameKind::Pong as u8);
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
    assert_eq!(len, b"negotiate".len());
    let mut payload = vec![0u8; len];
    raw.read_exact(&mut payload).expect("v1 reply payload");
    assert_eq!(payload, b"negotiate");

    // An unknown version byte gets the typed UnsupportedVersion error
    // naming both supported versions.
    let mut bad = TcpStream::connect(addr).expect("connect");
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&protocol::MAGIC);
    header[4] = 9;
    header[5] = FrameKind::Ping as u8;
    bad.write_all(&header).expect("bad version header");
    let frame = protocol::read_frame(&mut bad, 1 << 16).expect("typed error back");
    assert_eq!(frame.kind, FrameKind::Error);
    let (code, message) = protocol::decode_error(&frame.payload);
    assert_eq!(code, ErrorCode::UnsupportedVersion);
    assert!(message.contains("v1 and v2"), "{message}");
    handle.shutdown();
}

#[test]
fn retry_busy_rides_out_real_backpressure() {
    // A 1-deep queue with one-at-a-time dispatch: a concurrent flood
    // must see Busy refusals, and retry_busy must carry every request
    // through anyway.
    let handle = spawn_pinned(ServeConfig {
        batch: BatchPolicy { window: Duration::ZERO, max_batch: 1, straggler_gap: Duration::ZERO },
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let flood = 8;
    thread::scope(|s| {
        for t in 0..flood {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let a = fill::bench_workload(40, 40, 1000 + t);
                let b = fill::bench_workload(40, 40, 2000 + t);
                let c = retry_busy(12, Duration::from_millis(2), t, || client.multiply(&a, &b))
                    .expect("retries exhausted while the queue stayed full");
                let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);
            });
        }
    });
    let snap = handle.metrics().snapshot();
    assert_eq!(snap.responses, flood, "every flooded request eventually served: {snap:?}");
    handle.shutdown();
}
