//! Proof that the warm serving path stays allocation-free with tracing
//! enabled. Lives in its own integration-test binary (= its own process)
//! because the proof reads process-global `fmm_obs` counters that other
//! tests would perturb.

use fmm_engine::{ArchSource, EngineConfig, FmmEngine, Routing};
use fmm_model::ArchParams;
use fmm_serve::{Client, ServeConfig, Server};
use std::sync::Arc;

#[test]
fn warm_serving_path_allocates_nothing_with_tracing_on() {
    // Single event loop + single engine worker: every span-recording
    // thread (loop 0, the f64 dispatcher) is exercised by the warmup, so
    // a flat ring count afterwards proves the warm path never allocates
    // a recorder ring — and flat pool misses prove the payload path never
    // allocates a buffer.
    let engine_config = EngineConfig {
        parallel: true,
        workers: 1,
        arch: ArchSource::Fixed(ArchParams::paper_machine()),
        routing: Routing::Model,
        ..EngineConfig::default()
    };
    let handle = Server::spawn_with_engines(
        ServeConfig { trace: true, event_threads: 1, ..ServeConfig::default() },
        Arc::new(FmmEngine::<f64>::new(engine_config.clone())),
        Arc::new(FmmEngine::<f32>::new(engine_config)),
    )
    .expect("bind loopback");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let a = fmm_dense::fill::bench_workload(48, 48, 1);
    let b = fmm_dense::fill::bench_workload(48, 48, 2);

    // Warmup: create the per-thread recorder rings, fill the buffer
    // pools, and let the engine build its decision/plan/arena caches.
    for _ in 0..6 {
        client.multiply(&a, &b).expect("warmup multiply");
    }

    let rings_warm = fmm_obs::trace::ring_allocations();
    let events_warm = fmm_obs::trace::events_recorded();
    let pool_misses_warm = pool_misses(&handle);
    assert!(rings_warm > 0, "tracing on but no recorder ring was ever created");
    assert!(events_warm > 0, "tracing on but no span was recorded");

    for _ in 0..20 {
        client.multiply(&a, &b).expect("warm multiply");
    }

    assert_eq!(
        fmm_obs::trace::ring_allocations(),
        rings_warm,
        "warm serving allocated a new recorder ring"
    );
    assert_eq!(pool_misses(&handle), pool_misses_warm, "warm serving allocated a payload buffer");
    assert!(
        fmm_obs::trace::events_recorded() > events_warm,
        "tracing stayed on but the warm runs recorded no spans"
    );
    handle.shutdown();
}

/// Ingest-pool misses for both dtypes, read from the registry snapshot
/// the StatsJson frame exports.
fn pool_misses(handle: &fmm_serve::ServerHandle) -> (i64, i64) {
    use fmm_core::json::Value;
    let Value::Object(root) = handle.stats_json() else { panic!("stats body is not an object") };
    let Some(Value::Object(counters)) = root.get("counters").cloned() else {
        panic!("no counters section")
    };
    let get = |name: &str| match counters.get(name) {
        Some(Value::Int(v)) => *v,
        other => panic!("counter {name} missing: {other:?}"),
    };
    (get("fmm_serve_pool_f64_misses"), get("fmm_serve_pool_f32_misses"))
}
