//! End-to-end tests for the observability surface: the `StatsJson`
//! registry export (JSON and Prometheus), the plaintext `StatsRequest`
//! byte-format compatibility across protocol versions, typed errors for
//! unknown frame kinds, and the `Trace` span dump.

use fmm_core::json::{self, Value};
use fmm_engine::{ArchSource, EngineConfig, FmmEngine, Routing};
use fmm_model::ArchParams;
use fmm_serve::protocol::{self, ErrorCode, FrameKind, VERSION, VERSION_V2};
use fmm_serve::{Client, PipelinedClient, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn spawn_server(config: ServeConfig) -> ServerHandle {
    let engine_config = EngineConfig {
        parallel: true,
        arch: ArchSource::Fixed(ArchParams::paper_machine()),
        routing: Routing::Model,
        ..EngineConfig::default()
    };
    Server::spawn_with_engines(
        config,
        Arc::new(FmmEngine::<f64>::new(engine_config.clone())),
        Arc::new(FmmEngine::<f32>::new(engine_config)),
    )
    .expect("bind loopback")
}

fn run_multiplies(addr: std::net::SocketAddr, count: usize) {
    let mut client = Client::connect(addr).expect("connect");
    let a = fmm_dense::fill::bench_workload(48, 40, 1);
    let b = fmm_dense::fill::bench_workload(40, 44, 2);
    for _ in 0..count {
        client.multiply(&a, &b).expect("served multiply");
    }
}

/// Walk `histograms.<name>` in the parsed StatsJson body.
fn histogram<'v>(stats: &'v Value, name: &str) -> &'v Value {
    let Value::Object(root) = stats else { panic!("stats body is not an object") };
    let Some(Value::Object(hists)) = root.get("histograms") else {
        panic!("no histograms section in {root:?}")
    };
    hists.get(name).unwrap_or_else(|| panic!("histogram {name} missing; have {:?}", hists.keys()))
}

fn hist_field(hist: &Value, key: &str) -> i64 {
    let Value::Object(obj) = hist else { panic!("histogram is not an object") };
    match obj.get(key) {
        Some(Value::Int(v)) => *v,
        other => panic!("histogram field {key} missing or non-integer: {other:?}"),
    }
}

#[test]
fn stats_json_reports_per_phase_histograms() {
    let handle = spawn_server(ServeConfig::default());
    run_multiplies(handle.addr(), 8);

    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = client.stats_json().expect("stats json");
    let stats = json::parse(&body).expect("valid JSON body");

    // Serve-side phase histograms: every request since boot is counted.
    for name in ["fmm_serve_latency_nanos", "fmm_serve_queue_wait_nanos", "fmm_serve_service_nanos"]
    {
        let h = histogram(&stats, name);
        assert!(hist_field(h, "count") >= 8, "{name} undercounted: {h:?}");
        let (p50, p99, max) =
            (hist_field(h, "p50_nanos"), hist_field(h, "p99_nanos"), hist_field(h, "max_nanos"));
        assert!(p50 > 0 && p50 <= p99 && p99 <= max, "{name} quantiles inconsistent: {h:?}");
    }
    // Compute-side split from the process-global registry: the GEMM
    // driver attributes pack vs kernel time on every block call.
    for name in ["fmm_gemm_pack_nanos", "fmm_gemm_kernel_nanos"] {
        let h = histogram(&stats, name);
        assert!(hist_field(h, "count") > 0, "{name} empty: {h:?}");
    }

    let Value::Object(root) = &stats else { unreachable!() };
    let Some(Value::Object(counters)) = root.get("counters") else { panic!("no counters") };
    assert!(
        matches!(counters.get("fmm_serve_requests_total"), Some(Value::Int(n)) if *n >= 8),
        "request counter missing or low: {:?}",
        counters.get("fmm_serve_requests_total")
    );
    // Engine counters are mirrored into the registry via EngineStats
    // reflection at export time.
    assert!(
        matches!(counters.get("fmm_engine_f64_executions"), Some(Value::Int(n)) if *n >= 8),
        "engine mirror missing: {:?}",
        counters.get("fmm_engine_f64_executions")
    );
    handle.shutdown();
}

#[test]
fn prometheus_exposition_renders_the_same_registry() {
    let handle = spawn_server(ServeConfig::default());
    run_multiplies(handle.addr(), 2);

    let mut client = Client::connect(handle.addr()).expect("connect");
    let text = client.stats_prometheus().expect("prometheus exposition");
    for needle in [
        "# TYPE fmm_serve_requests_total counter",
        "# TYPE fmm_serve_latency_nanos summary",
        "fmm_serve_latency_nanos{quantile=\"0.99\"}",
        "fmm_serve_latency_nanos_count",
        "fmm_gemm_kernel_nanos{quantile=\"0.5\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in exposition:\n{text}");
    }
    handle.shutdown();
}

#[test]
fn plaintext_stats_byte_format_survives_on_both_protocol_versions() {
    let handle = spawn_server(ServeConfig::default());
    run_multiplies(handle.addr(), 3);

    // v1: the Client's StatsRequest must keep the historical key set,
    // including `latency_window_count` (now a lifetime count).
    let mut client = Client::connect(handle.addr()).expect("connect");
    let v1_body = client.stats().expect("v1 stats");
    for key in [
        "fmm_serve_requests_total 3",
        "fmm_serve_latency_window_count 3",
        "fmm_serve_latency_p99_ms ",
        "fmm_serve_queue_wait_p50_ms ",
        "fmm_serve_service_p99_ms ",
        "engine_f64 ",
    ] {
        assert!(v1_body.contains(key), "v1 stats body lost {key:?}:\n{v1_body}");
    }

    // v2: the same frame kind with a request id gets the same body.
    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = std::io::BufReader::new(stream);
    protocol::write_frame_v(&mut writer, VERSION_V2, 7, FrameKind::StatsRequest, b"")
        .expect("write v2 stats request");
    writer.flush().expect("flush");
    let reply = protocol::read_frame_any(&mut reader, 1 << 20).expect("v2 stats reply");
    assert_eq!((reply.kind, reply.request_id), (FrameKind::StatsReply, 7));
    let v2_body = String::from_utf8(reply.payload).expect("utf-8 stats");
    // The raw v2 fetch rides its own connection, so the live connection
    // counters legitimately differ; every other line must be identical.
    let stable = |body: &str| -> String {
        body.lines()
            .filter(|l| !l.starts_with("fmm_serve_connections"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&v1_body), stable(&v2_body), "stats body differs between wire versions");
    handle.shutdown();
}

#[test]
fn every_engine_stats_field_is_mirrored_into_stats_json() {
    // `EngineStats::fields()` is the reflection surface the server uses
    // to mirror engine counters into the registry; a field added to the
    // struct but forgotten in `fields()` fails the engine's own test,
    // and a mirrored name dropped by the server fails this one — for
    // both dtypes, so the f32 engine can't silently lose coverage.
    let handle = spawn_server(ServeConfig::default());
    run_multiplies(handle.addr(), 2);

    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = client.stats_json().expect("stats json");
    let stats = json::parse(&body).expect("valid JSON body");
    let Value::Object(root) = &stats else { panic!("stats body is not an object") };
    let Some(Value::Object(counters)) = root.get("counters") else { panic!("no counters") };
    for (name, _) in fmm_engine::EngineStats::default().fields() {
        for prefix in ["fmm_engine_f64_", "fmm_engine_f32_"] {
            let mirrored = format!("{prefix}{name}");
            assert!(
                matches!(counters.get(&mirrored), Some(Value::Int(n)) if *n >= 0),
                "EngineStats field {name:?} not mirrored as {mirrored:?}"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn plaintext_stats_bytes_are_unchanged_by_audit_counters() {
    // The v1/v2 plaintext `StatsRequest` body is a frozen byte format;
    // the decision-audit subsystem exports through StatsJson and
    // Prometheus only. Generate audit traffic, then prove the plaintext
    // key set is exactly what it was before the load and carries no
    // audit spill-over.
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let keys = |body: &str| -> Vec<String> {
        body.lines().filter_map(|l| l.split(' ').next().map(str::to_string)).collect()
    };
    let before = keys(&client.stats().expect("v1 stats before load"));

    run_multiplies(handle.addr(), 4); // populates the audit table
    let after_body = client.stats().expect("v1 stats after load");
    assert!(!after_body.contains("fmm_audit"), "audit leaked into plaintext:\n{after_body}");
    assert_eq!(keys(&after_body), before, "plaintext key set changed under audit load");

    // The raw v2 framing returns the same (audit-free) body.
    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = std::io::BufReader::new(stream);
    protocol::write_frame_v(&mut writer, VERSION_V2, 11, FrameKind::StatsRequest, b"")
        .expect("write v2 stats request");
    writer.flush().expect("flush");
    let reply = protocol::read_frame_any(&mut reader, 1 << 20).expect("v2 stats reply");
    let v2_body = String::from_utf8(reply.payload).expect("utf-8 stats");
    assert!(!v2_body.contains("fmm_audit"), "audit leaked into v2 plaintext:\n{v2_body}");
    assert_eq!(keys(&v2_body), before, "v2 plaintext key set changed under audit load");
    handle.shutdown();
}

#[test]
fn stats_json_exposes_per_class_audit_aggregates() {
    // The acceptance path: under end-to-end load, `stats --json` must
    // carry per-(shape-class, dtype) model-error histograms with nonzero
    // counts plus the full audit rows, and the Prometheus exposition the
    // same aggregates under sanitized names. The 48x40x44 workload
    // buckets to the 64x32x32 class; the audit table is process-global,
    // so assertions are lower bounds.
    let handle = spawn_server(ServeConfig::default());
    run_multiplies(handle.addr(), 8);

    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = client.stats_json().expect("stats json");
    let stats = json::parse(&body).expect("valid JSON body");

    let h = histogram(&stats, "fmm_audit_error_permille_64x32x32_f64");
    assert!(hist_field(h, "count") >= 8, "audit error histogram undercounted: {h:?}");
    // The exact-extrema satellite: min is reported and brackets p50.
    assert!(
        hist_field(h, "min_nanos") <= hist_field(h, "p50_nanos"),
        "exact min exceeds p50: {h:?}"
    );

    let Value::Object(root) = &stats else { unreachable!() };
    let Some(Value::Object(counters)) = root.get("counters") else { panic!("no counters") };
    assert!(
        matches!(counters.get("fmm_audit_samples_total"), Some(Value::Int(n)) if *n >= 8),
        "audit sample total missing or low: {:?}",
        counters.get("fmm_audit_samples_total")
    );
    let Some(Value::Object(audit)) = root.get("audit") else { panic!("no audit section") };
    let Some(Value::Object(entry)) = audit.get("64x32x32/f64") else {
        panic!("no 64x32x32/f64 audit row; have {:?}", audit.keys())
    };
    assert!(
        matches!(entry.get("samples"), Some(Value::Int(n)) if *n >= 8),
        "audit row undercounted: {entry:?}"
    );
    assert!(
        matches!(entry.get("measured_nanos"), Some(Value::Int(n)) if *n > 0),
        "audit row lost measured time: {entry:?}"
    );
    // Model routing attributes every sample to the `model` source, and
    // the representative decision string is recorded for the class.
    let Some(Value::Object(sources)) = entry.get("sources") else { panic!("no sources") };
    assert!(
        matches!(sources.get("model"), Some(Value::Int(n)) if *n >= 8),
        "model-routed samples missing: {sources:?}"
    );
    assert!(
        matches!(entry.get("chosen"), Some(Value::String(s)) if !s.is_empty()),
        "no representative decision recorded: {entry:?}"
    );

    let prom = client.stats_prometheus().expect("prometheus exposition");
    for needle in [
        "fmm_audit_samples_total ",
        "fmm_audit_samples_64x32x32_f64 ",
        "fmm_audit_error_permille_64x32x32_f64_count",
        "fmm_audit_error_permille_64x32x32_f64{quantile=\"0.5\"}",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in exposition:\n{prom}");
    }
    handle.shutdown();
}

#[test]
fn unknown_frame_kind_gets_a_typed_error() {
    // A client ahead of the server (e.g. sending StatsJson to a pre-obs
    // daemon) must get a typed Malformed error, not a hang or a panic.
    // Kind 99 is unknown to *this* server, which exercises exactly the
    // code path an old server takes for the newer kinds.
    let handle = spawn_server(ServeConfig::default());
    let stream = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = std::io::BufReader::new(stream);
    let mut header = protocol::encode_header(VERSION, FrameKind::Ping, 0, 0);
    header[5] = 99; // the kind byte
    writer.write_all(&header).expect("write bad kind");
    writer.flush().expect("flush");
    let reply = protocol::read_frame_any(&mut reader, 1 << 20).expect("error reply");
    assert_eq!(reply.kind, FrameKind::Error);
    let (code, message) = protocol::decode_error(&reply.payload);
    assert_eq!(code, ErrorCode::Malformed, "unknown kind must be Malformed: {message}");
    handle.shutdown();
}

#[test]
fn trace_dump_returns_per_request_phase_spans() {
    let handle = spawn_server(ServeConfig { trace: true, ..ServeConfig::default() });

    // Pipelined traffic so spans carry real (non-zero) request ids.
    let mut pipelined = PipelinedClient::connect(handle.addr()).expect("connect");
    let a = fmm_dense::fill::bench_workload(40, 32, 3);
    let b = fmm_dense::fill::bench_workload(32, 36, 4);
    let mut ids = Vec::new();
    for _ in 0..4 {
        ids.push(pipelined.send(&a, &b).expect("send"));
    }
    for id in &ids {
        let _: fmm_dense::Matrix<f64> = pipelined.recv(*id).expect("recv");
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    let body = client.trace(0).expect("trace dump");
    let value = json::parse(&body).expect("valid trace JSON");
    let Value::Array(events) = &value else { panic!("trace body is not an array") };
    assert!(!events.is_empty(), "tracing server recorded no spans");

    let mut kinds = std::collections::BTreeSet::new();
    let mut tagged = false;
    for event in events {
        let Value::Object(obj) = event else { panic!("span is not an object") };
        let Some(Value::String(kind)) = obj.get("kind") else { panic!("span without kind") };
        kinds.insert(kind.clone());
        if let Some(Value::Int(id)) = obj.get("request_id") {
            tagged |= ids.contains(&(*id as u64));
        }
        for key in ["start_nanos", "end_nanos"] {
            assert!(matches!(obj.get(key), Some(Value::Int(v)) if *v >= 0), "span lacks {key}");
        }
    }
    for kind in ["RequestRecv", "Admission", "QueueWait", "BatchForm", "ReplyFlush"] {
        assert!(kinds.contains(kind), "no {kind} span in {kinds:?}");
    }
    assert!(tagged, "no span carried one of the pipelined request ids {ids:?}");

    // `--last N` semantics: the budget bounds the dump.
    let bounded = client.trace(3).expect("bounded trace dump");
    let Value::Array(bounded) = json::parse(&bounded).expect("valid JSON") else {
        panic!("bounded trace body is not an array")
    };
    assert!(bounded.len() <= 3, "last=3 returned {} spans", bounded.len());
    handle.shutdown();
}
