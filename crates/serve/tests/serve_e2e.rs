//! End-to-end acceptance tests for the serving daemon: concurrent clients
//! over real loopback TCP, bit-exactness against the local blocked GEMM,
//! provable cross-request coalescing, typed error frames for hostile
//! input, admission-control backpressure, live stats, and clean shutdown.

use fmm_dense::{fill, norms, Matrix, Scalar};
use fmm_engine::{ArchSource, EngineConfig, FmmEngine, Routing};
use fmm_gemm::BlockingParams;
use fmm_model::ArchParams;
use fmm_serve::protocol::{self, ErrorCode, FrameKind, HEADER_LEN, MAGIC, VERSION};
use fmm_serve::{BatchPolicy, Client, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Engine pair for tests: parallel (so batches fan out), pinned paper
/// arch (no host calibration), model routing unless `pin_gemm`.
fn test_engines(pin_gemm: bool) -> (Arc<FmmEngine<f64>>, Arc<FmmEngine<f32>>) {
    let routing = if pin_gemm {
        // No registry algorithm has these partition dims, so every shape
        // takes the counted pinned-fallback path to plain blocked GEMM —
        // a deterministic, bitwise-reproducible route.
        Routing::Pinned { dims: (9, 9, 9), levels: 1, variant: fmm_engine::Variant::Naive }
    } else {
        Routing::Model
    };
    let config = EngineConfig {
        parallel: true,
        arch: ArchSource::Fixed(ArchParams::paper_machine()),
        routing,
        ..EngineConfig::default()
    };
    (Arc::new(FmmEngine::<f64>::new(config.clone())), Arc::new(FmmEngine::<f32>::new(config)))
}

fn spawn_server(config: ServeConfig, pin_gemm: bool) -> ServerHandle {
    let (e64, e32) = test_engines(pin_gemm);
    Server::spawn_with_engines(config, e64, e32).expect("bind loopback")
}

#[test]
fn concurrent_clients_get_bit_exact_gemm_results_for_both_dtypes() {
    // GEMM-pinned route: the served result must be *bitwise identical* to
    // the local blocked GEMM, even while requests coalesce into shared
    // batches (batching only re-partitions loop order across problems,
    // never within one problem's k-accumulation).
    let handle = spawn_server(
        ServeConfig {
            batch: BatchPolicy {
                window: Duration::from_millis(40),
                max_batch: 8,
                straggler_gap: Duration::from_millis(40),
            },
            ..ServeConfig::default()
        },
        true,
    );
    let addr = handle.addr();

    thread::scope(|s| {
        for t in 0..3u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (m, k, n) in [(37, 29, 41), (64, 64, 64), (96, 64, 80)] {
                    let a = fill::bench_workload(m, k, 2 * t + 1);
                    let b = fill::bench_workload(k, n, 2 * t + 2);
                    let c = client.multiply(&a, &b).expect("served f64");
                    let mut c_ref = Matrix::zeros(m, n);
                    fmm_gemm::gemm_with_params(
                        c_ref.as_mut(),
                        a.as_ref(),
                        b.as_ref(),
                        &BlockingParams::default(),
                    );
                    assert_eq!(c, c_ref, "f64 {m}x{k}x{n} not bit-exact (thread {t})");

                    let a32 = fill::bench_workload_t::<f32>(m, k, 3 * t + 1);
                    let b32 = fill::bench_workload_t::<f32>(k, n, 3 * t + 2);
                    let c32 = client.multiply(&a32, &b32).expect("served f32");
                    let mut c32_ref = Matrix::<f32>::zeros(m, n);
                    fmm_gemm::gemm_with_params(
                        c32_ref.as_mut(),
                        a32.as_ref(),
                        b32.as_ref(),
                        &BlockingParams::default(),
                    );
                    assert_eq!(c32, c32_ref, "f32 {m}x{k}x{n} not bit-exact (thread {t})");
                }
            });
        }
    });

    let (s64, s32) = handle.engine_stats();
    assert!(s64.pinned_fallbacks > 0 && s32.pinned_fallbacks > 0, "GEMM route was taken");
    handle.shutdown();
}

#[test]
fn model_routed_concurrent_traffic_is_correct_and_coalesces() {
    // A long window and simultaneous clients force provable coalescing:
    // the dispatcher opens a batch on the first arrival and holds the
    // window open long enough for the rest to join it.
    let clients = 4;
    let handle = spawn_server(
        ServeConfig {
            batch: BatchPolicy {
                window: Duration::from_millis(400),
                max_batch: clients,
                straggler_gap: Duration::from_millis(400),
            },
            ..ServeConfig::default()
        },
        false,
    );
    let addr = handle.addr();

    thread::scope(|s| {
        for t in 0..clients as u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let n = 48;
                let a = fill::bench_workload(n, n, 10 * t + 1);
                let b = fill::bench_workload(n, n, 10 * t + 2);
                let c = client.multiply(&a, &b).expect("served");
                let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                assert!(
                    norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                    "thread {t} result diverged"
                );
            });
        }
    });

    let snap = handle.metrics().snapshot();
    assert_eq!(snap.responses, clients as u64);
    assert!(snap.max_occupancy > 1, "no batch provably coalesced: {snap:?}");
    assert!(snap.mean_occupancy > 1.0, "mean occupancy must exceed 1: {snap:?}");
    assert!(snap.batches < clients as u64, "coalescing must merge dispatches: {snap:?}");

    // f32 traffic goes through its own queue and engine.
    let mut client = Client::connect(addr).expect("connect");
    let a = fill::bench_workload_t::<f32>(40, 24, 91);
    let b = fill::bench_workload_t::<f32>(24, 32, 92);
    let c = client.multiply(&a, &b).expect("served f32");
    let c_ref = fmm_gemm::reference::matmul(a.cast::<f64>().as_ref(), b.cast::<f64>().as_ref());
    let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.as_ref());
    let bound = <f32 as Scalar>::accuracy_bound(24, 2);
    assert!(err < bound, "f32 err {err} exceeds {bound}");

    let (s64, s32) = handle.engine_stats();
    assert!(s64.batch_items >= clients as u64);
    assert!(s32.batch_items >= 1);
    handle.shutdown();
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors_and_service_survives() {
    let handle =
        spawn_server(ServeConfig { max_payload_bytes: 1 << 16, ..ServeConfig::default() }, false);
    let addr = handle.addr();

    // 1. Garbage magic: typed error frame, then the connection closes
    //    (framing is unrecoverable).
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(b"XXXX");
        raw.write_all(&header).expect("write garbage header");
        let frame = protocol::read_frame(&mut raw, 1 << 16).expect("error frame back");
        assert_eq!(frame.kind, FrameKind::Error);
        let (code, message) = protocol::decode_error(&frame.payload);
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("magic"), "{message}");
        // EOF follows: the server dropped the connection.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("read eof");
        assert!(rest.is_empty());
    }

    // 2. Unsupported version byte.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4] = 77;
        raw.write_all(&header).expect("write bad version");
        let frame = protocol::read_frame(&mut raw, 1 << 16).expect("error frame back");
        let (code, _) = protocol::decode_error(&frame.payload);
        assert_eq!(code, ErrorCode::UnsupportedVersion);
    }

    // 3. Oversized declaration: refused before any allocation, typed
    //    Oversized, connection closes.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4] = VERSION;
        header[5] = FrameKind::Request as u8;
        header[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        raw.write_all(&header).expect("write oversized header");
        let frame = protocol::read_frame(&mut raw, 1 << 16).expect("error frame back");
        let (code, message) = protocol::decode_error(&frame.payload);
        assert_eq!(code, ErrorCode::Oversized);
        assert!(message.contains("cap"), "{message}");
    }

    // 4. Well-framed but malformed payload (unknown dtype): typed error,
    //    and the SAME connection keeps serving.
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut payload = vec![9u8]; // no such dtype
        payload.extend_from_slice(&[0u8; 12]);
        let reply = client.roundtrip(FrameKind::Request, &payload).expect("reply");
        assert_eq!(reply.kind, FrameKind::Error);
        let (code, message) = protocol::decode_error(&reply.payload);
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("dtype"), "{message}");

        // 5. Dimension/length mismatch on the same connection.
        let a = fill::bench_workload(4, 4, 1);
        let b = fill::bench_workload(4, 4, 2);
        let mut truncated = protocol::encode_request(&a, &b);
        truncated.truncate(truncated.len() - 8);
        let reply = client.roundtrip(FrameKind::Request, &truncated).expect("reply");
        assert_eq!(reply.kind, FrameKind::Error);

        // 6. A server-to-client kind sent by the client is refused and
        //    the connection still works.
        let reply = client.roundtrip(FrameKind::StatsReply, b"").expect("reply");
        assert_eq!(reply.kind, FrameKind::Error);

        // 7. The k = 0 attack: a 23-byte request whose declared *result*
        //    would be enormous. The response-side cap must refuse it
        //    before any allocation (a wedged dispatcher would hang the
        //    multiply below instead).
        let mut outer = vec![1u8];
        outer.extend_from_slice(&u32::MAX.to_le_bytes());
        outer.extend_from_slice(&0u32.to_le_bytes());
        outer.extend_from_slice(&u32::MAX.to_le_bytes());
        let reply = client.roundtrip(FrameKind::Request, &outer).expect("reply");
        assert_eq!(reply.kind, FrameKind::Error);
        let (code, message) = protocol::decode_error(&reply.payload);
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("response"), "{message}");

        // The server is still serving on this very connection.
        let c = client.multiply(&a, &b).expect("still serving");
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }

    let snap = handle.metrics().snapshot();
    assert!(snap.rejects_malformed >= 5, "every hostile frame was counted: {snap:?}");
    assert_eq!(snap.responses, 1);
    handle.shutdown();
}

#[test]
fn full_queue_rejects_with_busy_and_recovers() {
    // One-at-a-time dispatch with a single-slot queue: while the
    // dispatcher grinds one problem, at most one more may wait; the rest
    // of a concurrent flood must be refused with Busy.
    let handle = spawn_server(
        ServeConfig {
            batch: BatchPolicy {
                window: Duration::ZERO,
                max_batch: 1,
                straggler_gap: Duration::ZERO,
            },
            queue_capacity: 1,
            ..ServeConfig::default()
        },
        false,
    );
    let addr = handle.addr();

    let flood = 12;
    let mut successes = 0u64;
    let mut busys = 0u64;
    // Waves until at least one Busy is observed (the first wave all but
    // guarantees it: 12 concurrent requests against a 1-deep queue).
    for wave in 0..10 {
        let outcomes: Vec<Result<(), bool>> = thread::scope(|s| {
            let handles: Vec<_> = (0..flood)
                .map(|t| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let n = 64;
                        let a = fill::bench_workload(n, n, (wave * flood + t) as u64 + 1);
                        let b = fill::bench_workload(n, n, (wave * flood + t) as u64 + 2);
                        match client.multiply(&a, &b) {
                            Ok(c) => {
                                let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                                assert!(
                                    norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                                    "admitted request must still be correct"
                                );
                                Ok(())
                            }
                            Err(e) if e.is_busy() => Err(true),
                            Err(e) => panic!("unexpected failure: {e}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("flood thread")).collect()
        });
        for outcome in outcomes {
            match outcome {
                Ok(()) => successes += 1,
                Err(_) => busys += 1,
            }
        }
        if busys > 0 {
            break;
        }
    }
    assert!(busys > 0, "a 12-wide flood against a 1-deep queue must see backpressure");
    assert!(successes > 0, "admission control must not starve everything");

    let snap = handle.metrics().snapshot();
    assert_eq!(snap.rejects_busy, busys);
    assert_eq!(snap.responses, successes);

    // Backpressure is a transient refusal, not a failure state: a lone
    // request afterwards is served normally.
    let mut client = Client::connect(addr).expect("connect");
    let a = fill::bench_workload(32, 32, 997);
    let b = fill::bench_workload(32, 32, 998);
    let c = client.multiply(&a, &b).expect("serving after backpressure");
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    handle.shutdown();
}

#[test]
fn stats_frame_reports_counters_latency_and_engine_snapshots() {
    let handle = spawn_server(ServeConfig::default(), false);
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let a = fill::bench_workload(24, 24, 1);
    let b = fill::bench_workload(24, 24, 2);
    client.multiply(&a, &b).expect("served");
    let a32 = fill::bench_workload_t::<f32>(24, 24, 3);
    let b32 = fill::bench_workload_t::<f32>(24, 24, 4);
    client.multiply(&a32, &b32).expect("served f32");

    let body = client.stats().expect("stats");
    for needle in [
        "fmm_serve_requests_total 2",
        "fmm_serve_responses_total 2",
        "fmm_serve_pings_total 1",
        "fmm_serve_batches_total 2",
        "fmm_serve_batch_occupancy_mean 1.000",
        "fmm_serve_latency_p50_ms",
        "fmm_serve_latency_p99_ms",
        "fmm_serve_queue_depth_f64 0",
        "engine_f64 executions=1",
        "engine_f32 executions=1",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in stats:\n{body}");
    }
    // The engine lines carry the full EngineStats reflection surface.
    assert!(body.contains("batch_items=1"), "{body}");
    handle.shutdown();
}

#[test]
fn client_shutdown_drains_and_daemon_exits_cleanly() {
    let handle = spawn_server(ServeConfig::default(), false);
    let addr = handle.addr();

    // Traffic, then a protocol-level shutdown.
    let mut client = Client::connect(addr).expect("connect");
    let a = fill::bench_workload(16, 16, 5);
    let b = fill::bench_workload(16, 16, 6);
    client.multiply(&a, &b).expect("served");
    client.shutdown().expect("shutdown acknowledged");

    // wait() returns: the accept loop and both dispatchers joined.
    assert!(handle.is_stopping());
    let metrics = handle.metrics_arc();
    handle.wait();
    let snap = metrics.snapshot();
    assert_eq!(snap.responses, 1, "in-flight work drained before exit");

    // The listener is gone; fresh connections are refused (allow the OS a
    // moment to tear the socket down).
    let mut refused = false;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(refused, "daemon stopped listening after shutdown");
}
