//! Watchdog + incident integration tests: an injected dispatcher wedge
//! must surface as a stall verdict (counter + flight event naming the
//! component) within the detection deadline, and a healthy daemon under
//! pipelined load must produce zero stall verdicts while still serving
//! schema-valid incident dumps over the wire.
//!
//! The flight ring and the `WEDGE_DISPATCH` hook are process-global, so
//! the two scenarios serialize on a local mutex instead of trusting the
//! test harness's thread scheduling.

use fmm_core::json;
use fmm_dense::fill;
use fmm_engine::{ArchSource, EngineConfig, FmmEngine, Routing};
use fmm_model::ArchParams;
use fmm_serve::{BatchPolicy, PipelinedClient, ServeConfig, Server, ServerHandle};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

fn pinned_engines() -> (Arc<FmmEngine<f64>>, Arc<FmmEngine<f32>>) {
    let config = EngineConfig {
        parallel: true,
        arch: ArchSource::Fixed(ArchParams::paper_machine()),
        routing: Routing::Pinned {
            dims: (9, 9, 9),
            levels: 1,
            variant: fmm_engine::Variant::Naive,
        },
        ..EngineConfig::default()
    };
    (Arc::new(FmmEngine::<f64>::new(config.clone())), Arc::new(FmmEngine::<f32>::new(config)))
}

fn spawn_watched(event_threads: usize) -> ServerHandle {
    let (e64, e32) = pinned_engines();
    Server::spawn_with_engines(
        ServeConfig {
            batch: BatchPolicy {
                window: Duration::from_millis(2),
                max_batch: 8,
                straggler_gap: Duration::from_millis(2),
            },
            event_threads,
            watchdog: true,
            // Short stall deadline so the wedge test converges fast; the
            // healthy test must stay quiet even at this sensitivity.
            watchdog_stall: Duration::from_millis(150),
            ..ServeConfig::default()
        },
        e64,
        e32,
    )
    .expect("bind loopback")
}

/// Pull the named section out of an incident document.
fn section<'a>(
    doc: &'a json::Value,
    key: &str,
) -> &'a std::collections::BTreeMap<String, json::Value> {
    let json::Value::Object(root) = doc else { panic!("incident dump is an object") };
    let Some(json::Value::Object(map)) = root.get(key) else {
        panic!("incident dump has object section {key:?}");
    };
    map
}

/// Decode the typed flight events out of an incident document.
fn flight_events(doc: &json::Value) -> Vec<fmm_obs::FlightEvent> {
    let json::Value::Object(root) = doc else { panic!("incident dump is an object") };
    let Some(json::Value::Array(flight)) = root.get("flight") else {
        panic!("incident dump has a flight array");
    };
    flight
        .iter()
        .filter_map(|item| {
            let json::Value::Object(rec) = item else { return None };
            let num = |key: &str| match rec.get(key) {
                Some(json::Value::Int(v)) => *v as u64,
                _ => 0,
            };
            fmm_obs::FlightEvent::decode(num("kind_id"), num("a"), num("b"), num("c"), num("d"))
        })
        .collect()
}

/// An injected dispatcher wedge is detected, counted, and named: park the
/// dispatchers before they pop work, enqueue a request so the progress
/// probe sees depth, and the watchdog must record a stall verdict within
/// a few deadlines — attributable through the incident dump to a
/// `dispatch-*` component. Unwedging lets the request complete normally.
#[test]
fn wedged_dispatcher_is_detected_and_named() {
    let _guard = SCENARIO_LOCK.lock().unwrap();
    let handle = spawn_watched(1);
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");

    fmm_serve::dispatch::WEDGE_DISPATCH.store(true, Ordering::Relaxed);
    let a = fill::bench_workload(24, 16, 1);
    let b = fill::bench_workload(16, 20, 2);
    let id = client.send(&a, &b).expect("send while wedged");

    // Stall deadline is 150 ms with a 100 ms check interval; allow a
    // generous CI multiple before declaring the watchdog blind.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.watchdog_stalls() == 0 {
        assert!(Instant::now() < deadline, "watchdog never saw the wedged dispatcher");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The stall must be attributable: a watchdog-stall flight event whose
    // component id resolves to a dispatcher in the incident dump roster.
    let doc = handle.incident_json();
    let wd = section(&doc, "watchdog");
    let Some(json::Value::Array(names)) = wd.get("components") else {
        panic!("watchdog section lists components");
    };
    let stalled = flight_events(&doc)
        .into_iter()
        .find_map(|event| match event {
            fmm_obs::FlightEvent::WatchdogStall { component, .. } => Some(component),
            _ => None,
        })
        .expect("a watchdog-stall flight event was recorded");
    let stalled_name = match names.get(stalled as usize) {
        Some(json::Value::String(name)) => name.clone(),
        other => panic!("stalled component {stalled} resolves to a name, got {other:?}"),
    };
    assert!(
        stalled_name.starts_with("dispatch-"),
        "stall blamed on {stalled_name:?}, expected a dispatcher"
    );

    // The offline analyzer must tell the same story: write the dump out
    // and run `fmm_serve doctor` on it, expecting the dispatcher named.
    let dir = std::env::temp_dir().join(format!("fmm-doctor-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dump_path = dir.join("incident-wedge.json");
    std::fs::write(&dump_path, json::to_string_pretty(&doc)).expect("write dump");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fmm_serve"))
        .arg("doctor")
        .arg(&dump_path)
        .output()
        .expect("doctor runs");
    assert!(out.status.success(), "doctor exits 0 on a valid dump");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains(&format!("stalled component: {stalled_name}")),
        "doctor names the wedged dispatcher:\n{report}"
    );
    assert!(
        report.lines().any(|l| l.starts_with("diagnosis:") && l.contains(&stalled_name)),
        "doctor's diagnosis blames the wedged dispatcher:\n{report}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Unwedge: the parked job drains and the response arrives.
    fmm_serve::dispatch::WEDGE_DISPATCH.store(false, Ordering::Relaxed);
    let c: fmm_dense::Matrix<f64> = client.recv(id).expect("response after unwedge");
    assert_eq!((c.rows(), c.cols()), (24, 20));
    drop(client);
    handle.shutdown();
}

/// A healthy 4-event-thread daemon under pipelined load produces zero
/// stall verdicts, and its wire-requested incident dump is schema-valid
/// with a populated flight ring and watchdog roster.
#[test]
fn healthy_daemon_has_zero_stall_verdicts() {
    let _guard = SCENARIO_LOCK.lock().unwrap();
    fmm_serve::dispatch::WEDGE_DISPATCH.store(false, Ordering::Relaxed);
    let handle = spawn_watched(4);

    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");
    let a = fill::bench_workload(24, 16, 3);
    let b = fill::bench_workload(16, 20, 4);
    let mut pending = Vec::new();
    for _ in 0..24 {
        pending.push(client.send(&a, &b).expect("send"));
        if pending.len() >= 6 {
            let id = pending.remove(0);
            let _: fmm_dense::Matrix<f64> = client.recv(id).expect("recv");
        }
    }
    for id in pending {
        let _: fmm_dense::Matrix<f64> = client.recv(id).expect("drain");
    }

    // Let the watchdog run a few check intervals over the idle-but-live
    // daemon before asking for the verdict.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(handle.watchdog_stalls(), 0, "healthy daemon must produce no stall verdicts");

    // Incident dump over the wire: schema-tagged, flight ring populated,
    // all loops and dispatchers on the watchdog roster.
    let mut plain = fmm_serve::Client::connect(handle.addr()).expect("connect v1");
    let body = plain.incident().expect("incident frame");
    let doc = json::parse(&body).expect("incident dump is valid JSON");
    let json::Value::Object(root) = &doc else { panic!("incident dump is an object") };
    assert_eq!(
        root.get("schema"),
        Some(&json::Value::String(fmm_serve::incident::INCIDENT_SCHEMA.to_string()))
    );
    let wd = section(&doc, "watchdog");
    let Some(json::Value::Array(names)) = wd.get("components") else {
        panic!("watchdog roster present");
    };
    assert_eq!(names.len(), 6, "4 event loops + 2 dispatchers on the roster: {names:?}");
    assert!(!flight_events(&doc).is_empty(), "flight ring captured the load");
    let json::Value::Object(build) = root.get("build").expect("build section") else {
        panic!("build section is an object");
    };
    assert!(build.contains_key("version") && build.contains_key("kernel_f64"));

    drop(plain);
    drop(client);
    handle.shutdown();
}
