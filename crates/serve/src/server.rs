//! The serving daemon: a nonblocking readiness-loop core multiplexing
//! every connection over a small fixed set of event-loop threads.
//!
//! Threading model: [`ServeConfig::event_threads`] event loops (loop 0
//! also owns the listener and deals new connections round-robin) plus one
//! micro-batching dispatcher thread per dtype. Each loop drives its
//! connections with the [`crate::poller`] readiness API — epoll on Linux,
//! `poll(2)` elsewhere on Unix — so a thousand idle or slow connections
//! cost registrations, not threads. Request payloads are decoded by the
//! incremental [`Decoder`] straight into pooled buffers (one copy off the
//! wire); finished results come back from the dispatchers as
//! [`Completion`]s through each loop's [`CompletionSink`] and are written
//! from a scatter list with partial-write continuation, so a slow reader
//! never blocks the loop or a dispatcher.
//!
//! Protocol: v1 clients keep their strict one-frame-at-a-time semantics
//! (the loop pauses parsing a connection while its v1 request is in
//! flight); v2 clients may pipeline up to
//! [`ServeConfig::max_inflight_per_conn`] requests per connection and
//! receive responses out of order, matched by `request_id`.
//!
//! Error policy, per the protocol contract: malformed payloads on an
//! intact frame stream are answered with a typed error frame and the
//! connection continues; framing-level corruption (bad magic/version,
//! oversized declaration) is answered with an error frame and the
//! connection closes, because the byte stream can no longer be trusted.
//! The daemon itself never panics on client input.

use crate::buffers::IngestPools;
use crate::conn::{DecodeStep, Decoder, InEvent, WriteQueue};
use crate::dispatch::{
    run_dispatcher_observed, BatchPolicy, BatchQueue, Completion, CompletionSink, ConnAddr,
    DispatchObs, Job, Refusal, ReplySink,
};
use crate::incident;
use crate::metrics::Metrics;
use crate::poller::{Interest, Poller, SysFd, Waker, WAKE_TOKEN};
use crate::protocol::{
    self, ErrorCode, FrameKind, RequestDims, HEADER_LEN, HEADER_LEN_V2, RESPONSE_PRELUDE, VERSION,
};
use fmm_core::json;
use fmm_engine::{ArchSource, EngineConfig, EngineStats, FmmEngine, Routing};
use fmm_gemm::BlockingParams;
use fmm_obs::flight::{self, FlightEvent, IncidentTrigger, RefusalReason};
use fmm_obs::{Heartbeat, SpanKind, WatchPolicy, Watchdog, WatchdogConfig, WatchdogHandle};
use fmm_tune::TuneStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The listener's registration token on loop 0 (`u64::MAX` is
/// [`WAKE_TOKEN`]; connection tokens are small slot indices).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Construction-time configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: String,
    /// Cross-request micro-batching policy.
    pub batch: BatchPolicy,
    /// Admission bound: pending requests per dtype queue beyond which
    /// new work is refused with a `Busy` error frame.
    pub queue_capacity: usize,
    /// Largest frame payload accepted, in bytes. Bounds per-request
    /// memory *before* any allocation happens.
    pub max_payload_bytes: usize,
    /// Worker count for the engines' batched fan-out (`0` = the rayon
    /// pool width).
    pub workers: usize,
    /// Route through the persistent tune store
    /// (`TuneStore::load_default`), falling back to model routing per
    /// shape on any miss — the production default. `false` keeps routing
    /// purely model-based.
    pub tuned: bool,
    /// Blocking parameters for the engines.
    pub params: BlockingParams,
    /// Architecture parameters for the engines' model routing.
    pub arch: ArchSource,
    /// Event-loop threads multiplexing the connections (min 1). Loop 0
    /// also owns the listener.
    pub event_threads: usize,
    /// Most requests one connection may have in flight before further
    /// admissions are refused with `Busy` (v2 pipelining depth bound; v1
    /// connections never exceed 1 by construction).
    pub max_inflight_per_conn: usize,
    /// Idle buffers the per-dtype ingest pools retain across requests.
    pub pool_retain: usize,
    /// Idle bytes the per-dtype ingest pools retain across requests — a
    /// burst of max-size requests must not leave gigabytes parked in the
    /// pools after load subsides.
    pub pool_retain_bytes: usize,
    /// Response bytes a connection may have outstanding — queued in its
    /// write backlog *or* promised by admitted-but-unfinished requests —
    /// before further admissions are refused with `Busy` and the loop
    /// stops reading new frames from it. Charging the declared response
    /// size at admission (it is known from the request prelude) keeps a
    /// pipelining client from pinning `max_inflight_per_conn × max
    /// response` of pooled memory off a few hundred input bytes.
    pub max_conn_backlog_bytes: usize,
    /// Enable tracing spans (`fmm_obs::trace`) for every request phase.
    /// The default honors the `FMM_TRACE` environment variable (`1` or
    /// `true`). Tracing is a process-global switch: spawning a server
    /// with `trace: true` turns it on; spawning one with `trace: false`
    /// leaves the current state alone (so a tracing server and a plain
    /// one can coexist in one process, as the benchmarks do).
    pub trace: bool,
    /// Run the liveness watchdog: event loops and dispatchers publish
    /// heartbeats, one judging thread records stall/recovery flight
    /// events and the `fmm_watchdog_stalls_total` counter.
    pub watchdog: bool,
    /// A component is judged stalled after this long without a beat
    /// (event loops) or without progress while work is pending
    /// (dispatchers).
    pub watchdog_stall: Duration,
    /// Dump an incident report and abort the process when a stall
    /// persists this long. `None` = never abort.
    pub watchdog_abort_after: Option<Duration>,
    /// Requests whose dispatch latency reaches this threshold record a
    /// `slow-request` flight event with their dominant phase.
    pub slow_threshold: Duration,
    /// Directory incident dumps are written to (atomic temp+rename) on
    /// SIGTERM/SIGINT, panic, or watchdog abort. `None` disables
    /// capture-to-disk; the `Incident` wire frame works regardless.
    pub incident_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            max_payload_bytes: 64 << 20,
            workers: 0,
            tuned: true,
            params: BlockingParams::default(),
            arch: ArchSource::Calibrated,
            event_threads: 2,
            max_inflight_per_conn: 64,
            pool_retain: 32,
            pool_retain_bytes: 256 << 20,
            max_conn_backlog_bytes: 64 << 20,
            trace: std::env::var("FMM_TRACE")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false),
            watchdog: true,
            watchdog_stall: Duration::from_secs(1),
            watchdog_abort_after: None,
            slow_threshold: Duration::from_millis(250),
            incident_dir: None,
        }
    }
}

struct Lifecycle {
    stopping: Mutex<bool>,
    stopped: Condvar,
}

/// One event loop's cross-thread mailbox: completions from the
/// dispatchers, freshly accepted connections dealt over from loop 0, and
/// the waker that interrupts its poller.
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    injected: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

impl CompletionSink for LoopShared {
    fn complete(&self, completion: Completion) {
        self.completions.lock().expect("completion queue poisoned").push(completion);
        self.waker.wake();
    }
}

/// Everything the event loops and dispatchers share.
struct Shared {
    config: ServeConfig,
    metrics: Arc<Metrics>,
    pools: IngestPools,
    queue_f64: BatchQueue<f64>,
    queue_f32: BatchQueue<f32>,
    engine_f64: Arc<FmmEngine<f64>>,
    engine_f32: Arc<FmmEngine<f32>>,
    stop: AtomicBool,
    loops: Vec<Arc<LoopShared>>,
    lifecycle: Lifecycle,
    /// The stall watchdog, when enabled — its component names and stall
    /// counter feed every export and incident dump.
    watchdog: Option<Watchdog>,
    /// Dumps already written this process (part of the dump filename, so
    /// a SIGTERM dump never overwrites a panic dump).
    incident_seq: AtomicU64,
}

impl Shared {
    /// Flip the daemon into shutdown: refuse new work, close the dtype
    /// queues (dispatchers drain their backlogs first), and wake every
    /// event loop so it notices.
    fn request_stop(&self) {
        // ORDERING: Release pairs with the Acquire loads in
        // `is_stopping`/the event loops: a loop that observes `stop ==
        // true` also observes everything the stopping thread did before
        // requesting it. SeqCst would add nothing — with a single flag
        // there is no multi-variable order to make total.
        self.stop.store(true, Ordering::Release);
        self.queue_f64.close();
        self.queue_f32.close();
        for l in &self.loops {
            l.waker.wake();
        }
        let mut stopping = self.lifecycle.stopping.lock().expect("lifecycle poisoned");
        *stopping = true;
        self.lifecycle.stopped.notify_all();
    }

    /// The full plaintext stats body: serving counters, queue depths,
    /// ingest-pool occupancy, and one line per dtype engine.
    fn render_stats(&self) -> String {
        let mut out = self.metrics.snapshot().render();
        out.push_str(&format!(
            "fmm_serve_queue_depth_f64 {}\nfmm_serve_queue_depth_f32 {}\n",
            self.queue_f64.depth(),
            self.queue_f32.depth()
        ));
        for (name, stats) in [("f64", self.pools.f64.stats()), ("f32", self.pools.f32.stats())] {
            out.push_str(&format!(
                "fmm_serve_pool_{name}_hits {}\nfmm_serve_pool_{name}_misses {}\nfmm_serve_pool_{name}_retained {}\nfmm_serve_pool_{name}_retained_bytes {}\n",
                stats.hits, stats.misses, stats.retained, stats.retained_bytes
            ));
        }
        out.push_str(&format!("engine_f64 {}\n", self.engine_f64.stats()));
        out.push_str(&format!("engine_f32 {}\n", self.engine_f32.stats()));
        out
    }

    /// Mirror everything that lives outside the registry proper into it:
    /// engine counters (via the `EngineStats::fields()` reflection),
    /// dtype queue depths, and ingest-pool occupancy. Called on every
    /// export so registry snapshots are complete without the hot path
    /// double-counting into two homes.
    fn mirror_into_registry(&self) {
        let registry = self.metrics.registry();
        registry.gauge("fmm_build_info").set(1);
        if let Some(wd) = &self.watchdog {
            registry.set_counter("fmm_watchdog_stalls_total", wd.stalls_total());
        }
        for (prefix, stats) in [
            ("fmm_engine_f64_", self.engine_f64.stats()),
            ("fmm_engine_f32_", self.engine_f32.stats()),
        ] {
            for (name, value) in stats.fields() {
                registry.set_counter(&format!("{prefix}{name}"), value);
            }
        }
        registry.gauge("fmm_serve_queue_depth_f64").set(self.queue_f64.depth() as i64);
        registry.gauge("fmm_serve_queue_depth_f32").set(self.queue_f32.depth() as i64);
        for (name, stats) in [("f64", self.pools.f64.stats()), ("f32", self.pools.f32.stats())] {
            registry.set_counter(&format!("fmm_serve_pool_{name}_hits"), stats.hits);
            registry.set_counter(&format!("fmm_serve_pool_{name}_misses"), stats.misses);
            registry.set_counter(&format!("fmm_serve_pool_{name}_retained"), stats.retained);
            registry.set_counter(
                &format!("fmm_serve_pool_{name}_retained_bytes"),
                stats.retained_bytes,
            );
        }
    }

    /// The full registry snapshot — this server's instruments merged with
    /// the process-global registry (gemm pack/kernel split, sched tasks) —
    /// as an `fmm_core::json` value. The `StatsJson` frame body.
    ///
    /// Decision-audit aggregates export twice: per-class model-error
    /// histograms land in `histograms` under sanitized
    /// `fmm_audit_error_permille_*` names (uniform with every other
    /// histogram consumer), and the full per-class rows — GFLOP/s
    /// extrema, routing-source attribution, the chosen plan — under the
    /// dedicated `audit` key, indexed by raw `class/dtype`.
    fn stats_json(&self) -> json::Value {
        self.mirror_into_registry();
        let mut counters = std::collections::BTreeMap::new();
        let mut gauges = std::collections::BTreeMap::new();
        let mut histograms = std::collections::BTreeMap::new();
        for snap in [self.metrics.registry().snapshot(), fmm_obs::global().snapshot()] {
            for (name, v) in snap.counters {
                counters.insert(name, json::Value::Int(v as i64));
            }
            for (name, v) in snap.gauges {
                gauges.insert(name, json::Value::Int(v));
            }
            for (name, h) in snap.histograms {
                histograms.insert(name, hist_json(&h));
            }
        }
        let mut audit = std::collections::BTreeMap::new();
        for entry in fmm_obs::audit::snapshot() {
            let key = entry.key();
            let hist_name =
                fmm_obs::sanitize_metric_name(&format!("fmm_audit_error_permille_{key}"));
            histograms.insert(hist_name, hist_json(&entry.err_permille));
            audit.insert(key, audit_entry_json(&entry));
        }
        counters.insert(
            "fmm_audit_samples_total".to_string(),
            json::Value::Int(fmm_obs::audit::samples_recorded() as i64),
        );
        counters.insert(
            "fmm_audit_dropped_total".to_string(),
            json::Value::Int(fmm_obs::audit::samples_dropped() as i64),
        );
        json::Value::Object(
            [
                ("build".to_string(), incident::build_info_json()),
                ("counters".to_string(), json::Value::Object(counters)),
                ("gauges".to_string(), json::Value::Object(gauges)),
                ("histograms".to_string(), json::Value::Object(histograms)),
                ("audit".to_string(), json::Value::Object(audit)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// The self-contained incident document: build/config fingerprint,
    /// watchdog roster + verdict count, the flight-recorder ring, the
    /// full stats export, and recent tracing spans. This is what the
    /// `Incident` wire frame returns and what SIGTERM/SIGINT, panic, and
    /// watchdog-abort dumps write to [`ServeConfig::incident_dir`].
    fn incident_json(&self, trigger: &str) -> json::Value {
        let mut watchdog = std::collections::BTreeMap::new();
        if let Some(wd) = &self.watchdog {
            watchdog.insert(
                "components".to_string(),
                json::Value::Array(
                    wd.component_names().into_iter().map(json::Value::String).collect(),
                ),
            );
            watchdog.insert("stalls_total".to_string(), json::Value::Int(wd.stalls_total() as i64));
        }
        let flight: Vec<json::Value> = flight::snapshot()
            .iter()
            .map(|record| {
                let (kind, a, b, c, d) = record.event.encode();
                let int = |v: u64| json::Value::Int(v as i64);
                json::Value::Object(
                    [
                        ("seq".to_string(), int(record.seq)),
                        ("nanos".to_string(), int(record.nanos)),
                        ("kind".to_string(), json::Value::String(record.event.kind_name().into())),
                        ("kind_id".to_string(), int(kind)),
                        ("a".to_string(), int(a)),
                        ("b".to_string(), int(b)),
                        ("c".to_string(), int(c)),
                        ("d".to_string(), int(d)),
                        ("detail".to_string(), json::Value::String(record.event.describe())),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        json::Value::Object(
            [
                ("schema".to_string(), json::Value::String(incident::INCIDENT_SCHEMA.into())),
                ("trigger".to_string(), json::Value::String(trigger.to_string())),
                ("build".to_string(), incident::build_info_json()),
                ("config".to_string(), self.config_json()),
                ("watchdog".to_string(), json::Value::Object(watchdog)),
                ("flight".to_string(), json::Value::Array(flight)),
                ("stats".to_string(), self.stats_json()),
                ("spans".to_string(), trace_json(256)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// The serving configuration as a JSON fingerprint for incident
    /// dumps (throughput-relevant knobs only, no engine internals).
    fn config_json(&self) -> json::Value {
        let c = &self.config;
        let int = |v: usize| json::Value::Int(v as i64);
        json::Value::Object(
            [
                ("addr".to_string(), json::Value::String(c.addr.clone())),
                ("event_threads".to_string(), int(c.event_threads)),
                ("queue_capacity".to_string(), int(c.queue_capacity)),
                ("max_inflight_per_conn".to_string(), int(c.max_inflight_per_conn)),
                ("max_payload_bytes".to_string(), int(c.max_payload_bytes)),
                ("max_conn_backlog_bytes".to_string(), int(c.max_conn_backlog_bytes)),
                ("workers".to_string(), int(c.workers)),
                ("tuned".to_string(), json::Value::Int(c.tuned as i64)),
                ("batch_window_micros".to_string(), int(c.batch.window.as_micros() as usize)),
                ("batch_max".to_string(), int(c.batch.max_batch)),
                ("watchdog".to_string(), json::Value::Int(c.watchdog as i64)),
                ("watchdog_stall_millis".to_string(), int(c.watchdog_stall.as_millis() as usize)),
                ("slow_threshold_millis".to_string(), int(c.slow_threshold.as_millis() as usize)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// Write one incident dump to the configured directory (atomic
    /// temp+rename). Returns the final path, or `None` when no
    /// `incident_dir` is configured or the write failed — incident
    /// capture must never take the daemon down with it.
    fn write_incident(&self, trigger: &str) -> Option<std::path::PathBuf> {
        let dir = self.config.incident_dir.as_ref()?;
        let seq = self.incident_seq.fetch_add(1, Ordering::Relaxed);
        let doc = self.incident_json(trigger);
        match incident::write_incident_file(std::path::Path::new(dir), trigger, seq, &doc) {
            Ok(path) => {
                eprintln!("fmm_serve: incident dump written to {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("fmm_serve: failed to write incident dump: {e}");
                None
            }
        }
    }

    /// Prometheus-style plaintext exposition of the same merged registry
    /// contents `stats_json` exports, audit aggregates included (as
    /// sanitized per-class metric names — this exposition style carries
    /// no labels).
    fn render_prometheus(&self) -> String {
        self.mirror_into_registry();
        // This exposition style carries no labels, so the build identity
        // rides as a HELP-style comment next to the `fmm_build_info 1`
        // gauge the registry renders.
        let mut out = format!("# HELP fmm_build_info {}\n", incident::build_info_line());
        out.push_str(&self.metrics.registry().render_prometheus());
        out.push_str(&fmm_obs::global().render_prometheus());
        let mut counters = vec![
            ("fmm_audit_samples_total".to_string(), fmm_obs::audit::samples_recorded()),
            ("fmm_audit_dropped_total".to_string(), fmm_obs::audit::samples_dropped()),
        ];
        let mut histograms = Vec::new();
        for entry in fmm_obs::audit::snapshot() {
            let key = entry.key();
            let name =
                |stem: &str| fmm_obs::sanitize_metric_name(&format!("fmm_audit_{stem}_{key}"));
            counters.push((name("samples"), entry.samples));
            counters.push((name("predicted_nanos"), entry.predicted_nanos));
            counters.push((name("measured_nanos"), entry.measured_nanos));
            counters.push((name("best_gflops_milli"), entry.best_gflops_milli));
            counters.push((name("worst_gflops_milli"), entry.worst_gflops_milli));
            histograms.push((name("error_permille"), entry.err_permille));
        }
        let audit_snap = fmm_obs::Snapshot { counters, gauges: Vec::new(), histograms };
        out.push_str(&audit_snap.render_prometheus());
        out
    }
}

/// One audit row (see `fmm_obs::audit::AuditEntry`) as JSON for the
/// `audit` stats section — the `fmm_serve audit` report's input.
fn audit_entry_json(entry: &fmm_obs::AuditEntry) -> json::Value {
    let int = |v: u64| json::Value::Int(v as i64);
    let sources = fmm_obs::audit::SOURCE_NAMES
        .iter()
        .zip(entry.by_source)
        .map(|(name, v)| (name.to_string(), int(v)))
        .collect();
    json::Value::Object(
        [
            ("class".to_string(), json::Value::String(entry.class_label.clone())),
            ("dtype".to_string(), json::Value::String(entry.dtype.to_string())),
            ("samples".to_string(), int(entry.samples)),
            ("predicted_nanos".to_string(), int(entry.predicted_nanos)),
            ("measured_nanos".to_string(), int(entry.measured_nanos)),
            ("flops".to_string(), int(entry.flops)),
            ("error_log2".to_string(), json::Value::Number(entry.error_log2())),
            ("mean_gflops".to_string(), json::Value::Number(entry.mean_gflops())),
            (
                "best_gflops".to_string(),
                json::Value::Number(entry.best_gflops_milli as f64 / 1000.0),
            ),
            (
                "worst_gflops".to_string(),
                json::Value::Number(entry.worst_gflops_milli as f64 / 1000.0),
            ),
            ("chosen".to_string(), json::Value::String(entry.chosen.clone())),
            ("sources".to_string(), json::Value::Object(sources)),
            ("err_permille".to_string(), hist_json(&entry.err_permille)),
        ]
        .into_iter()
        .collect(),
    )
}

/// One histogram snapshot as JSON: lifetime totals, nearest-rank
/// percentiles over all samples, and the non-empty `[lo, hi, count]`
/// buckets.
fn hist_json(h: &fmm_obs::HistSnapshot) -> json::Value {
    let int = |v: u64| json::Value::Int(v as i64);
    let buckets: Vec<json::Value> =
        h.buckets().map(|(lo, hi, n)| json::Value::Array(vec![int(lo), int(hi), int(n)])).collect();
    json::Value::Object(
        [
            ("count".to_string(), int(h.count)),
            ("sum_nanos".to_string(), int(h.sum)),
            ("min_nanos".to_string(), int(h.min)),
            ("max_nanos".to_string(), int(h.max)),
            ("mean_nanos".to_string(), json::Value::Number(h.mean())),
            ("p50_nanos".to_string(), int(h.p50())),
            ("p90_nanos".to_string(), int(h.p90())),
            ("p99_nanos".to_string(), int(h.p99())),
            ("buckets".to_string(), json::Value::Array(buckets)),
        ]
        .into_iter()
        .collect(),
    )
}

/// Recent tracing spans as a JSON array (newest last), the `Trace` frame
/// body: `{kind, request_id, start_nanos, end_nanos, thread}` per event.
fn trace_json(limit: usize) -> json::Value {
    let events = fmm_obs::trace::recent(limit);
    json::Value::Array(
        events
            .iter()
            .map(|e| {
                json::Value::Object(
                    [
                        ("kind".to_string(), json::Value::String(e.kind.name().to_string())),
                        ("request_id".to_string(), json::Value::Int(e.request_id as i64)),
                        ("start_nanos".to_string(), json::Value::Int(e.start_nanos as i64)),
                        ("end_nanos".to_string(), json::Value::Int(e.end_nanos as i64)),
                        ("thread".to_string(), json::Value::Int(e.thread as i64)),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect(),
    )
}

/// A running serving daemon. Obtained from [`Server::spawn`]; dropping the
/// handle does *not* stop the daemon — use [`ServerHandle::shutdown`] (or
/// a client `Shutdown` frame plus [`ServerHandle::wait`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    watchdog_handle: Option<WatchdogHandle>,
}

/// Namespace for constructing the daemon.
pub struct Server;

impl Server {
    /// Bind, construct engines per `config`, and start serving on
    /// background threads. Returns once the listener is live.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let engine_f64 = Arc::new(build_engine::<f64>(&config));
        let engine_f32 = Arc::new(build_engine::<f32>(&config));
        Self::spawn_with_engines(config, engine_f64, engine_f32)
    }

    /// [`Server::spawn`] with caller-provided engines — the seam tests
    /// and benchmarks use to pin routing/arch, or to share warm engines
    /// across server configurations.
    pub fn spawn_with_engines(
        config: ServeConfig,
        engine_f64: Arc<FmmEngine<f64>>,
        engine_f32: Arc<FmmEngine<f32>>,
    ) -> io::Result<ServerHandle> {
        // The frame header carries payload lengths as u32; a cap beyond
        // that would let `encode_header`'s `as u32` silently truncate and
        // desynchronize the stream. Refuse the misconfiguration up front.
        if config.max_payload_bytes > u32::MAX as usize - HEADER_LEN_V2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "max_payload_bytes {} exceeds the wire format's u32 payload-length field \
                     (cap is {})",
                    config.max_payload_bytes,
                    u32::MAX as usize - HEADER_LEN_V2
                ),
            ));
        }
        if config.trace {
            fmm_obs::trace::set_enabled(true);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // Build each loop's poller + waker on this thread (the waker must
        // live in the shared mailbox before the loop thread starts); the
        // pollers move into their threads below.
        let n_loops = config.event_threads.max(1);
        let mut pollers = Vec::with_capacity(n_loops);
        let mut loops = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let mut poller = Poller::new()?;
            let waker = Waker::new(&mut poller)?;
            pollers.push(poller);
            loops.push(Arc::new(LoopShared {
                completions: Mutex::new(Vec::new()),
                injected: Mutex::new(Vec::new()),
                waker,
            }));
        }

        let watchdog = config.watchdog.then(|| {
            Watchdog::new(WatchdogConfig {
                stall_after: config.watchdog_stall,
                abort_after: config.watchdog_abort_after,
                ..WatchdogConfig::default()
            })
        });

        let shared = Arc::new(Shared {
            queue_f64: BatchQueue::new(config.queue_capacity),
            queue_f32: BatchQueue::new(config.queue_capacity),
            metrics: Arc::new(Metrics::default()),
            pools: IngestPools::new(config.pool_retain, config.pool_retain_bytes),
            engine_f64,
            engine_f32,
            stop: AtomicBool::new(false),
            loops,
            lifecycle: Lifecycle { stopping: Mutex::new(false), stopped: Condvar::new() },
            watchdog,
            incident_seq: AtomicU64::new(0),
            config,
        });

        let mut threads = Vec::new();
        let mut listener = Some(listener);
        for (index, poller) in pollers.into_iter().enumerate() {
            // Event loops tick their poll timeout even when idle, so plain
            // liveness is the right judgment.
            let heartbeat = shared
                .watchdog
                .as_ref()
                .map(|wd| wd.register(&format!("loop-{index}"), WatchPolicy::Liveness));
            let shared = shared.clone();
            let listener = listener.take();
            threads.push(
                thread::Builder::new()
                    .name(format!("fmm-serve-loop-{index}"))
                    .spawn(move || event_loop(&shared, index, poller, listener, heartbeat))
                    .expect("spawn event loop"),
            );
        }
        {
            // Dispatchers legitimately block when idle; they are judged on
            // progress (batches formed) against pending work (queue depth).
            let probe = shared.clone();
            let obs = DispatchObs {
                heartbeat: shared.watchdog.as_ref().map(|wd| {
                    wd.register(
                        "dispatch-f64",
                        WatchPolicy::Progress {
                            work: Box::new(move || probe.queue_f64.depth() as u64),
                        },
                    )
                }),
                dispatcher_id: 0,
                slow_threshold: Some(shared.config.slow_threshold),
            };
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("fmm-serve-dispatch-f64".into())
                    .spawn(move || {
                        run_dispatcher_observed(
                            &shared.queue_f64,
                            &shared.engine_f64,
                            &shared.pools.f64,
                            shared.config.batch,
                            &shared.metrics,
                            &obs,
                        )
                    })
                    .expect("spawn f64 dispatcher"),
            );
        }
        {
            let probe = shared.clone();
            let obs = DispatchObs {
                heartbeat: shared.watchdog.as_ref().map(|wd| {
                    wd.register(
                        "dispatch-f32",
                        WatchPolicy::Progress {
                            work: Box::new(move || probe.queue_f32.depth() as u64),
                        },
                    )
                }),
                dispatcher_id: 1,
                slow_threshold: Some(shared.config.slow_threshold),
            };
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("fmm-serve-dispatch-f32".into())
                    .spawn(move || {
                        run_dispatcher_observed(
                            &shared.queue_f32,
                            &shared.engine_f32,
                            &shared.pools.f32,
                            shared.config.batch,
                            &shared.metrics,
                            &obs,
                        )
                    })
                    .expect("spawn f32 dispatcher"),
            );
        }
        let watchdog_handle = shared.watchdog.as_ref().map(|wd| {
            let dump = shared.clone();
            wd.spawn(Box::new(move || {
                // The Incident{watchdog-abort} flight event is already in
                // the ring (the watchdog records it before aborting).
                dump.write_incident("watchdog-abort");
            }))
        });
        if shared.config.incident_dir.is_some() {
            install_incident_capture(&shared, &mut threads);
        }
        Ok(ServerHandle { addr, shared, threads, watchdog_handle })
    }
}

/// Wire up capture-to-disk incident paths: a panic hook (any daemon
/// thread) and a SIGTERM/SIGINT monitor thread that dumps and then
/// requests a clean stop, so `kill <pid>` on a loaded daemon leaves a
/// post-mortem behind *and* exits 0 after draining.
fn install_incident_capture(shared: &Arc<Shared>, threads: &mut Vec<JoinHandle<()>>) {
    // The hook is process-global and outlives the server; hold the shared
    // state weakly so a stopped server can actually be dropped.
    let weak = Arc::downgrade(shared);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(shared) = weak.upgrade() {
            flight::record(FlightEvent::Incident { trigger: IncidentTrigger::Panic });
            shared.write_incident("panic");
        }
        previous(info);
    }));

    let signals = incident::install_signal_traps();
    let shared = shared.clone();
    threads.push(
        thread::Builder::new()
            .name("fmm-serve-incident".into())
            .spawn(move || loop {
                if let Some(trigger) = incident::pending_signal(signals) {
                    flight::record(FlightEvent::Incident { trigger });
                    shared.write_incident(trigger.name());
                    // Dump first, then drain: the signal asks for
                    // termination, and a clean stop is the best honor.
                    shared.request_stop();
                    return;
                }
                // ORDERING: pairs with the Release store in `request_stop`.
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(Duration::from_millis(25));
            })
            .expect("spawn incident monitor"),
    );
}

/// Build one dtype engine per the serve configuration. Engines are always
/// parallel: the whole point of the dispatcher is handing coalesced
/// batches to `multiply_batch`'s worker fan-out (a 1-thread rayon pool
/// degrades gracefully to in-place execution).
fn build_engine<T: fmm_gemm::GemmScalar>(config: &ServeConfig) -> FmmEngine<T> {
    let routing = if config.tuned {
        Routing::Tuned { store: Arc::new(TuneStore::load_default()) }
    } else {
        Routing::Model
    };
    FmmEngine::new(EngineConfig {
        parallel: true,
        workers: config.workers,
        routing,
        params: config.params,
        arch: config.arch.clone(),
        ..EngineConfig::default()
    })
}

impl ServerHandle {
    /// The resolved listen address (the actual port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving metrics (shared with the daemon threads).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// An owning handle to the metrics, for reading final counts after
    /// [`ServerHandle::wait`]/[`ServerHandle::shutdown`] consume `self`.
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Per-dtype engine counter snapshots.
    pub fn engine_stats(&self) -> (EngineStats, EngineStats) {
        (self.shared.engine_f64.stats(), self.shared.engine_f32.stats())
    }

    /// The full plaintext stats body a `StatsRequest` frame would return.
    pub fn render_stats(&self) -> String {
        self.shared.render_stats()
    }

    /// The merged registry snapshot a `StatsJson` frame would return, as
    /// a JSON value — the seam `serve_smoke` uses to embed the registry
    /// in its benchmark report.
    pub fn stats_json(&self) -> json::Value {
        self.shared.stats_json()
    }

    /// The Prometheus plaintext exposition of the merged registries.
    pub fn render_prometheus(&self) -> String {
        self.shared.render_prometheus()
    }

    /// True once shutdown has been requested (by [`ServerHandle::shutdown`]
    /// or a client `Shutdown` frame).
    pub fn is_stopping(&self) -> bool {
        // ORDERING: pairs with the Release store in `request_stop`.
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Block until shutdown is requested, then join the event loops and
    /// dispatchers (in-flight requests drain first). This is the daemon
    /// main loop: `Server::spawn(cfg)?.wait()`.
    pub fn wait(self) {
        {
            let mut stopping = self.shared.lifecycle.stopping.lock().expect("lifecycle poisoned");
            while !*stopping {
                stopping =
                    self.shared.lifecycle.stopped.wait(stopping).expect("lifecycle poisoned");
            }
        }
        self.join();
    }

    /// Request shutdown and join the daemon threads. Idempotent with a
    /// client-initiated `Shutdown` frame.
    pub fn shutdown(self) {
        self.shared.request_stop();
        self.join();
    }

    fn join(self) {
        // The event loops drain in-flight responses (bounded by their own
        // 5 s deadline) before exiting; joining them is the whole drain.
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(wd) = self.watchdog_handle {
            wd.stop();
        }
    }

    /// Total watchdog stall verdicts so far (0 when the watchdog is
    /// disabled).
    pub fn watchdog_stalls(&self) -> u64 {
        self.shared.watchdog.as_ref().map_or(0, |wd| wd.stalls_total())
    }

    /// The incident document an `Incident` wire frame would return right
    /// now — the seam tests use to inspect dumps without signals.
    pub fn incident_json(&self) -> json::Value {
        self.shared.incident_json("wire-request")
    }
}

/// Process-wide connection id sequence for flight events — connection
/// lifecycles stay traceable across loops and across the whole dump.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// One multiplexed connection's state on its owning event loop.
struct Conn {
    /// Process-unique id carried by this connection's flight events.
    id: u64,
    /// Requests admitted over this connection's lifetime (reported by
    /// its `conn-closed` flight event — the doctor's busiest-connection
    /// ranking input).
    requests: u64,
    stream: TcpStream,
    decoder: Decoder,
    out: WriteQueue,
    /// Requests admitted on this connection whose response has not been
    /// queued yet.
    in_flight: usize,
    /// Wire bytes the responses to those admitted requests will occupy
    /// once queued (header + prelude + declared `m×n` result). Charged at
    /// admission, released when the completion's frame enters the write
    /// queue — together with `out.backlog()` this is the connection's
    /// whole response-memory exposure, bounded by
    /// [`ServeConfig::max_conn_backlog_bytes`].
    pending_response_bytes: usize,
    /// A v1 request is outstanding: parsing is paused until its response
    /// is queued (v1 clients get strict one-at-a-time semantics).
    v1_wait: bool,
    /// Close once the write queue drains (fatal error answered, shutdown
    /// acknowledged, or peer EOF with responses still owed).
    closing: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
}

/// One registration slot: its occupant (if any) plus a generation counter
/// that survives occupants, so completions addressed to a dead connection
/// are recognized and dropped.
struct Slot {
    conn: Option<Conn>,
    generation: u32,
}

#[cfg(unix)]
fn sys_fd<F: std::os::fd::AsRawFd>(f: &F) -> SysFd {
    f.as_raw_fd()
}

#[cfg(not(unix))]
fn sys_fd<F>(_f: &F) -> SysFd {
    0
}

/// The per-loop serving core. Loop 0 additionally owns the listener and
/// deals accepted connections round-robin over all loops.
fn event_loop(
    shared: &Arc<Shared>,
    index: usize,
    mut poller: Poller,
    mut listener: Option<TcpListener>,
    heartbeat: Option<Arc<Heartbeat>>,
) {
    let me = shared.loops[index].clone();
    if let Some(l) = &listener {
        if poller.register(sys_fd(l), LISTENER_TOKEN, Interest::READ).is_err() {
            return;
        }
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut events = Vec::new();
    let mut next_loop = 0usize;
    // Once stop is observed, responses still owed get this long to reach
    // their sockets; a peer that stops reading must not hold shutdown
    // hostage.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let _ = poller.wait(&mut events, Some(Duration::from_millis(100)));
        me.waker.drain();
        // The poll timeout bounds each iteration, so a beat per pass is
        // exactly "this loop is still turning".
        if let Some(hb) = &heartbeat {
            hb.beat();
        }

        // Adopt connections dealt over from the accept loop.
        let adopted: Vec<TcpStream> =
            std::mem::take(&mut *me.injected.lock().expect("injected queue poisoned"));
        for stream in adopted {
            install_conn(shared, &mut poller, &mut slots, stream, index);
        }

        for event in events.drain(..) {
            match event.token {
                WAKE_TOKEN => {}
                LISTENER_TOKEN => {
                    if let Some(l) = &listener {
                        accept_ready(shared, l, &mut poller, &mut slots, &mut next_loop, index);
                    }
                }
                token => {
                    let slot = token as usize;
                    if slot >= slots.len() || slots[slot].conn.is_none() {
                        continue; // stale readiness for a freed slot
                    }
                    if event.readable {
                        drive_read(shared, &me, &mut slots, slot);
                    }
                    // Writable readiness needs no dedicated driver: the
                    // round finisher below flushes either way.
                    finish_conn_round(shared, &mut poller, &mut slots, slot);
                }
            }
        }

        // Deliver completed results to their connections.
        let done: Vec<Completion> =
            std::mem::take(&mut *me.completions.lock().expect("completion queue poisoned"));
        for completion in done {
            apply_completion(shared, &me, &mut poller, &mut slots, completion);
        }

        // ORDERING: pairs with the Release store in `request_stop`; the
        // loop was woken through the self-pipe, and on the wakeup pass
        // this Acquire load makes the pre-stop writes visible.
        if shared.stop.load(Ordering::Acquire) {
            if let Some(l) = listener.take() {
                // Refuse new connections immediately; in-flight work keeps
                // draining below.
                let _ = poller.deregister(LISTENER_TOKEN);
                drop(l);
            }
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
            let owed = shared.metrics.inflight.get() > 0
                || !me.completions.lock().expect("completion queue poisoned").is_empty()
                || slots.iter().any(|s| s.conn.as_ref().is_some_and(|c| !c.out.is_empty()));
            if !owed || Instant::now() >= deadline {
                for slot in 0..slots.len() {
                    drop_conn(shared, &mut poller, &mut slots, slot);
                }
                return;
            }
        }
    }
}

/// Accept until the listener would block, dealing connections round-robin
/// over every event loop (this loop installs its own share directly).
fn accept_ready(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    poller: &mut Poller,
    slots: &mut Vec<Slot>,
    next_loop: &mut usize,
    index: usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let target = *next_loop % shared.loops.len();
                *next_loop = next_loop.wrapping_add(1);
                if target == 0 {
                    install_conn(shared, poller, slots, stream, index);
                } else {
                    let mailbox = &shared.loops[target];
                    mailbox.injected.lock().expect("injected queue poisoned").push(stream);
                    mailbox.waker.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Register a fresh connection in the lowest free slot of this loop.
fn install_conn(
    shared: &Arc<Shared>,
    poller: &mut Poller,
    slots: &mut Vec<Slot>,
    s: TcpStream,
    loop_index: usize,
) {
    if s.set_nonblocking(true).is_err() {
        return;
    }
    let _ = s.set_nodelay(true);
    let slot = match slots.iter().position(|s| s.conn.is_none()) {
        Some(free) => free,
        None => {
            slots.push(Slot { conn: None, generation: 0 });
            slots.len() - 1
        }
    };
    if poller.register(sys_fd(&s), slot as u64, Interest::READ).is_err() {
        return;
    }
    let id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    slots[slot].conn = Some(Conn {
        id,
        requests: 0,
        stream: s,
        decoder: Decoder::new(shared.config.max_payload_bytes),
        out: WriteQueue::default(),
        in_flight: 0,
        pending_response_bytes: 0,
        v1_wait: false,
        closing: false,
        interest: Interest::READ,
    });
    flight::record(FlightEvent::ConnAccepted { conn: id, loop_index: loop_index as u64 });
    shared.metrics.connections.add(1);
    shared.metrics.connections_total.inc();
}

/// Read and decode as many frames as the socket and flow control allow,
/// handling each decoded event inline.
fn drive_read(shared: &Arc<Shared>, me: &Arc<LoopShared>, slots: &mut [Slot], slot: usize) {
    let generation = slots[slot].generation;
    let mut events = Vec::new();
    loop {
        let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
        if conn.closing
            || conn.v1_wait
            || conn.decoder.is_broken()
            || conn.out.backlog() > shared.config.max_conn_backlog_bytes
        {
            return; // paused; interest update happens in finish_conn_round
        }
        let step = {
            let Conn { stream, decoder, .. } = conn;
            decoder.step(stream, &shared.pools, &mut events)
        };
        match step {
            DecodeStep::Frame => {
                for event in events.drain(..) {
                    handle_in_event(shared, me, slots, slot, generation, event);
                }
            }
            DecodeStep::NeedMore => return,
            DecodeStep::Closed => {
                // Peer EOF: no further requests, but responses already
                // owed still go out before the slot is reclaimed.
                let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
                conn.closing = true;
                return;
            }
            DecodeStep::Broken => return,
        }
    }
}

/// Act on one decoded inbound frame.
fn handle_in_event(
    shared: &Arc<Shared>,
    me: &Arc<LoopShared>,
    slots: &mut [Slot],
    slot: usize,
    generation: u32,
    event: InEvent,
) {
    match event {
        InEvent::Request { head, dims, operands } => {
            fmm_obs::trace::mark(SpanKind::RequestRecv, head.request_id);
            admit_request(
                shared,
                me,
                slots,
                slot,
                generation,
                head.version,
                head.request_id,
                dims,
                operands,
            );
        }
        InEvent::Ping { head, payload } => {
            shared.metrics.pings.inc();
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::Pong, &payload);
        }
        InEvent::Stats { head } => {
            let body = shared.render_stats();
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::StatsReply, body.as_bytes());
        }
        InEvent::StatsJson { head, prometheus } => {
            let body = if prometheus {
                shared.render_prometheus()
            } else {
                json::to_string_pretty(&shared.stats_json())
            };
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::StatsJson, body.as_bytes());
        }
        InEvent::Trace { head, last } => {
            let body = json::to_string_pretty(&trace_json(last as usize));
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::Trace, body.as_bytes());
        }
        InEvent::Shutdown { head } => {
            // Stop *before* the Pong is queued: by the time the client
            // reads the acknowledgement, `is_stopping()` is already true.
            shared.request_stop();
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::Pong, b"");
            conn.closing = true;
        }
        InEvent::Incident { head } => {
            flight::record(FlightEvent::Incident { trigger: IncidentTrigger::WireRequest });
            let body = json::to_string_pretty(&shared.incident_json("wire-request"));
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            push_reply(conn, head.version, head.request_id, FrameKind::Incident, body.as_bytes());
        }
        InEvent::Bad { version, request_id, code, message, fatal } => {
            shared.metrics.rejects_malformed.inc();
            shared.metrics.record_error(code);
            let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
            flight::record(FlightEvent::ErrorSent { conn: conn.id, code: code as u64 });
            let payload = protocol::encode_error(code, &message);
            push_reply(conn, version, request_id, FrameKind::Error, &payload);
            if fatal {
                conn.closing = true;
            }
        }
    }
}

/// Admission control for one decoded request: per-connection pipelining
/// bound, then the dtype queue's capacity bound. Refusals answer with a
/// typed error frame; admissions route the completion back here.
#[allow(clippy::too_many_arguments)]
fn admit_request(
    shared: &Arc<Shared>,
    me: &Arc<LoopShared>,
    slots: &mut [Slot],
    slot: usize,
    generation: u32,
    version: u8,
    request_id: u64,
    dims: RequestDims,
    operands: crate::buffers::OperandStage,
) {
    let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
    if conn.in_flight >= shared.config.max_inflight_per_conn {
        shared.metrics.rejects_busy.inc();
        shared.metrics.record_error(ErrorCode::Busy);
        flight::record(FlightEvent::AdmissionRefused {
            conn: conn.id,
            reason: RefusalReason::InflightCap,
        });
        let payload = protocol::encode_error(
            ErrorCode::Busy,
            &format!(
                "connection already has {} requests in flight",
                shared.config.max_inflight_per_conn
            ),
        );
        push_reply(conn, version, request_id, FrameKind::Error, &payload);
        return;
    }
    // Byte-level admission: the response's size is declared by the
    // request prelude, so its memory cost is charged *now*, before any
    // result buffer exists — a k=0 request is ~30 bytes of input but can
    // declare a cap-sized output, and counting requests alone would let
    // one connection pin `max_inflight × max response` of pooled memory.
    // A request arriving on an otherwise idle connection (nothing queued,
    // nothing promised) is always admitted, so progress never deadlocks
    // on an operator setting the backlog cap below one max response.
    let response_bytes = response_frame_bytes(version, dims);
    let outstanding = conn.pending_response_bytes + conn.out.backlog();
    if outstanding > 0 && outstanding + response_bytes > shared.config.max_conn_backlog_bytes {
        shared.metrics.rejects_busy.inc();
        shared.metrics.record_error(ErrorCode::Busy);
        flight::record(FlightEvent::AdmissionRefused {
            conn: conn.id,
            reason: RefusalReason::ByteBacklog,
        });
        let payload = protocol::encode_error(
            ErrorCode::Busy,
            &format!(
                "connection has {outstanding} response bytes outstanding; another \
                 {response_bytes} would exceed the {}-byte cap",
                shared.config.max_conn_backlog_bytes
            ),
        );
        push_reply(conn, version, request_id, FrameKind::Error, &payload);
        return;
    }
    let reply = ReplySink {
        sink: me.clone() as Arc<dyn CompletionSink>,
        addr: ConnAddr { slot: slot as u32, generation },
        request_id,
        version,
    };
    let refused = match operands {
        crate::buffers::OperandStage::F64 { a, b } => {
            let job =
                Job { a, b, m: dims.m, k: dims.k, n: dims.n, reply, enqueued: Instant::now() };
            shared.queue_f64.try_push(job).err().map(|(_, why)| why)
        }
        crate::buffers::OperandStage::F32 { a, b } => {
            let job =
                Job { a, b, m: dims.m, k: dims.k, n: dims.n, reply, enqueued: Instant::now() };
            shared.queue_f32.try_push(job).err().map(|(_, why)| why)
        }
    };
    let conn = slots[slot].conn.as_mut().expect("driven slot is occupied");
    match refused {
        None => {
            fmm_obs::trace::mark(SpanKind::Admission, request_id);
            shared.metrics.requests.inc();
            shared.metrics.inflight.add(1);
            conn.in_flight += 1;
            conn.requests += 1;
            conn.pending_response_bytes += response_bytes;
            shared.metrics.record_conn_inflight(conn.in_flight as u64);
            if version == VERSION {
                conn.v1_wait = true;
            }
        }
        Some(Refusal::Full) => {
            shared.metrics.rejects_busy.inc();
            shared.metrics.record_error(ErrorCode::Busy);
            flight::record(FlightEvent::AdmissionRefused {
                conn: conn.id,
                reason: RefusalReason::QueueFull,
            });
            let capacity = shared.config.queue_capacity;
            let payload = protocol::encode_error(
                ErrorCode::Busy,
                &format!("pending queue is full ({capacity} requests)"),
            );
            push_reply(conn, version, request_id, FrameKind::Error, &payload);
        }
        Some(Refusal::Closed) => {
            // Not Busy: nothing about this daemon will ever accept the
            // retry a Busy signal invites.
            shared.metrics.record_error(ErrorCode::ShuttingDown);
            flight::record(FlightEvent::AdmissionRefused {
                conn: conn.id,
                reason: RefusalReason::ShuttingDown,
            });
            let payload = protocol::encode_error(
                ErrorCode::ShuttingDown,
                "daemon is shutting down and accepts no new work",
            );
            push_reply(conn, version, request_id, FrameKind::Error, &payload);
        }
    }
}

/// Wire bytes the response to an admitted request will occupy once
/// queued: header (in the peer's wire version), response prelude, and the
/// declared `m×n` result.
fn response_frame_bytes(version: u8, dims: RequestDims) -> usize {
    let header = if version == VERSION { HEADER_LEN } else { HEADER_LEN_V2 };
    header + RESPONSE_PRELUDE + dims.c_bytes()
}

/// Queue one small (fully owned) reply frame in the peer's wire version.
fn push_reply(conn: &mut Conn, version: u8, request_id: u64, kind: FrameKind, payload: &[u8]) {
    let mut bytes = protocol::encode_header(version, kind, payload.len() as u32, request_id);
    bytes.extend_from_slice(payload);
    conn.out.push_bytes(bytes);
}

/// Route one finished request back to its connection: frame the response
/// as header ‖ prelude (owned) followed by the pooled result buffer
/// (scatter segment), or drop it if the connection died mid-flight.
fn apply_completion(
    shared: &Arc<Shared>,
    me: &Arc<LoopShared>,
    poller: &mut Poller,
    slots: &mut [Slot],
    completion: Completion,
) {
    // The admitted request is no longer in flight whether or not its
    // connection survived to read the answer.
    shared.metrics.inflight.sub(1);
    let slot = completion.addr.slot as usize;
    if slot >= slots.len()
        || slots[slot].generation != completion.addr.generation
        || slots[slot].conn.is_none()
    {
        return; // the connection died; the result buffer returns to its pool
    }
    let conn = slots[slot].conn.as_mut().expect("checked above");
    conn.in_flight = conn.in_flight.saturating_sub(1);
    if completion.version == VERSION {
        conn.v1_wait = false;
    }
    shared.metrics.responses.inc();
    let payload_len = RESPONSE_PRELUDE + completion.result.bytes().len();
    // Release the bytes charged at admission: the promise now materializes
    // as actual write-queue backlog (the result length equals the `m×n`
    // size the prelude declared).
    let header_len = if completion.version == VERSION { HEADER_LEN } else { HEADER_LEN_V2 };
    conn.pending_response_bytes =
        conn.pending_response_bytes.saturating_sub(header_len + payload_len);
    let mut head = protocol::encode_header(
        completion.version,
        FrameKind::Response,
        payload_len as u32,
        completion.request_id,
    );
    head.extend_from_slice(&protocol::encode_response_prelude(
        completion.result.dtype(),
        completion.m,
        completion.n,
    ));
    conn.out.push_bytes(head);
    conn.out.push_buf(completion.result);
    fmm_obs::trace::mark(SpanKind::ReplyFlush, completion.request_id);
    // A v1 connection resumes parsing now; data may already be buffered,
    // so eagerly decode before waiting for the next readiness report.
    if !conn.v1_wait {
        drive_read(shared, me, slots, slot);
    }
    finish_conn_round(shared, poller, slots, slot);
}

/// After any activity on a slot: flush what the socket will take, reclaim
/// the slot if the connection is done, and otherwise reconcile the poller
/// interest with what the connection now needs.
fn finish_conn_round(shared: &Arc<Shared>, poller: &mut Poller, slots: &mut [Slot], slot: usize) {
    let Some(conn) = slots[slot].conn.as_mut() else { return };
    // Optimistic flush: most replies fit the socket buffer, so they leave
    // now instead of after a poll round-trip. An error means the peer is
    // gone — nothing further can be delivered, closing or not.
    if !conn.out.is_empty() && conn.out.flush(&mut conn.stream).is_err() {
        drop_conn(shared, poller, slots, slot);
        return;
    }
    let conn = slots[slot].conn.as_mut().expect("flush kept the slot occupied");
    if conn.closing && conn.out.is_empty() {
        drop_conn(shared, poller, slots, slot);
        return;
    }
    let want = Interest {
        read: !conn.closing
            && !conn.v1_wait
            && !conn.decoder.is_broken()
            && conn.out.backlog() <= shared.config.max_conn_backlog_bytes,
        write: !conn.out.is_empty(),
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.modify(slot as u64, want);
    }
}

/// Deregister and drop a connection, bumping the slot generation so
/// completions still in flight for it are recognized as stale.
fn drop_conn(shared: &Arc<Shared>, poller: &mut Poller, slots: &mut [Slot], slot: usize) {
    if let Some(conn) = slots[slot].conn.take() {
        flight::record(FlightEvent::ConnClosed { conn: conn.id, requests: conn.requests });
        let _ = poller.deregister(slot as u64);
        slots[slot].generation = slots[slot].generation.wrapping_add(1);
        shared.metrics.connections.sub(1);
    }
}
