//! The serving daemon: TCP accept loop, per-connection frame handling,
//! admission control, and lifecycle (spawn → serve → drain → join).
//!
//! Threading model: one accept thread, one detached thread per client
//! connection, and one micro-batching dispatcher thread per dtype. The
//! connection thread owns its socket end-to-end (decode, admit, block on
//! the reply channel, encode) so no two threads ever interleave writes on
//! one stream; the dispatchers own the engines' batched execution. All of
//! it is `std::net`/`std::thread` — the daemon adds no dependencies to
//! the workspace.
//!
//! Error policy, per the protocol contract: malformed payloads on an
//! intact frame stream are answered with a typed error frame and the
//! connection continues; framing-level corruption (bad magic/version,
//! oversized declaration) is answered with an error frame and the
//! connection closes, because the byte stream can no longer be trusted.
//! The daemon itself never panics on client input.

use crate::dispatch::{run_dispatcher, BatchPolicy, BatchQueue, Job, Refusal};
use crate::metrics::Metrics;
use crate::protocol::{self, DecodedRequest, ErrorCode, Frame, FrameError, FrameKind, WireScalar};
use fmm_engine::{ArchSource, EngineConfig, EngineStats, FmmEngine, Routing};
use fmm_gemm::BlockingParams;
use fmm_tune::TuneStore;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Construction-time configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: String,
    /// Cross-request micro-batching policy.
    pub batch: BatchPolicy,
    /// Admission bound: pending requests per dtype queue beyond which
    /// new work is refused with a `Busy` error frame.
    pub queue_capacity: usize,
    /// Largest frame payload accepted, in bytes. Bounds per-request
    /// memory *before* any allocation happens.
    pub max_payload_bytes: usize,
    /// Worker count for the engines' batched fan-out (`0` = the rayon
    /// pool width).
    pub workers: usize,
    /// Route through the persistent tune store
    /// (`TuneStore::load_default`), falling back to model routing per
    /// shape on any miss — the production default. `false` keeps routing
    /// purely model-based.
    pub tuned: bool,
    /// Blocking parameters for the engines.
    pub params: BlockingParams,
    /// Architecture parameters for the engines' model routing.
    pub arch: ArchSource,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            max_payload_bytes: 64 << 20,
            workers: 0,
            tuned: true,
            params: BlockingParams::default(),
            arch: ArchSource::Calibrated,
        }
    }
}

struct Lifecycle {
    stopping: Mutex<bool>,
    stopped: Condvar,
}

/// Everything the accept loop, connection threads, and dispatchers share.
struct Shared {
    config: ServeConfig,
    metrics: Arc<Metrics>,
    queue_f64: BatchQueue<f64>,
    queue_f32: BatchQueue<f32>,
    engine_f64: Arc<FmmEngine<f64>>,
    engine_f32: Arc<FmmEngine<f32>>,
    stop: AtomicBool,
    /// Requests admitted whose reply frame has not been flushed yet.
    /// Shutdown joins the dispatchers (which drain the queues) and then
    /// waits for this to reach zero, so "in-flight requests drain" covers
    /// the socket write too, not just the computation.
    in_flight: AtomicU64,
    lifecycle: Lifecycle,
}

impl Shared {
    /// Flip the daemon into shutdown: refuse new work, wake the accept
    /// loop and both dispatchers (which drain their backlogs first).
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue_f64.close();
        self.queue_f32.close();
        let mut stopping = self.lifecycle.stopping.lock().expect("lifecycle poisoned");
        *stopping = true;
        self.lifecycle.stopped.notify_all();
    }

    /// The full plaintext stats body: serving counters plus one line per
    /// dtype engine (rendered via `EngineStats::fields`).
    fn render_stats(&self) -> String {
        let mut out = self.metrics.snapshot().render();
        out.push_str(&format!(
            "fmm_serve_queue_depth_f64 {}\nfmm_serve_queue_depth_f32 {}\n",
            self.queue_f64.depth(),
            self.queue_f32.depth()
        ));
        out.push_str(&format!("engine_f64 {}\n", self.engine_f64.stats()));
        out.push_str(&format!("engine_f32 {}\n", self.engine_f32.stats()));
        out
    }
}

/// A running serving daemon. Obtained from [`Server::spawn`]; dropping the
/// handle does *not* stop the daemon — use [`ServerHandle::shutdown`] (or
/// a client `Shutdown` frame plus [`ServerHandle::wait`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// Namespace for constructing the daemon.
pub struct Server;

impl Server {
    /// Bind, construct engines per `config`, and start serving on
    /// background threads. Returns once the listener is live.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let engine_f64 = Arc::new(build_engine::<f64>(&config));
        let engine_f32 = Arc::new(build_engine::<f32>(&config));
        Self::spawn_with_engines(config, engine_f64, engine_f32)
    }

    /// [`Server::spawn`] with caller-provided engines — the seam tests
    /// and benchmarks use to pin routing/arch, or to share warm engines
    /// across server configurations.
    pub fn spawn_with_engines(
        config: ServeConfig,
        engine_f64: Arc<FmmEngine<f64>>,
        engine_f32: Arc<FmmEngine<f32>>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept + short sleeps: std has no cancellable
        // blocking accept, and a stuck accept would hang shutdown.
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            queue_f64: BatchQueue::new(config.queue_capacity),
            queue_f32: BatchQueue::new(config.queue_capacity),
            metrics: Arc::new(Metrics::default()),
            engine_f64,
            engine_f32,
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            lifecycle: Lifecycle { stopping: Mutex::new(false), stopped: Condvar::new() },
            config,
        });

        let mut threads = Vec::new();
        {
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("fmm-serve-accept".into())
                    .spawn(move || accept_loop(listener, &shared))
                    .expect("spawn accept thread"),
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("fmm-serve-dispatch-f64".into())
                    .spawn(move || {
                        run_dispatcher(
                            &shared.queue_f64,
                            &shared.engine_f64,
                            shared.config.batch,
                            &shared.metrics,
                        )
                    })
                    .expect("spawn f64 dispatcher"),
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("fmm-serve-dispatch-f32".into())
                    .spawn(move || {
                        run_dispatcher(
                            &shared.queue_f32,
                            &shared.engine_f32,
                            shared.config.batch,
                            &shared.metrics,
                        )
                    })
                    .expect("spawn f32 dispatcher"),
            );
        }
        Ok(ServerHandle { addr, shared, threads })
    }
}

/// Build one dtype engine per the serve configuration. Engines are always
/// parallel: the whole point of the dispatcher is handing coalesced
/// batches to `multiply_batch`'s worker fan-out (a 1-thread rayon pool
/// degrades gracefully to in-place execution).
fn build_engine<T: fmm_gemm::GemmScalar>(config: &ServeConfig) -> FmmEngine<T> {
    let routing = if config.tuned {
        Routing::Tuned { store: Arc::new(TuneStore::load_default()) }
    } else {
        Routing::Model
    };
    FmmEngine::new(EngineConfig {
        parallel: true,
        workers: config.workers,
        routing,
        params: config.params,
        arch: config.arch.clone(),
        ..EngineConfig::default()
    })
}

impl ServerHandle {
    /// The resolved listen address (the actual port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving metrics (shared with the daemon threads).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// An owning handle to the metrics, for reading final counts after
    /// [`ServerHandle::wait`]/[`ServerHandle::shutdown`] consume `self`.
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Per-dtype engine counter snapshots.
    pub fn engine_stats(&self) -> (EngineStats, EngineStats) {
        (self.shared.engine_f64.stats(), self.shared.engine_f32.stats())
    }

    /// The full plaintext stats body a `StatsRequest` frame would return.
    pub fn render_stats(&self) -> String {
        self.shared.render_stats()
    }

    /// True once shutdown has been requested (by [`ServerHandle::shutdown`]
    /// or a client `Shutdown` frame).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, then join the accept loop and
    /// dispatchers (in-flight requests drain first). This is the daemon
    /// main loop: `Server::spawn(cfg)?.wait()`.
    pub fn wait(self) {
        {
            let mut stopping = self.shared.lifecycle.stopping.lock().expect("lifecycle poisoned");
            while !*stopping {
                stopping =
                    self.shared.lifecycle.stopped.wait(stopping).expect("lifecycle poisoned");
            }
        }
        self.join();
    }

    /// Request shutdown and join the daemon threads. Idempotent with a
    /// client-initiated `Shutdown` frame.
    pub fn shutdown(self) {
        self.shared.request_stop();
        self.join();
    }

    fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        // The dispatchers have drained their queues, but connection
        // threads are detached — give every admitted request's reply
        // frame time to reach the socket before the caller (e.g. the
        // daemon main) exits the process. Bounded: a client that stops
        // reading must not hold shutdown hostage.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                // Detached: connection threads end when their peer hangs
                // up (or the process exits); joining them would let one
                // idle client stall shutdown.
                let _ = thread::Builder::new()
                    .name("fmm-serve-conn".into())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    loop {
        match protocol::read_frame(&mut reader, shared.config.max_payload_bytes) {
            Ok(frame) => {
                let keep_going = handle_frame(frame, &mut writer, shared);
                if writer.flush().is_err() || !keep_going {
                    return;
                }
            }
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            Err(err) => {
                // Framing-level failure: answer with a typed error frame,
                // then drop the connection — after a bad header the byte
                // stream has no trustworthy frame boundary to resume at.
                shared.metrics.rejects_malformed.fetch_add(1, Ordering::Relaxed);
                let code = match err {
                    FrameError::BadVersion(_) => ErrorCode::UnsupportedVersion,
                    FrameError::Oversized { .. } => ErrorCode::Oversized,
                    _ => ErrorCode::Malformed,
                };
                let payload = protocol::encode_error(code, &err.to_string());
                let _ = protocol::write_frame(&mut writer, FrameKind::Error, &payload);
                let _ = writer.flush();
                return;
            }
        }
    }
}

/// Handle one well-framed message. Returns `false` when the connection
/// should close (shutdown acknowledged).
fn handle_frame(frame: Frame, writer: &mut impl Write, shared: &Arc<Shared>) -> bool {
    match frame.kind {
        FrameKind::Ping => {
            shared.metrics.pings.fetch_add(1, Ordering::Relaxed);
            let _ = protocol::write_frame(writer, FrameKind::Pong, &frame.payload);
            true
        }
        FrameKind::StatsRequest => {
            let body = shared.render_stats();
            let _ = protocol::write_frame(writer, FrameKind::StatsReply, body.as_bytes());
            true
        }
        FrameKind::Shutdown => {
            let _ = protocol::write_frame(writer, FrameKind::Pong, b"");
            shared.request_stop();
            false
        }
        FrameKind::Request => {
            handle_request(&frame.payload, writer, shared);
            true
        }
        // Server-to-client kinds arriving at the server are protocol
        // misuse on an intact frame stream: answer, keep serving.
        FrameKind::Response | FrameKind::Error | FrameKind::Pong | FrameKind::StatsReply => {
            shared.metrics.rejects_malformed.fetch_add(1, Ordering::Relaxed);
            let payload = protocol::encode_error(
                ErrorCode::Malformed,
                &format!("frame kind {:?} is not a client request", frame.kind),
            );
            let _ = protocol::write_frame(writer, FrameKind::Error, &payload);
            true
        }
    }
}

fn handle_request(payload: &[u8], writer: &mut impl Write, shared: &Arc<Shared>) {
    // The frame cap bounds the response side too: decode refuses dims
    // whose result matrix would exceed it (e.g. k = 0 with huge m·n),
    // before anything is allocated.
    match protocol::decode_request(payload, shared.config.max_payload_bytes) {
        Err(message) => {
            shared.metrics.rejects_malformed.fetch_add(1, Ordering::Relaxed);
            let payload = protocol::encode_error(ErrorCode::Malformed, &message);
            let _ = protocol::write_frame(writer, FrameKind::Error, &payload);
        }
        Ok(DecodedRequest::F64 { a, b }) => {
            serve_problem(a, b, &shared.queue_f64, writer, shared);
        }
        Ok(DecodedRequest::F32 { a, b }) => {
            serve_problem(a, b, &shared.queue_f32, writer, shared);
        }
    }
}

/// Admit one decoded problem, block for its result, and write the reply.
fn serve_problem<T: WireScalar>(
    a: fmm_dense::Matrix<T>,
    b: fmm_dense::Matrix<T>,
    queue: &BatchQueue<T>,
    writer: &mut impl Write,
    shared: &Arc<Shared>,
) {
    let (reply, result) = mpsc::channel();
    let job = Job { a, b, reply, enqueued: Instant::now() };
    match queue.try_push(job) {
        Ok(()) => {}
        Err((_, Refusal::Full)) => {
            shared.metrics.rejects_busy.fetch_add(1, Ordering::Relaxed);
            let payload = protocol::encode_error(
                ErrorCode::Busy,
                &format!("pending queue is full ({} requests)", queue.capacity()),
            );
            let _ = protocol::write_frame(writer, FrameKind::Error, &payload);
            return;
        }
        Err((_, Refusal::Closed)) => {
            // Not Busy: nothing about this daemon will ever accept the
            // retry a Busy signal invites.
            let payload = protocol::encode_error(
                ErrorCode::ShuttingDown,
                "daemon is shutting down and accepts no new work",
            );
            let _ = protocol::write_frame(writer, FrameKind::Error, &payload);
            return;
        }
    }
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    // From admission to the flushed reply this request is draining state
    // the daemon must not exit under; see ServerHandle::join.
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    match result.recv() {
        Ok(c) => {
            shared.metrics.responses.fetch_add(1, Ordering::Relaxed);
            let payload = protocol::encode_response(&c);
            // Flush here, not in the connection loop: the in-flight
            // guard below must not release until the bytes left the
            // process (a drained shutdown covers the socket write).
            let _ = protocol::write_frame(writer, FrameKind::Response, &payload)
                .and_then(|()| writer.flush());
        }
        // The dispatcher dropped the reply sender without answering —
        // only possible if it exited mid-drain, which request_stop's
        // close-then-drain ordering is designed to prevent.
        Err(_) => {
            let payload =
                protocol::encode_error(ErrorCode::Internal, "dispatcher dropped the request");
            let _ = protocol::write_frame(writer, FrameKind::Error, &payload)
                .and_then(|()| writer.flush());
        }
    }
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
}
