//! `fmm_serve` — operate the serving daemon from the command line.
//!
//! ```sh
//! fmm_serve serve [--addr 127.0.0.1:7117] [--window-us 2000] [--gap-us 200]
//!                 [--max-batch 32] [--queue 256] [--workers 0] [--no-tuned]
//!                 [--event-threads 2] [--trace] [--incident-dir DIR]
//!                 [--no-watchdog] [--watchdog-stall-ms 1000]
//!                 [--watchdog-abort-after MS] [--slow-ms 250]
//! fmm_serve ping --addr HOST:PORT [--count 3]
//! fmm_serve stats --addr HOST:PORT [--json | --prom]
//! fmm_serve audit --addr HOST:PORT [--threshold 0.5]
//! fmm_serve top --addr HOST:PORT [--interval-ms 1000] [--once]
//! fmm_serve trace --addr HOST:PORT [--last N] [--chrome FILE]
//! fmm_serve doctor INCIDENT.json
//! fmm_serve bench --addr HOST:PORT [--threads 4] [--requests 32]
//!                 [--size 96] [--dtype f64|f32] [--pipeline 0] [--verify]
//! fmm_serve shutdown --addr HOST:PORT
//! ```
//!
//! `serve` runs until a client sends a `Shutdown` frame, then drains
//! in-flight work, prints a final stats snapshot, and exits 0 — the clean
//! shutdown CI asserts. `bench` is the network loadgen: N client threads
//! each issuing M requests over their own connection, reporting aggregate
//! throughput and client-observed latency percentiles. `--pipeline D`
//! switches each thread to the protocol-v2 [`PipelinedClient`] holding a
//! window of D requests in flight per connection; `0` (the default) keeps
//! the blocking v1 client, whose `Busy` refusals are retried with
//! [`retry_busy`] backoff. (The in-process batched-vs-unbatched
//! comparison lives in `fmm-bench`'s `serve_smoke`.)
//!
//! `stats --json` fetches the full observability registry (counters,
//! gauges, per-phase latency histograms) as JSON; `--prom` fetches the
//! same registry as Prometheus plaintext. `trace` dumps recent request
//! phase spans from a server running with `--trace` (or `FMM_TRACE=1`) as
//! a per-request timeline, or as a chrome://tracing JSON file with
//! `--chrome FILE`.
//!
//! `doctor` is the offline incident analyzer: given a dump written by a
//! `--incident-dir` daemon (on SIGTERM/SIGINT, panic, or watchdog abort)
//! or fetched over the wire, it validates the schema tag, reconstructs
//! the flight-recorder timeline, names any stalled watchdog component,
//! ranks slow requests by their dominant phase, summarizes error and
//! refusal bursts, and closes with a one-line diagnosis.
//!
//! `audit` reads the decision-audit section of the stats snapshot and
//! ranks shape classes by model error `|log2(predicted/measured)|`;
//! classes above `--threshold` are flagged as retune candidates together
//! with the `fmm_tune explore` invocation that would refresh them. `top`
//! is the live terminal view: it polls the same snapshot every
//! `--interval-ms`, showing request counters as rates, per-phase latency
//! quantiles, and per-shape-class GFLOP/s computed from the flops and
//! busy-nanos deltas between consecutive snapshots (`--once` prints a
//! single frame for scripts and CI smokes).

use fmm_dense::{fill, norms, Matrix};
use fmm_serve::{retry_busy, BatchPolicy, Client, PipelinedClient, ServeConfig, Server};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!(
            "usage: fmm_serve <serve|ping|stats|audit|top|trace|doctor|bench|shutdown> [options]"
        );
        std::process::exit(2);
    };
    if command == "doctor" {
        // `doctor` takes a positional dump path, not the shared flag bag.
        let Some(path) = argv.get(1) else {
            eprintln!("usage: fmm_serve doctor INCIDENT.json");
            std::process::exit(2);
        };
        cmd_doctor(path);
        return;
    }
    let opts = Options::parse(&argv[1..]);
    match command.as_str() {
        "serve" => cmd_serve(&opts),
        "ping" => cmd_ping(&opts),
        "stats" => cmd_stats(&opts),
        "audit" => cmd_audit(&opts),
        "top" => cmd_top(&opts),
        "trace" => cmd_trace(&opts),
        "bench" => cmd_bench(&opts),
        "shutdown" => cmd_shutdown(&opts),
        other => {
            eprintln!(
                "unknown command {other:?} (serve|ping|stats|audit|top|trace|doctor|bench|shutdown)"
            );
            std::process::exit(2);
        }
    }
}

/// Flat flag bag shared by every subcommand (hand-rolled like the other
/// workspace CLIs; unknown flags are fatal).
struct Options {
    addr: String,
    window_us: u64,
    gap_us: u64,
    max_batch: usize,
    queue: usize,
    workers: usize,
    tuned: bool,
    threads: usize,
    requests: usize,
    size: usize,
    dtype: String,
    count: usize,
    verify: bool,
    event_threads: usize,
    pipeline: usize,
    trace: bool,
    json: bool,
    prom: bool,
    last: u64,
    chrome: Option<String>,
    threshold: f64,
    interval_ms: u64,
    once: bool,
    incident_dir: Option<String>,
    watchdog: bool,
    watchdog_stall_ms: u64,
    watchdog_abort_after_ms: u64,
    slow_ms: u64,
}

impl Options {
    fn parse(argv: &[String]) -> Self {
        let mut o = Options {
            addr: "127.0.0.1:7117".to_string(),
            window_us: 2000,
            gap_us: 200,
            max_batch: 32,
            queue: 256,
            workers: 0,
            tuned: true,
            threads: 4,
            requests: 32,
            size: 96,
            dtype: "f64".to_string(),
            count: 3,
            verify: false,
            event_threads: 2,
            pipeline: 0,
            trace: false,
            json: false,
            prom: false,
            last: 0,
            chrome: None,
            threshold: 0.5,
            interval_ms: 1000,
            once: false,
            incident_dir: None,
            watchdog: true,
            watchdog_stall_ms: 1000,
            watchdog_abort_after_ms: 0,
            slow_ms: 250,
        };
        let mut i = 0;
        let value = |argv: &[String], i: usize, flag: &str| -> String {
            argv.get(i + 1).unwrap_or_else(|| panic!("{flag} takes a value")).clone()
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--addr" => {
                    o.addr = value(argv, i, "--addr");
                    i += 2;
                }
                "--window-us" => {
                    o.window_us = value(argv, i, "--window-us").parse().expect("--window-us: int");
                    i += 2;
                }
                "--gap-us" => {
                    o.gap_us = value(argv, i, "--gap-us").parse().expect("--gap-us: int");
                    i += 2;
                }
                "--max-batch" => {
                    o.max_batch = value(argv, i, "--max-batch").parse().expect("--max-batch: int");
                    i += 2;
                }
                "--queue" => {
                    o.queue = value(argv, i, "--queue").parse().expect("--queue: int");
                    i += 2;
                }
                "--workers" => {
                    o.workers = value(argv, i, "--workers").parse().expect("--workers: int");
                    i += 2;
                }
                "--no-tuned" => {
                    o.tuned = false;
                    i += 1;
                }
                "--threads" => {
                    o.threads = value(argv, i, "--threads").parse().expect("--threads: int");
                    i += 2;
                }
                "--requests" => {
                    o.requests = value(argv, i, "--requests").parse().expect("--requests: int");
                    i += 2;
                }
                "--size" => {
                    o.size = value(argv, i, "--size").parse().expect("--size: int");
                    i += 2;
                }
                "--dtype" => {
                    o.dtype = value(argv, i, "--dtype");
                    i += 2;
                }
                "--count" => {
                    o.count = value(argv, i, "--count").parse().expect("--count: int");
                    i += 2;
                }
                "--verify" => {
                    o.verify = true;
                    i += 1;
                }
                "--event-threads" => {
                    o.event_threads =
                        value(argv, i, "--event-threads").parse().expect("--event-threads: int");
                    i += 2;
                }
                "--pipeline" => {
                    o.pipeline = value(argv, i, "--pipeline").parse().expect("--pipeline: int");
                    i += 2;
                }
                "--trace" => {
                    o.trace = true;
                    i += 1;
                }
                "--json" => {
                    o.json = true;
                    i += 1;
                }
                "--prom" => {
                    o.prom = true;
                    i += 1;
                }
                "--last" => {
                    o.last = value(argv, i, "--last").parse().expect("--last: int");
                    i += 2;
                }
                "--chrome" => {
                    o.chrome = Some(value(argv, i, "--chrome"));
                    i += 2;
                }
                "--threshold" => {
                    o.threshold = value(argv, i, "--threshold").parse().expect("--threshold: num");
                    i += 2;
                }
                "--interval-ms" => {
                    o.interval_ms =
                        value(argv, i, "--interval-ms").parse().expect("--interval-ms: int");
                    i += 2;
                }
                "--once" => {
                    o.once = true;
                    i += 1;
                }
                "--incident-dir" => {
                    o.incident_dir = Some(value(argv, i, "--incident-dir"));
                    i += 2;
                }
                "--no-watchdog" => {
                    o.watchdog = false;
                    i += 1;
                }
                "--watchdog-stall-ms" => {
                    o.watchdog_stall_ms = value(argv, i, "--watchdog-stall-ms")
                        .parse()
                        .expect("--watchdog-stall-ms: int");
                    i += 2;
                }
                "--watchdog-abort-after" => {
                    o.watchdog_abort_after_ms = value(argv, i, "--watchdog-abort-after")
                        .parse()
                        .expect("--watchdog-abort-after: int (ms)");
                    i += 2;
                }
                "--slow-ms" => {
                    o.slow_ms = value(argv, i, "--slow-ms").parse().expect("--slow-ms: int");
                    i += 2;
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        o
    }
}

fn cmd_serve(o: &Options) {
    let config = ServeConfig {
        addr: o.addr.clone(),
        batch: BatchPolicy {
            window: Duration::from_micros(o.window_us),
            max_batch: o.max_batch.max(1),
            straggler_gap: Duration::from_micros(o.gap_us),
        },
        queue_capacity: o.queue,
        workers: o.workers,
        tuned: o.tuned,
        event_threads: o.event_threads.max(1),
        watchdog: o.watchdog,
        watchdog_stall: Duration::from_millis(o.watchdog_stall_ms.max(1)),
        watchdog_abort_after: (o.watchdog_abort_after_ms > 0)
            .then(|| Duration::from_millis(o.watchdog_abort_after_ms)),
        slow_threshold: Duration::from_millis(o.slow_ms.max(1)),
        incident_dir: o.incident_dir.clone(),
        ..ServeConfig::default()
    };
    // `--trace` turns tracing on; its absence defers to the FMM_TRACE
    // environment default already resolved by `ServeConfig::default()`.
    let config = ServeConfig { trace: config.trace || o.trace, ..config };
    let window = config.batch.window;
    let max_batch = config.batch.max_batch;
    let handle = match Server::spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", o.addr);
            std::process::exit(1);
        }
    };
    println!("fmm_serve listening on {}", handle.addr());
    println!("{}", fmm_serve::incident::build_info_line());
    println!(
        "micro-batching: window {:?}, max batch {max_batch}, queue capacity {}, tuned {}, \
         event threads {}",
        window,
        o.queue,
        o.tuned,
        o.event_threads.max(1)
    );
    if o.watchdog {
        println!(
            "watchdog: stall after {} ms{}",
            o.watchdog_stall_ms.max(1),
            if o.watchdog_abort_after_ms > 0 {
                format!(", abort after {} ms", o.watchdog_abort_after_ms)
            } else {
                String::new()
            }
        );
    } else {
        println!("watchdog: disabled");
    }
    if let Some(dir) = &o.incident_dir {
        println!("incident dumps: {dir}");
    }
    let metrics = handle.metrics_arc();
    handle.wait();
    print!("{}", metrics.snapshot().render());
    println!("fmm_serve: shutdown complete");
}

fn connect(o: &Options) -> Client {
    match Client::connect(&o.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", o.addr);
            std::process::exit(1);
        }
    }
}

fn cmd_ping(o: &Options) {
    let mut client = connect(o);
    for i in 0..o.count.max(1) {
        match client.ping() {
            Ok(rtt) => {
                println!("pong {} from {}: {:.3} ms", i + 1, o.addr, rtt.as_secs_f64() * 1e3)
            }
            Err(e) => {
                eprintln!("ping failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_stats(o: &Options) {
    let mut client = connect(o);
    let result = if o.prom {
        client.stats_prometheus()
    } else if o.json {
        client.stats_json()
    } else {
        client.stats()
    };
    match result {
        Ok(body) => {
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
        }
        Err(e) => {
            eprintln!("stats failed: {e}");
            std::process::exit(1);
        }
    }
}

/// One decoded row of the stats snapshot's `audit` section.
struct AuditRow {
    class: String,
    dtype: String,
    samples: u64,
    predicted_nanos: u64,
    measured_nanos: u64,
    flops: u64,
    error_log2: f64,
    mean_gflops: f64,
    best_gflops: f64,
    worst_gflops: f64,
    chosen: String,
    top_source: String,
    err_p50: u64,
    err_p99: u64,
}

/// Fetch `stats --json` from the server and parse it, exiting with a
/// diagnostic on connection or decode failure.
fn fetch_stats_json(o: &Options) -> fmm_core::json::Value {
    let mut client = connect(o);
    let body = client.stats_json().unwrap_or_else(|e| {
        eprintln!("stats failed: {e}");
        std::process::exit(1);
    });
    fmm_core::json::parse(&body).unwrap_or_else(|e| {
        eprintln!("stats reply is not valid JSON: {e}");
        std::process::exit(1);
    })
}

/// Numeric JSON field as f64 (`Int` and `Number` both accepted, 0.0 when
/// absent) — the audit/top readers only need lossy numbers for display.
fn json_num(obj: &std::collections::BTreeMap<String, fmm_core::json::Value>, key: &str) -> f64 {
    use fmm_core::json::Value;
    match obj.get(key) {
        Some(Value::Int(v)) => *v as f64,
        Some(Value::Number(v)) => *v,
        _ => 0.0,
    }
}

fn json_text(obj: &std::collections::BTreeMap<String, fmm_core::json::Value>, key: &str) -> String {
    match obj.get(key) {
        Some(fmm_core::json::Value::String(s)) => s.clone(),
        _ => String::new(),
    }
}

/// Decode the `audit` section into rows sorted worst-model-error first
/// (the `fmm_serve audit` ranking; `top` reuses the same decode).
/// Returns `None` when the snapshot carries no `audit` section at all —
/// an older daemon speaking a pre-audit stats schema — so callers can
/// degrade with a clear message instead of silently showing nothing.
fn decode_audit_rows(stats: &fmm_core::json::Value) -> Option<Vec<AuditRow>> {
    use fmm_core::json::Value;
    let Value::Object(root) = stats else { return None };
    let Some(Value::Object(audit)) = root.get("audit") else { return None };
    let mut rows: Vec<AuditRow> = audit
        .values()
        .filter_map(|entry| {
            let Value::Object(e) = entry else { return None };
            let (top_source, err_p50, err_p99) = match (e.get("sources"), e.get("err_permille")) {
                (Some(Value::Object(sources)), Some(Value::Object(err))) => {
                    let top = sources
                        .iter()
                        .max_by_key(|(_, v)| match v {
                            Value::Int(n) => *n,
                            _ => 0,
                        })
                        .map(|(name, _)| name.clone())
                        .unwrap_or_default();
                    (top, json_num(err, "p50_nanos") as u64, json_num(err, "p99_nanos") as u64)
                }
                _ => (String::new(), 0, 0),
            };
            Some(AuditRow {
                class: json_text(e, "class"),
                dtype: json_text(e, "dtype"),
                samples: json_num(e, "samples") as u64,
                predicted_nanos: json_num(e, "predicted_nanos") as u64,
                measured_nanos: json_num(e, "measured_nanos") as u64,
                flops: json_num(e, "flops") as u64,
                error_log2: json_num(e, "error_log2"),
                mean_gflops: json_num(e, "mean_gflops"),
                best_gflops: json_num(e, "best_gflops"),
                worst_gflops: json_num(e, "worst_gflops"),
                chosen: json_text(e, "chosen"),
                top_source,
                err_p50,
                err_p99,
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.error_log2.partial_cmp(&a.error_log2).unwrap_or(std::cmp::Ordering::Equal)
    });
    Some(rows)
}

/// The one-line degradation message shared by `audit` and `top` when the
/// daemon's stats schema predates the decision audit.
fn audit_schema_missing(addr: &str) -> ! {
    eprintln!(
        "fmm_serve: {addr} reports a stats schema without an audit section \
         (older daemon?) — upgrade the server or use `fmm_serve stats --json`"
    );
    std::process::exit(1);
}

/// Rank shape classes by predicted-vs-measured model error and flag
/// retune candidates, bridging straight into `fmm_tune explore`.
fn cmd_audit(o: &Options) {
    let stats = fetch_stats_json(o);
    let Some(rows) = decode_audit_rows(&stats) else { audit_schema_missing(&o.addr) };
    if rows.is_empty() {
        println!("no audit samples recorded yet (send some multiplies first)");
        return;
    }
    let total_samples: u64 = rows.iter().map(|r| r.samples).sum();
    println!(
        "decision audit: {} shape classes, {} samples, ranked by |log2(predicted/measured)|",
        rows.len(),
        total_samples
    );
    println!(
        "{:<18} {:>5} {:>8} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}  {:<8} chosen",
        "class",
        "dtype",
        "samples",
        "|log2err|",
        "pred ms",
        "meas ms",
        "err p50",
        "err p99",
        "GF/s avg",
        "GF/s best",
        "source"
    );
    for r in &rows {
        println!(
            "{:<18} {:>5} {:>8} {:>10.3} {:>9.3} {:>9.3} {:>8} {:>8} {:>9.2} {:>9.2}  {:<8} {}",
            r.class,
            r.dtype,
            r.samples,
            r.error_log2,
            r.predicted_nanos as f64 / 1e6,
            r.measured_nanos as f64 / 1e6,
            r.err_p50,
            r.err_p99,
            r.mean_gflops,
            r.best_gflops,
            r.top_source,
            r.chosen
        );
    }
    let flagged: Vec<&AuditRow> =
        rows.iter().filter(|r| r.samples > 0 && r.error_log2 > o.threshold).collect();
    if flagged.is_empty() {
        println!("model error within threshold ({:.2} log2) for every class", o.threshold);
        return;
    }
    println!("retune candidates (|log2 err| > {:.2}):", o.threshold);
    for r in &flagged {
        println!(
            "  {}/{}: predicted {:.3} ms vs measured {:.3} ms ({} samples, worst {:.2} GFLOP/s)",
            r.class,
            r.dtype,
            r.predicted_nanos as f64 / 1e6,
            r.measured_nanos as f64 / 1e6,
            r.samples,
            r.worst_gflops
        );
    }
    let classes: Vec<fmm_tune::ShapeClass> =
        flagged.iter().filter_map(|r| fmm_tune::ShapeClass::from_label(&r.class)).collect();
    if let Some(command) = fmm_tune::explore_command(&classes, 0) {
        println!("refresh the tuned store with: {command}");
    }
}

/// Per-class `(flops, measured_nanos)` cumulative totals from one `top`
/// frame, keyed `class/dtype` — the baseline for the next frame's
/// interval GFLOP/s.
type ClassTotals = std::collections::BTreeMap<String, (u64, u64)>;

/// Live terminal view: poll the stats snapshot every `--interval-ms`,
/// rendering request rates, per-phase latency quantiles, and per-class
/// GFLOP/s from flops/busy-nanos deltas between consecutive frames.
fn cmd_top(o: &Options) {
    use fmm_core::json::Value;
    let interval = Duration::from_millis(o.interval_ms.max(1));
    let mut prev: Option<(ClassTotals, f64, Instant)> = None;
    loop {
        let stats = fetch_stats_json(o);
        let now = Instant::now();
        let Value::Object(root) = &stats else {
            eprintln!("stats reply is not a JSON object");
            std::process::exit(1);
        };
        let empty = std::collections::BTreeMap::new();
        let counters = match root.get("counters") {
            Some(Value::Object(c)) => c,
            _ => &empty,
        };
        let gauges = match root.get("gauges") {
            Some(Value::Object(g)) => g,
            _ => &empty,
        };
        let responses = json_num(counters, "fmm_serve_responses_total");
        let elapsed =
            prev.as_ref().map(|(_, _, t)| now.duration_since(*t).as_secs_f64()).unwrap_or(0.0);
        let rate = match &prev {
            Some((_, prev_responses, _)) if elapsed > 0.0 => {
                (responses - prev_responses).max(0.0) / elapsed
            }
            _ => 0.0,
        };
        if !o.once {
            // ANSI clear + home keeps the frame in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        println!("fmm_serve top — {} (interval {} ms)", o.addr, o.interval_ms);
        if let Some(Value::Object(build)) = root.get("build") {
            println!(
                "server {} git={} kernel_f64={} kernel_f32={} protocol={}",
                json_text(build, "version"),
                json_text(build, "git_hash"),
                json_text(build, "kernel_f64"),
                json_text(build, "kernel_f32"),
                json_text(build, "protocol_versions"),
            );
        }
        println!(
            "requests {:>10}  responses {:>10}  {:>8.1} req/s  inflight {:>4}  conns {:>4}",
            json_num(counters, "fmm_serve_requests_total") as u64,
            responses as u64,
            rate,
            json_num(gauges, "fmm_serve_inflight") as i64,
            json_num(gauges, "fmm_serve_connections") as i64,
        );
        println!(
            "batches  {:>10}  items     {:>10}  occupancy max {:>3}  busy rejects {:>6}",
            json_num(counters, "fmm_serve_batches_total") as u64,
            json_num(counters, "fmm_serve_batched_items_total") as u64,
            json_num(counters, "fmm_serve_batch_occupancy_max") as u64,
            json_num(counters, "fmm_serve_rejects_busy_total") as u64,
        );
        println!("{:<28} {:>9} {:>9} {:>9} {:>9}", "phase", "count", "p50 ms", "p99 ms", "max ms");
        if let Some(Value::Object(hists)) = root.get("histograms") {
            for name in
                ["fmm_serve_queue_wait_nanos", "fmm_serve_service_nanos", "fmm_serve_latency_nanos"]
            {
                if let Some(Value::Object(h)) = hists.get(name) {
                    println!(
                        "{:<28} {:>9} {:>9.3} {:>9.3} {:>9.3}",
                        name.trim_start_matches("fmm_serve_").trim_end_matches("_nanos"),
                        json_num(h, "count") as u64,
                        json_num(h, "p50_nanos") / 1e6,
                        json_num(h, "p99_nanos") / 1e6,
                        json_num(h, "max_nanos") / 1e6,
                    );
                }
            }
        }
        let Some(rows) = decode_audit_rows(&stats) else { audit_schema_missing(&o.addr) };
        let mut totals = std::collections::BTreeMap::new();
        if rows.is_empty() {
            println!("audit: no samples yet");
        } else {
            println!(
                "{:<18} {:>5} {:>8} {:>10} {:>11} {:>11}  {:<8}",
                "class", "dtype", "samples", "|log2err|", "GF/s now", "GF/s avg", "source"
            );
            for r in &rows {
                totals.insert(format!("{}/{}", r.class, r.dtype), (r.flops, r.measured_nanos));
                // Interval GFLOP/s from the deltas between frames; the
                // cumulative mean stands in until a second frame exists
                // (and whenever the class was idle this interval).
                let now_gflops = prev
                    .as_ref()
                    .and_then(|(prev_totals, _, _)| {
                        let (pf, pn) = prev_totals.get(&format!("{}/{}", r.class, r.dtype))?;
                        let dn = r.measured_nanos.saturating_sub(*pn);
                        (dn > 0).then(|| r.flops.saturating_sub(*pf) as f64 / dn as f64)
                    })
                    .unwrap_or(r.mean_gflops);
                println!(
                    "{:<18} {:>5} {:>8} {:>10.3} {:>11.2} {:>11.2}  {:<8}",
                    r.class,
                    r.dtype,
                    r.samples,
                    r.error_log2,
                    now_gflops,
                    r.mean_gflops,
                    r.top_source
                );
            }
        }
        if o.once {
            return;
        }
        prev = Some((totals, responses, now));
        std::thread::sleep(interval);
    }
}

/// Fetch recent tracing spans and render them as per-request phase
/// timelines (or a chrome://tracing JSON file with `--chrome`).
fn cmd_trace(o: &Options) {
    let mut client = connect(o);
    let body = client.trace(o.last).unwrap_or_else(|e| {
        eprintln!("trace failed: {e}");
        std::process::exit(1);
    });
    let value = fmm_core::json::parse(&body).unwrap_or_else(|e| {
        eprintln!("trace reply is not valid JSON: {e}");
        std::process::exit(1);
    });
    let events = decode_trace_events(&value);
    if events.is_empty() {
        println!("no spans recorded (is the server running with --trace / FMM_TRACE=1?)");
        return;
    }
    if let Some(path) = &o.chrome {
        let json = fmm_obs::trace::chrome_trace(&events);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("{} spans written to {path} (chrome://tracing format)", events.len());
        return;
    }
    print_timelines(&events);
}

/// Rebuild typed span events from the wire JSON (inverse of the server's
/// `trace_json` rendering). Unknown kinds are skipped so a newer server
/// stays readable.
fn decode_trace_events(value: &fmm_core::json::Value) -> Vec<fmm_obs::SpanEvent> {
    use fmm_core::json::Value;
    let Value::Array(items) = value else { return Vec::new() };
    let field = |obj: &std::collections::BTreeMap<String, Value>, key: &str| -> u64 {
        match obj.get(key) {
            Some(Value::Int(v)) => *v as u64,
            _ => 0,
        }
    };
    items
        .iter()
        .filter_map(|item| {
            let Value::Object(obj) = item else { return None };
            let Some(Value::String(kind_name)) = obj.get("kind") else { return None };
            let kind = fmm_obs::SpanKind::from_name(kind_name)?;
            Some(fmm_obs::SpanEvent {
                kind,
                request_id: field(obj, "request_id"),
                start_nanos: field(obj, "start_nanos"),
                end_nanos: field(obj, "end_nanos"),
                thread: field(obj, "thread") as u32,
            })
        })
        .collect()
}

/// Group spans by request id and print each request's phases in start
/// order, timestamps relative to the earliest span in the dump.
fn print_timelines(events: &[fmm_obs::SpanEvent]) {
    let epoch = events.iter().map(|e| e.start_nanos).min().unwrap_or(0);
    let mut by_request: std::collections::BTreeMap<u64, Vec<&fmm_obs::SpanEvent>> =
        std::collections::BTreeMap::new();
    for e in events {
        by_request.entry(e.request_id).or_default().push(e);
    }
    for (request_id, mut spans) in by_request {
        spans.sort_by_key(|e| (e.start_nanos, e.end_nanos));
        if request_id == 0 {
            println!("untagged spans (no request id):");
        } else {
            println!("request {request_id}:");
        }
        for e in spans {
            let at_ms = (e.start_nanos - epoch) as f64 / 1e6;
            let dur_us = e.end_nanos.saturating_sub(e.start_nanos) as f64 / 1e3;
            if dur_us == 0.0 {
                println!("  {:<14} @ {at_ms:>10.3} ms  (thread {})", e.kind.name(), e.thread);
            } else {
                println!(
                    "  {:<14} @ {at_ms:>10.3} ms  +{dur_us:>9.1} us  (thread {})",
                    e.kind.name(),
                    e.thread
                );
            }
        }
    }
}

/// Offline incident analyzer: read a dump produced by `--incident-dir`
/// (or fetched over the wire), validate its schema tag, and turn the raw
/// flight ring + watchdog roster + counters into a post-mortem story:
/// what tripped the dump, which component (if any) was stalled, which
/// connection was busiest, where the slowest requests spent their time,
/// and whether errors or refusals were bursting. Exits nonzero on a
/// missing/invalid/foreign-schema file so scripts can gate on it.
fn cmd_doctor(path: &str) {
    use fmm_core::json::Value;
    use fmm_obs::FlightEvent;
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("fmm_serve doctor: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = fmm_core::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("fmm_serve doctor: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let Value::Object(root) = &doc else {
        eprintln!("fmm_serve doctor: {path} is not a JSON object");
        std::process::exit(1);
    };
    match root.get("schema") {
        Some(Value::String(tag)) if tag == fmm_serve::incident::INCIDENT_SCHEMA => {}
        Some(Value::String(tag)) => {
            eprintln!(
                "fmm_serve doctor: {path} carries schema {tag:?}, expected {:?} — \
                 refusing to misread it",
                fmm_serve::incident::INCIDENT_SCHEMA
            );
            std::process::exit(1);
        }
        _ => {
            eprintln!("fmm_serve doctor: {path} has no schema tag — not an incident dump");
            std::process::exit(1);
        }
    }
    let text_of = |key: &str| match root.get(key) {
        Some(Value::String(s)) => s.clone(),
        _ => String::new(),
    };
    let trigger = text_of("trigger");
    if let Some(Value::Object(build)) = root.get("build") {
        println!(
            "incident: {} — fmm_serve {} git={} kernel_f64={} kernel_f32={}",
            if trigger.is_empty() { "unknown trigger" } else { &trigger },
            json_text(build, "version"),
            json_text(build, "git_hash"),
            json_text(build, "kernel_f64"),
            json_text(build, "kernel_f32"),
        );
    } else {
        println!("incident: {}", if trigger.is_empty() { "unknown trigger" } else { &trigger });
    }

    // Watchdog roster: component ids in flight events index this list.
    let mut components: Vec<String> = Vec::new();
    let mut stalls_total = 0u64;
    if let Some(Value::Object(wd)) = root.get("watchdog") {
        if let Some(Value::Array(names)) = wd.get("components") {
            components = names
                .iter()
                .map(|v| match v {
                    Value::String(s) => s.clone(),
                    _ => String::new(),
                })
                .collect();
        }
        stalls_total = json_num(wd, "stalls_total") as u64;
        println!(
            "watchdog: {} components [{}], stalls {}",
            components.len(),
            components.join(", "),
            stalls_total
        );
    } else {
        println!("watchdog: not running");
    }
    let component_name = |id: u64| -> String {
        components.get(id as usize).cloned().unwrap_or_else(|| format!("component #{id}"))
    };

    // Re-decode the flight ring from the raw encoded fields; entries a
    // newer binary wrote with kinds this one doesn't know keep their
    // recorded detail string and are skipped by the typed passes.
    struct Entry {
        nanos: u64,
        detail: String,
        event: Option<FlightEvent>,
    }
    let mut entries: Vec<Entry> = Vec::new();
    if let Some(Value::Array(flight)) = root.get("flight") {
        for item in flight {
            let Value::Object(rec) = item else { continue };
            let event = FlightEvent::decode(
                json_num(rec, "kind_id") as u64,
                json_num(rec, "a") as u64,
                json_num(rec, "b") as u64,
                json_num(rec, "c") as u64,
                json_num(rec, "d") as u64,
            );
            entries.push(Entry {
                nanos: json_num(rec, "nanos") as u64,
                detail: json_text(rec, "detail"),
                event,
            });
        }
    }
    if entries.is_empty() {
        println!("flight recorder: empty (daemon recorded no events before the dump)");
    }

    // Stalled components: every watchdog-stall event, worst first.
    let mut stalls: Vec<(u64, u64, u64)> = entries
        .iter()
        .filter_map(|e| match e.event {
            Some(FlightEvent::WatchdogStall { component, stalled_nanos, level }) => {
                Some((component, stalled_nanos, level))
            }
            _ => None,
        })
        .collect();
    stalls.sort_by_key(|&(_, nanos, _)| std::cmp::Reverse(nanos));
    if let Some(&(component, stalled_nanos, level)) = stalls.first() {
        println!(
            "stalled component: {} — no progress for {:.3} s (escalation level {level}, \
             {} stall events recorded)",
            component_name(component),
            stalled_nanos as f64 / 1e9,
            stalls.len()
        );
    }

    // Busiest connection from conn-closed request tallies (the daemon
    // closes every connection during drain, so a SIGTERM dump sees all).
    let mut conns_accepted = 0u64;
    let mut busiest: Option<(u64, u64)> = None;
    for e in &entries {
        match e.event {
            Some(FlightEvent::ConnAccepted { .. }) => conns_accepted += 1,
            Some(FlightEvent::ConnClosed { conn, requests })
                if busiest.map(|(_, best)| requests > best).unwrap_or(true) =>
            {
                busiest = Some((conn, requests));
            }
            _ => {}
        }
    }
    match busiest {
        Some((conn, requests)) => println!(
            "connections: {conns_accepted} accepted; busiest conn #{conn} ({requests} requests)"
        ),
        None if conns_accepted > 0 => {
            println!("connections: {conns_accepted} accepted, none closed before the dump")
        }
        None => println!("connections: none recorded"),
    }

    // Slow requests, ranked by total latency, attributed to their
    // dominant phase.
    let mut slow: Vec<(u64, u64, fmm_obs::SlowPhase, u64)> = entries
        .iter()
        .filter_map(|e| match e.event {
            Some(FlightEvent::SlowRequest { request_id, total_nanos, phase, phase_nanos }) => {
                Some((request_id, total_nanos, phase, phase_nanos))
            }
            _ => None,
        })
        .collect();
    slow.sort_by_key(|&(_, total, _, _)| std::cmp::Reverse(total));
    if let Some(&(request_id, total_nanos, phase, phase_nanos)) = slow.first() {
        println!(
            "slow requests: {} over threshold; slowest request {request_id} took {:.3} s, \
             dominated by {} ({:.3} s)",
            slow.len(),
            total_nanos as f64 / 1e9,
            phase.name(),
            phase_nanos as f64 / 1e9,
        );
    } else {
        println!("slow requests: none over threshold");
    }

    // Error and refusal bursts from the flight ring (order-of-arrival
    // detail lives in the timeline below; this is the tally).
    let mut errors: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut refusals: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in &entries {
        match e.event {
            Some(FlightEvent::ErrorSent { code, .. }) => {
                let name = match code {
                    1 => "malformed",
                    2 => "unsupported-version",
                    3 => "oversized",
                    4 => "busy",
                    5 => "internal",
                    6 => "shutting-down",
                    _ => "unknown",
                };
                *errors.entry(name).or_default() += 1;
            }
            Some(FlightEvent::AdmissionRefused { reason, .. }) => {
                *refusals.entry(reason.name()).or_default() += 1;
            }
            _ => {}
        }
    }
    let tally = |map: &std::collections::BTreeMap<&'static str, u64>| -> String {
        map.iter().map(|(k, v)| format!("{k} {v}")).collect::<Vec<_>>().join(", ")
    };
    if !errors.is_empty() {
        println!("errors sent: {}", tally(&errors));
    }
    if !refusals.is_empty() {
        println!("admission refusals: {}", tally(&refusals));
    }

    // Timeline: the tail of the ring, timestamps relative to the oldest
    // retained event.
    let epoch = entries.iter().map(|e| e.nanos).min().unwrap_or(0);
    const TIMELINE_TAIL: usize = 20;
    let start = entries.len().saturating_sub(TIMELINE_TAIL);
    if !entries.is_empty() {
        println!("timeline (last {} of {} events):", entries.len() - start, entries.len());
        for e in &entries[start..] {
            let at = e.nanos.saturating_sub(epoch) as f64 / 1e9;
            let line = match &e.event {
                Some(ev) => ev.describe(),
                None if !e.detail.is_empty() => e.detail.clone(),
                None => "unknown event".to_string(),
            };
            println!("  +{at:>9.3}s  {line}");
        }
    }

    // The one-line verdict scripts grep for.
    if let Some(&(component, stalled_nanos, _)) = stalls.first() {
        println!(
            "diagnosis: {} stalled ({:.3} s without progress) before the {} dump",
            component_name(component),
            stalled_nanos as f64 / 1e9,
            if trigger.is_empty() { "incident" } else { &trigger }
        );
    } else if stalls_total > 0 {
        println!(
            "diagnosis: {stalls_total} watchdog stalls counted but none retained in the \
             flight ring — raise FLIGHT_CAPACITY or dump sooner"
        );
    } else {
        match trigger.as_str() {
            "sigterm" | "sigint" => println!(
                "diagnosis: clean exit — {} received, no watchdog stalls, in-flight work drained",
                trigger.to_uppercase()
            ),
            "panic" => println!(
                "diagnosis: panic with no prior watchdog stall — see the crashed process's \
                 stderr for the panic message"
            ),
            "watchdog-abort" => println!(
                "diagnosis: watchdog abort requested but no stall event retained — \
                 inspect the timeline above"
            ),
            _ => println!("diagnosis: on-demand snapshot, no fault recorded"),
        }
    }
}

fn cmd_shutdown(o: &Options) {
    let mut client = connect(o);
    match client.shutdown() {
        Ok(()) => println!("shutdown acknowledged by {}", o.addr),
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The network loadgen: `threads` clients × `requests` square problems
/// each. Throughput is wall-clock over all completed requests; latency is
/// client-observed (send → response decoded), summarized at p50/p99.
fn cmd_bench(o: &Options) {
    assert!(o.dtype == "f64" || o.dtype == "f32", "--dtype takes f64 or f32");
    let n = o.size;
    let mode =
        if o.pipeline > 0 { format!("pipelined x{}", o.pipeline) } else { "blocking".to_string() };
    println!(
        "bench: {} threads x {} requests, {}^3 {}, {mode}, against {}",
        o.threads, o.requests, n, o.dtype, o.addr
    );

    // Warmup (and connectivity check): one request outside the timed
    // region so the server's decision/plan/arena caches are hot.
    {
        let mut client = connect(o);
        run_requests(&mut client, o, 1, 0);
    }

    let t0 = Instant::now();
    let all_latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..o.threads.max(1))
            .map(|t| {
                s.spawn(move || {
                    if o.pipeline > 0 {
                        if o.dtype == "f32" {
                            run_pipelined::<f32>(o, o.requests, t as u64, o.pipeline)
                        } else {
                            run_pipelined::<f64>(o, o.requests, t as u64, o.pipeline)
                        }
                    } else {
                        let mut client = connect(o);
                        run_requests(&mut client, o, o.requests, t as u64)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench thread panicked")).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    let latencies_secs: Vec<f64> = all_latencies.into_iter().flatten().collect();
    let total = latencies_secs.len();
    let summary = fmm_serve::metrics::summarize(&latencies_secs);
    let flops = 2.0 * (n as f64).powi(3) * total as f64;
    println!(
        "{total} requests in {wall:.3} s: {:.1} req/s, {:.2} GFLOP/s aggregate",
        total as f64 / wall,
        flops / wall / 1e9
    );
    println!(
        "latency: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        summary.mean_ms, summary.p50_ms, summary.p99_ms
    );
}

/// How patiently the loadgen rides out `Busy` refusals: up to 8 tries
/// with backoff starting at 1 ms. Enough to survive a saturated queue
/// window; a server that refuses for this long is a real result.
const BUSY_ATTEMPTS: usize = 8;
const BUSY_BASE_DELAY: Duration = Duration::from_millis(1);

/// Issue `count` requests on one connection; returns per-request client
/// latencies in seconds. `Busy` refusals are retried with backoff (the
/// latency clock keeps running across retries, so refusals show up as
/// tail latency, not as missing samples). With `--verify`, the first
/// response is checked against the local blocked-GEMM reference.
fn run_requests(client: &mut Client, o: &Options, count: usize, seed: u64) -> Vec<f64> {
    let n = o.size;
    let mut latencies = Vec::with_capacity(count);
    if o.dtype == "f32" {
        let a = fill::bench_workload_t::<f32>(n, n, 2 * seed + 1);
        let b = fill::bench_workload_t::<f32>(n, n, 2 * seed + 2);
        for i in 0..count {
            let t0 = Instant::now();
            let c = retry_busy(BUSY_ATTEMPTS, BUSY_BASE_DELAY, seed ^ i as u64, || {
                client.multiply(&a, &b)
            })
            .unwrap_or_else(|e| {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            });
            latencies.push(t0.elapsed().as_secs_f64());
            if o.verify && i == 0 {
                verify_against_reference(&a, &b, &c);
            }
        }
    } else {
        let a = fill::bench_workload(n, n, 2 * seed + 1);
        let b = fill::bench_workload(n, n, 2 * seed + 2);
        for i in 0..count {
            let t0 = Instant::now();
            let c = retry_busy(BUSY_ATTEMPTS, BUSY_BASE_DELAY, seed ^ i as u64, || {
                client.multiply(&a, &b)
            })
            .unwrap_or_else(|e| {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            });
            latencies.push(t0.elapsed().as_secs_f64());
            if o.verify && i == 0 {
                verify_against_reference(&a, &b, &c);
            }
        }
    }
    latencies
}

/// Pipelined loadgen body: one protocol-v2 [`PipelinedClient`] keeping up
/// to `depth` requests in flight on a single connection; returns
/// per-request latencies (send → matched response) in seconds. A `Busy`
/// refusal re-sends the same problem after a short pause without
/// resetting that request's latency clock.
fn run_pipelined<T>(o: &Options, count: usize, seed: u64, depth: usize) -> Vec<f64>
where
    T: fmm_serve::WireScalar + fmm_gemm::GemmScalar,
{
    let n = o.size;
    let a = fill::bench_workload_t::<T>(n, n, 2 * seed + 1);
    let b = fill::bench_workload_t::<T>(n, n, 2 * seed + 2);
    let mut client = PipelinedClient::connect(&o.addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {}: {e}", o.addr);
        std::process::exit(1);
    });
    let send = |client: &mut PipelinedClient| {
        client.send(&a, &b).unwrap_or_else(|e| {
            eprintln!("send failed: {e}");
            std::process::exit(1);
        })
    };
    let mut latencies = Vec::with_capacity(count);
    let mut window: VecDeque<(u64, Instant)> = VecDeque::with_capacity(depth);
    let mut sent = 0usize;
    let mut verified = !o.verify;
    while latencies.len() < count {
        while sent < count && window.len() < depth {
            let t0 = Instant::now();
            window.push_back((send(&mut client), t0));
            sent += 1;
        }
        let (id, t0) = window.pop_front().expect("in-flight window empty");
        match client.recv::<T>(id) {
            Ok(c) => {
                latencies.push(t0.elapsed().as_secs_f64());
                if !verified {
                    verified = true;
                    verify_against_reference(&a, &b, &c);
                }
            }
            Err(e) if e.is_busy() => {
                std::thread::sleep(BUSY_BASE_DELAY);
                window.push_back((send(&mut client), t0));
            }
            Err(e) => {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            }
        }
    }
    latencies
}

fn verify_against_reference<T: fmm_gemm::GemmScalar>(a: &Matrix<T>, b: &Matrix<T>, c: &Matrix<T>) {
    let mut c_ref = Matrix::<T>::zeros(a.rows(), b.cols());
    fmm_gemm::gemm(c_ref.as_mut(), a.as_ref(), b.as_ref());
    let err = norms::rel_error(c.cast::<f64>().as_ref(), c_ref.cast::<f64>().as_ref());
    let bound = T::accuracy_bound(a.cols(), 2).max(1e-9);
    assert!(err < bound, "served result diverges from blocked GEMM: {err} (bound {bound})");
}
