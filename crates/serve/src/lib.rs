//! `fmm-serve` — a multi-client serving daemon for the FMM engine stack.
//!
//! Everything below this crate computes; this crate *serves*. It closes
//! the gap between `FmmEngine::multiply_batch` — which already fans many
//! independent problems out over a worker pool, the way the
//! Benson–Ballard parallel-FMM framework schedules them — and actual
//! network clients that arrive one problem at a time:
//!
//! * a **length-prefixed binary frame protocol** over TCP
//!   ([`protocol`]): magic + version + kind + length header (v2 adds a
//!   per-frame `request_id` for pipelining), row-major little-endian
//!   matrix payloads tagged with dtype and `m/k/n`, defensively decoded
//!   (malformed input degrades to typed error frames, never a panic or a
//!   hang);
//! * a **readiness-loop serving core** ([`server`] over [`poller`] and
//!   [`conn`]): every connection is multiplexed onto a small fixed set of
//!   nonblocking event-loop threads (epoll on Linux, `poll(2)` on other
//!   Unix), with request payloads decoded **straight into pooled aligned
//!   buffers** ([`buffers`]) — one copy off the wire — and responses
//!   written from a scatter list with partial-write continuation, so slow
//!   readers cost backlog bytes, never a blocked thread;
//! * a **micro-batching dispatcher** ([`dispatch`]): concurrent in-flight
//!   requests are coalesced under a window/size policy into one
//!   `multiply_batch` call per dtype over strided views of the pooled
//!   wire buffers, so unrelated clients share a fan-out;
//! * **admission control**: a bounded pending queue per dtype plus a
//!   per-connection pipelining bound; over either, requests are refused
//!   immediately with a `Busy` error frame — backpressure instead of
//!   unbounded memory growth;
//! * **observability** ([`metrics`], backed by `fmm-obs`):
//!   request/batch/reject counters, batch occupancy, per-connection
//!   pipelining depth, and lock-free log-bucketed latency histograms
//!   (queue-wait vs service splits over *every* sample since start), plus
//!   ingest-pool occupancy and per-dtype `EngineStats` snapshots — served
//!   as the historical plaintext stats frame, a JSON registry snapshot
//!   (`StatsJson`), or Prometheus plaintext exposition; with tracing
//!   enabled ([`ServeConfig::trace`] / `FMM_TRACE=1`), every request
//!   phase records a span retrievable over the wire (`Trace`);
//! * **client libraries** ([`client`]): the blocking v1 [`Client`], the
//!   pipelined v2 [`PipelinedClient`] (out-of-order responses matched by
//!   request id), the [`client::retry_busy`] backoff helper, and the
//!   `fmm_serve` CLI (`serve` / `ping` / `stats` / `trace` / `bench` /
//!   `shutdown`).
//!
//! # Example
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//! use fmm_engine::{ArchSource, EngineConfig, FmmEngine};
//! use fmm_gemm::BlockingParams;
//! use fmm_model::ArchParams;
//! use fmm_serve::{Client, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! // Spawn on a free loopback port. Tests pin small blocking parameters
//! // and the paper arch to stay fast and deterministic; production uses
//! // `ServeConfig::default()` (tuned routing, calibrated arch).
//! let config = EngineConfig {
//!     parallel: true,
//!     params: BlockingParams::tiny(),
//!     arch: ArchSource::Fixed(ArchParams::paper_machine()),
//!     ..EngineConfig::default()
//! };
//! let handle = Server::spawn_with_engines(
//!     ServeConfig { params: BlockingParams::tiny(), ..ServeConfig::default() },
//!     Arc::new(FmmEngine::<f64>::new(config.clone())),
//!     Arc::new(FmmEngine::<f32>::new(config)),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let a = fill::bench_workload(48, 32, 1);
//! let b = fill::bench_workload(32, 40, 2);
//! let c = client.multiply(&a, &b).unwrap();
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
//! client.shutdown().unwrap();
//! handle.wait();
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod buffers;
pub mod client;
pub mod conn;
pub mod dispatch;
pub mod incident;
pub mod metrics;
pub mod poller;
pub mod protocol;
pub mod server;

pub use buffers::{BufferPool, IngestPools, OperandStage, PoolStats, PooledBuf, WireBuf};
pub use client::{retry_busy, Client, ClientError, PipelinedClient};
pub use dispatch::{
    BatchPolicy, BatchQueue, Completion, CompletionSink, ConnAddr, DispatchObs, Job, Refusal,
    ReplySink,
};
pub use metrics::{LatencyStats, Metrics, MetricsSnapshot};
pub use protocol::{Dtype, ErrorCode, Frame, FrameError, FrameKind, FrameV, WireScalar};
pub use server::{ServeConfig, Server, ServerHandle};
