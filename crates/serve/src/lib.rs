//! `fmm-serve` — a multi-client serving daemon for the FMM engine stack.
//!
//! Everything below this crate computes; this crate *serves*. It closes
//! the gap between `FmmEngine::multiply_batch` — which already fans many
//! independent problems out over a worker pool, the way the
//! Benson–Ballard parallel-FMM framework schedules them — and actual
//! network clients that arrive one problem at a time:
//!
//! * a **length-prefixed binary frame protocol** over TCP
//!   ([`protocol`]): magic + version + kind + length header, row-major
//!   little-endian matrix payloads tagged with dtype and `m/k/n`,
//!   defensively decoded (malformed input degrades to typed error
//!   frames, never a panic or a hang);
//! * a **micro-batching dispatcher** ([`dispatch`]): concurrent in-flight
//!   requests are coalesced under a window/size policy into one
//!   `multiply_batch` call per dtype, so unrelated clients share a
//!   fan-out;
//! * **admission control**: a bounded pending queue per dtype; when it is
//!   full, requests are refused immediately with a `Busy` error frame —
//!   backpressure instead of unbounded memory growth;
//! * **live metrics** ([`metrics`]): request/batch/reject counters, batch
//!   occupancy, p50/p99 service latency, and per-dtype `EngineStats`
//!   snapshots, served as a plaintext stats frame;
//! * a **blocking client library** ([`client`]) and the `fmm_serve` CLI
//!   (`serve` / `ping` / `stats` / `bench` / `shutdown`).
//!
//! # Example
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//! use fmm_engine::{ArchSource, EngineConfig, FmmEngine};
//! use fmm_gemm::BlockingParams;
//! use fmm_model::ArchParams;
//! use fmm_serve::{Client, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! // Spawn on a free loopback port. Tests pin small blocking parameters
//! // and the paper arch to stay fast and deterministic; production uses
//! // `ServeConfig::default()` (tuned routing, calibrated arch).
//! let config = EngineConfig {
//!     parallel: true,
//!     params: BlockingParams::tiny(),
//!     arch: ArchSource::Fixed(ArchParams::paper_machine()),
//!     ..EngineConfig::default()
//! };
//! let handle = Server::spawn_with_engines(
//!     ServeConfig { params: BlockingParams::tiny(), ..ServeConfig::default() },
//!     Arc::new(FmmEngine::<f64>::new(config.clone())),
//!     Arc::new(FmmEngine::<f32>::new(config)),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let a = fill::bench_workload(48, 32, 1);
//! let b = fill::bench_workload(32, 40, 2);
//! let c = client.multiply(&a, &b).unwrap();
//!
//! let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
//! assert!(fmm_dense::norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
//! client.shutdown().unwrap();
//! handle.wait();
//! ```

pub mod client;
pub mod dispatch;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use dispatch::{BatchPolicy, BatchQueue, Job, Refusal};
pub use metrics::{LatencyStats, Metrics, MetricsSnapshot};
pub use protocol::{Dtype, ErrorCode, Frame, FrameError, FrameKind, WireScalar};
pub use server::{ServeConfig, Server, ServerHandle};
