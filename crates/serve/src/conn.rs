//! Per-connection state for the event-loop server: an incremental frame
//! decoder that reads request operands straight into pooled buffers, and
//! a scatter-list write queue with partial-write continuation.
//!
//! The decoder is a byte-exact state machine over the v1/v2 frame
//! grammar. Every `read(2)` targets exactly the bytes the current state
//! still needs — a header remainder, the request prelude, or the tail of
//! an operand buffer — so reads never cross a frame boundary and a
//! request's `A`/`B` bytes land in their [`PooledBuf`]s in one copy off
//! the wire. Malformed input follows the protocol contract: payload-level
//! problems (bad dtype, dimension mismatch, over-cap result) skip the
//! rest of the payload and emit a recoverable error event; framing-level
//! corruption (bad magic/version/kind, over-cap declaration) emits a
//! fatal event after which the stream is never parsed again.
//!
//! The write queue holds segments rather than flattened bytes: a response
//! is `Bytes(header ‖ prelude)` followed by `Buf(result)`, written with
//! continuation from wherever the last `write(2)` stopped — a slow reader
//! costs backlog bytes, never a blocked thread.

use crate::buffers::{IngestPools, OperandStage, WireBuf};
use crate::protocol::{
    self, ErrorCode, FrameKind, RequestDims, HEADER_LEN, HEADER_LEN_V2, REQUEST_PRELUDE, VERSION,
    VERSION_V2,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Frame metadata carried through the decoder states and into events.
#[derive(Clone, Copy, Debug)]
pub struct FrameHead {
    /// Wire version of the frame ([`VERSION`] or [`VERSION_V2`]).
    pub version: u8,
    /// The frame's request id (0 for v1 frames).
    pub request_id: u64,
    /// The frame kind.
    pub kind: FrameKind,
    /// Declared payload length (cap-checked).
    pub payload_len: usize,
}

/// One fully decoded inbound frame, ready for the server to act on.
#[derive(Debug)]
pub enum InEvent {
    /// A well-formed multiply request; operands already staged in pooled
    /// buffers, host byte order.
    Request {
        /// Frame metadata (version + id are echoed in the reply).
        head: FrameHead,
        /// Validated dimensions.
        dims: RequestDims,
        /// The staged `A`/`B` operands.
        operands: OperandStage,
    },
    /// A liveness probe; the payload is echoed back.
    Ping {
        /// Frame metadata.
        head: FrameHead,
        /// The payload to echo.
        payload: Vec<u8>,
    },
    /// A stats snapshot request.
    Stats {
        /// Frame metadata.
        head: FrameHead,
    },
    /// A registry-snapshot export request.
    StatsJson {
        /// Frame metadata.
        head: FrameHead,
        /// Render Prometheus plaintext instead of JSON (payload said
        /// `prometheus`).
        prometheus: bool,
    },
    /// A tracing-span dump request.
    Trace {
        /// Frame metadata.
        head: FrameHead,
        /// Most-recent event budget (0 = all retained events).
        last: u64,
    },
    /// A shutdown request.
    Shutdown {
        /// Frame metadata.
        head: FrameHead,
    },
    /// A live incident-dump request.
    Incident {
        /// Frame metadata.
        head: FrameHead,
    },
    /// A decodable frame that cannot be served: answer with a typed error
    /// and — when `fatal` — stop trusting the stream and close after the
    /// flush.
    Bad {
        /// Version to answer in ([`VERSION`] when the header never
        /// parsed).
        version: u8,
        /// Request id to echo (0 when unknown).
        request_id: u64,
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail for the error frame.
        message: String,
        /// Whether framing is unrecoverable (close after answering).
        fatal: bool,
    },
}

enum DecodeState {
    /// Accumulating the frame header: first the 10-byte v1 prefix, then —
    /// for v2 — the 8-byte request id.
    Header { buf: [u8; HEADER_LEN_V2], filled: usize, need: usize },
    /// Buffering a small/non-request payload whole.
    Small { head: FrameHead, payload: Vec<u8>, filled: usize },
    /// Accumulating the 13-byte request prelude (dtype + dims).
    Prelude { head: FrameHead, buf: [u8; REQUEST_PRELUDE], filled: usize },
    /// Streaming operand bytes straight into pooled buffers.
    Operands { head: FrameHead, dims: RequestDims, stage: OperandStage, filled: usize },
    /// Draining the rest of an unservable payload before answering.
    Skip { remaining: usize, reply: Box<InEvent> },
    /// A fatal event was emitted; no further byte is ever parsed.
    Broken,
}

/// What one [`Decoder::step`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeStep {
    /// One event was appended to `events`; the caller decides whether to
    /// keep stepping (flow control lives above the decoder).
    Frame,
    /// Mid-frame `WouldBlock`: call again on the next readiness.
    NeedMore,
    /// Clean EOF at a frame boundary (or transport error): close.
    Closed,
    /// A fatal `Bad` event was emitted earlier; the stream is dead.
    Broken,
}

/// Incremental v1/v2 frame decoder for one connection.
///
/// The decode paths below parse untrusted network bytes, so they carry
/// the same machine-checked panic-freedom contract as `protocol` (see
/// README § Static analysis): the `fmm-check: contract(panic-free)`
/// pragmas scope the `deny-panic` rule to this impl and the free
/// functions it routes through.
pub struct Decoder {
    state: DecodeState,
    max_payload: usize,
}

// fmm-check: contract(panic-free)
impl Decoder {
    /// A decoder enforcing `max_payload` per frame.
    pub fn new(max_payload: usize) -> Self {
        Self { state: Self::fresh_header(), max_payload }
    }

    /// True once a fatal framing error has been emitted.
    pub fn is_broken(&self) -> bool {
        matches!(self.state, DecodeState::Broken)
    }

    /// Advance the state machine by at most one completed frame, reading
    /// from `r` (a nonblocking stream). Appends exactly one [`InEvent`]
    /// when it returns [`DecodeStep::Frame`].
    pub fn step(
        &mut self,
        r: &mut impl Read,
        pools: &IngestPools,
        events: &mut Vec<InEvent>,
    ) -> DecodeStep {
        loop {
            // Phase 1: I/O and transitions under a mutable borrow.
            let outcome = match &mut self.state {
                DecodeState::Broken => return DecodeStep::Broken,
                DecodeState::Header { buf, filled, need } => {
                    // `filled < need <= buf.len()` is the state invariant;
                    // `get_mut` keeps the path panic-free regardless.
                    let dst = buf.get_mut(*filled..*need).unwrap_or(&mut []);
                    match read_into(r, dst) {
                        ReadChunk::Data(n) => *filled += n,
                        ReadChunk::WouldBlock => return DecodeStep::NeedMore,
                        ReadChunk::Eof => return DecodeStep::Closed,
                    }
                    if *filled < *need {
                        continue;
                    }
                    let prefix: [u8; HEADER_LEN] =
                        protocol::le_bytes(buf.as_slice(), 0).unwrap_or_default();
                    if *need == HEADER_LEN {
                        // The common prefix is complete: classify it.
                        match protocol::parse_header_prefix(&prefix, self.max_payload) {
                            Err(err) => {
                                let code = match err {
                                    protocol::FrameError::BadVersion(_) => {
                                        ErrorCode::UnsupportedVersion
                                    }
                                    protocol::FrameError::Oversized { .. } => ErrorCode::Oversized,
                                    _ => ErrorCode::Malformed,
                                };
                                events.push(InEvent::Bad {
                                    version: VERSION,
                                    request_id: 0,
                                    code,
                                    message: err.to_string(),
                                    fatal: true,
                                });
                                self.state = DecodeState::Broken;
                                return DecodeStep::Frame;
                            }
                            Ok(info) if info.version == VERSION_V2 => {
                                // Owe the 8-byte request id before the
                                // payload starts.
                                *need = HEADER_LEN_V2;
                                continue;
                            }
                            Ok(info) => {
                                self.state = next_payload_state(FrameHead {
                                    version: info.version,
                                    request_id: 0,
                                    kind: info.kind,
                                    payload_len: info.payload_len,
                                });
                                continue;
                            }
                        }
                    }
                    // Full v2 header; the prefix was validated on the way
                    // through `need == HEADER_LEN`, so re-parsing cannot
                    // fail — but a decoder bug breaks the stream rather
                    // than panicking.
                    let Ok(info) = protocol::parse_header_prefix(&prefix, self.max_payload) else {
                        self.state = DecodeState::Broken;
                        return DecodeStep::Broken;
                    };
                    let request_id = u64::from_le_bytes(
                        protocol::le_bytes(buf.as_slice(), HEADER_LEN).unwrap_or_default(),
                    );
                    self.state = next_payload_state(FrameHead {
                        version: info.version,
                        request_id,
                        kind: info.kind,
                        payload_len: info.payload_len,
                    });
                    continue;
                }
                DecodeState::Small { payload, filled, .. } => {
                    while *filled < payload.len() {
                        let dst = payload.get_mut(*filled..).unwrap_or(&mut []);
                        match read_into(r, dst) {
                            ReadChunk::Data(n) => *filled += n,
                            ReadChunk::WouldBlock => return DecodeStep::NeedMore,
                            ReadChunk::Eof => return DecodeStep::Closed,
                        }
                    }
                    Complete::Frame
                }
                DecodeState::Prelude { head, buf, filled } => {
                    while *filled < REQUEST_PRELUDE {
                        let dst = buf.get_mut(*filled..).unwrap_or(&mut []);
                        match read_into(r, dst) {
                            ReadChunk::Data(n) => *filled += n,
                            ReadChunk::WouldBlock => return DecodeStep::NeedMore,
                            ReadChunk::Eof => return DecodeStep::Closed,
                        }
                    }
                    let head = *head;
                    match protocol::decode_request_prelude(buf, head.payload_len, self.max_payload)
                    {
                        Ok(dims) => {
                            let stage = OperandStage::acquire(pools, dims);
                            self.state = DecodeState::Operands { head, dims, stage, filled: 0 };
                        }
                        Err(message) => {
                            // Unservable dims: drain the declared payload
                            // so framing survives, then answer.
                            self.state = DecodeState::Skip {
                                remaining: head.payload_len - REQUEST_PRELUDE,
                                reply: Box::new(InEvent::Bad {
                                    version: head.version,
                                    request_id: head.request_id,
                                    code: ErrorCode::Malformed,
                                    message,
                                    fatal: false,
                                }),
                            };
                        }
                    }
                    continue;
                }
                DecodeState::Operands { dims, stage, filled, .. } => {
                    let total = dims.a_bytes() + dims.b_bytes();
                    while *filled < total {
                        match read_into(r, stage.spare_bytes(*dims, *filled)) {
                            ReadChunk::Data(n) => *filled += n,
                            ReadChunk::WouldBlock => return DecodeStep::NeedMore,
                            ReadChunk::Eof => return DecodeStep::Closed,
                        }
                    }
                    Complete::Frame
                }
                DecodeState::Skip { remaining, .. } => {
                    let mut scratch = [0u8; 4096];
                    while *remaining > 0 {
                        let want = (*remaining).min(scratch.len());
                        let dst = scratch.get_mut(..want).unwrap_or(&mut []);
                        match read_into(r, dst) {
                            ReadChunk::Data(n) => *remaining -= n,
                            ReadChunk::WouldBlock => return DecodeStep::NeedMore,
                            ReadChunk::Eof => return DecodeStep::Closed,
                        }
                    }
                    Complete::Frame
                }
            };
            // Phase 2: the frame is complete — take the state by value and
            // turn it into its event.
            let Complete::Frame = outcome;
            let finished = std::mem::replace(&mut self.state, Self::fresh_header());
            let event = match finished {
                DecodeState::Small { head, payload, .. } => small_frame_event(head, payload),
                DecodeState::Operands { head, dims, mut stage, .. } => {
                    stage.wire_to_host();
                    InEvent::Request { head, dims, operands: stage }
                }
                DecodeState::Skip { reply, .. } => *reply,
                // Header/Prelude/Broken never produce `Complete::Frame`;
                // a decoder bug lands here — break the stream rather than
                // panic.
                DecodeState::Header { .. } | DecodeState::Prelude { .. } | DecodeState::Broken => {
                    self.state = DecodeState::Broken;
                    return DecodeStep::Broken;
                }
            };
            events.push(event);
            return DecodeStep::Frame;
        }
    }

    fn fresh_header() -> DecodeState {
        DecodeState::Header { buf: [0; HEADER_LEN_V2], filled: 0, need: HEADER_LEN }
    }
}

/// Marker for a completed payload state (phase-1 → phase-2 hand-off in
/// [`Decoder::step`]).
enum Complete {
    Frame,
}

/// Route a completed header to its payload state.
// fmm-check: contract(panic-free)
fn next_payload_state(head: FrameHead) -> DecodeState {
    if head.kind == FrameKind::Request && head.payload_len >= REQUEST_PRELUDE {
        DecodeState::Prelude { head, buf: [0; REQUEST_PRELUDE], filled: 0 }
    } else {
        DecodeState::Small { head, payload: vec![0; head.payload_len], filled: 0 }
    }
}

/// Classify a fully buffered small frame into its event.
// fmm-check: contract(panic-free)
fn small_frame_event(head: FrameHead, payload: Vec<u8>) -> InEvent {
    match head.kind {
        FrameKind::Ping => InEvent::Ping { head, payload },
        FrameKind::StatsRequest => InEvent::Stats { head },
        FrameKind::StatsJson => {
            // Payload selects the exposition format: empty or `json` for
            // the JSON snapshot, `prometheus` for plaintext exposition.
            match payload.as_slice() {
                b"" | b"json" => InEvent::StatsJson { head, prometheus: false },
                b"prometheus" => InEvent::StatsJson { head, prometheus: true },
                _ => InEvent::Bad {
                    version: head.version,
                    request_id: head.request_id,
                    code: ErrorCode::Malformed,
                    message: "stats-json payload must be empty, `json`, or `prometheus`"
                        .to_string(),
                    fatal: false,
                },
            }
        }
        FrameKind::Trace => {
            // Payload: optional 8-byte LE "last N events" bound.
            let last = match payload.len() {
                0 => 0,
                8 => u64::from_le_bytes(protocol::le_bytes(&payload, 0).unwrap_or_default()),
                n => {
                    return InEvent::Bad {
                        version: head.version,
                        request_id: head.request_id,
                        code: ErrorCode::Malformed,
                        message: format!("trace payload must be 0 or 8 bytes, got {n}"),
                        fatal: false,
                    }
                }
            };
            InEvent::Trace { head, last }
        }
        FrameKind::Shutdown => InEvent::Shutdown { head },
        FrameKind::Incident => InEvent::Incident { head },
        FrameKind::Request => InEvent::Bad {
            version: head.version,
            request_id: head.request_id,
            code: ErrorCode::Malformed,
            message: format!(
                "request payload of {} bytes is shorter than the {REQUEST_PRELUDE}-byte prelude",
                head.payload_len
            ),
            fatal: false,
        },
        // Server-to-client kinds arriving at the server: protocol misuse
        // on an intact frame stream — answer, keep serving.
        FrameKind::Response | FrameKind::Error | FrameKind::Pong | FrameKind::StatsReply => {
            InEvent::Bad {
                version: head.version,
                request_id: head.request_id,
                code: ErrorCode::Malformed,
                message: format!("frame kind {:?} is not a client request", head.kind),
                fatal: false,
            }
        }
    }
}

enum ReadChunk {
    Data(usize),
    WouldBlock,
    Eof,
}

/// One nonblocking read into `target`, with `Interrupted` retried.
// fmm-check: contract(panic-free)
fn read_into(r: &mut impl Read, target: &mut [u8]) -> ReadChunk {
    if target.is_empty() {
        return ReadChunk::Data(0);
    }
    loop {
        match r.read(target) {
            Ok(0) => return ReadChunk::Eof,
            Ok(n) => return ReadChunk::Data(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadChunk::WouldBlock,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transport errors close like EOF: nothing to answer.
            Err(_) => return ReadChunk::Eof,
        }
    }
}

/// One element of the outbound scatter list.
pub enum Segment {
    /// Owned header/prelude/error bytes.
    Bytes(Vec<u8>),
    /// A pooled result buffer written in place (returns to its pool when
    /// the segment completes).
    Buf(WireBuf),
}

impl Segment {
    fn bytes(&self) -> &[u8] {
        match self {
            Self::Bytes(b) => b,
            Self::Buf(b) => b.bytes(),
        }
    }
}

/// The outbound queue of one connection: segments plus a cursor into the
/// front segment, so a short `write(2)` resumes exactly where it left off.
#[derive(Default)]
pub struct WriteQueue {
    segments: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    offset: usize,
    /// Total unwritten bytes across all segments.
    backlog: usize,
}

impl WriteQueue {
    /// Queue owned bytes (headers, error frames, stats bodies).
    pub fn push_bytes(&mut self, bytes: Vec<u8>) {
        self.backlog += bytes.len();
        self.segments.push_back(Segment::Bytes(bytes));
    }

    /// Queue a pooled result buffer; its bytes are written in place and
    /// the buffer returns to its pool when the segment is done.
    pub fn push_buf(&mut self, buf: WireBuf) {
        self.backlog += buf.bytes().len();
        self.segments.push_back(Segment::Buf(buf));
    }

    /// Unwritten bytes queued.
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Write as much as the socket accepts. `Ok(true)` means the queue
    /// drained; `Ok(false)` means the socket would block (wait for write
    /// readiness); `Err` means the connection is dead.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while let Some(front) = self.segments.front() {
            let bytes = front.bytes();
            while self.offset < bytes.len() {
                match w.write(&bytes[self.offset..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "peer stopped reading",
                        ))
                    }
                    Ok(n) => {
                        self.offset += n;
                        self.backlog -= n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            self.offset = 0;
            self.segments.pop_front();
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Dtype, WireScalar};
    use fmm_dense::{fill, Matrix};
    use std::io::Cursor;

    /// A reader that hands out its bytes one at a time, then WouldBlock.
    struct Trickle {
        bytes: Vec<u8>,
        at: usize,
        burst: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.bytes.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
            }
            let n = buf.len().min(self.burst).min(self.bytes.len() - self.at);
            buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    fn request_wire(version: u8, request_id: u64, a: &Matrix<f64>, b: &Matrix<f64>) -> Vec<u8> {
        let payload = protocol::encode_request(a, b);
        let mut wire = Vec::new();
        protocol::write_frame_v(&mut wire, version, request_id, FrameKind::Request, &payload)
            .unwrap();
        wire
    }

    #[test]
    fn one_byte_trickle_decodes_v2_request_bit_exactly() {
        let a = fill::bench_workload(5, 3, 1);
        let b = fill::bench_workload(3, 4, 2);
        let mut src = Trickle { bytes: request_wire(VERSION_V2, 42, &a, &b), at: 0, burst: 1 };
        let pools = IngestPools::new(8, usize::MAX);
        let mut dec = Decoder::new(1 << 20);
        let mut events = Vec::new();
        loop {
            match dec.step(&mut src, &pools, &mut events) {
                DecodeStep::Frame => break,
                DecodeStep::NeedMore => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        let (head, dims, operands) = match events.pop() {
            Some(InEvent::Request { head, dims, operands }) => (head, dims, operands),
            other => panic!("expected request, got {other:?}"),
        };
        assert_eq!((head.version, head.request_id), (VERSION_V2, 42));
        assert_eq!(dims, RequestDims { dtype: Dtype::F64, m: 5, k: 3, n: 4 });
        let (pa, pb) = match operands {
            OperandStage::F64 { a, b } => (a, b),
            OperandStage::F32 { .. } => panic!("wrong dtype"),
        };
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(pa.mat_ref(5, 3).at(i, j), a.get(i, j));
            }
        }
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(pb.mat_ref(3, 4).at(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn v1_and_v2_frames_interleave_on_one_stream() {
        let a = fill::bench_workload(2, 2, 3);
        let b = fill::bench_workload(2, 2, 4);
        let mut wire = request_wire(VERSION, 0, &a, &b);
        wire.extend_from_slice(&request_wire(VERSION_V2, 7, &a, &b));
        let mut ping = Vec::new();
        protocol::write_frame_v(&mut ping, VERSION_V2, 9, FrameKind::Ping, b"hi").unwrap();
        wire.extend_from_slice(&ping);

        let pools = IngestPools::new(8, usize::MAX);
        let mut dec = Decoder::new(1 << 20);
        let mut events = Vec::new();
        let mut cursor = Cursor::new(wire);
        for _ in 0..3 {
            assert_eq!(dec.step(&mut cursor, &pools, &mut events), DecodeStep::Frame);
        }
        match (&events[0], &events[1], &events[2]) {
            (
                InEvent::Request { head: h1, .. },
                InEvent::Request { head: h2, .. },
                InEvent::Ping { head: h3, payload },
            ) => {
                assert_eq!((h1.version, h1.request_id), (VERSION, 0));
                assert_eq!((h2.version, h2.request_id), (VERSION_V2, 7));
                assert_eq!((h3.version, h3.request_id), (VERSION_V2, 9));
                assert_eq!(payload, b"hi");
            }
            other => panic!("unexpected event triple: {other:?}"),
        }
    }

    #[test]
    fn bad_dims_skip_the_payload_and_keep_the_stream() {
        // dtype 9 does not exist; the declared payload still has 16 junk
        // bytes that must be consumed for the next frame to parse.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&[0xAA; 16]);
        let mut wire = Vec::new();
        protocol::write_frame_v(&mut wire, VERSION_V2, 5, FrameKind::Request, &payload).unwrap();
        protocol::write_frame_v(&mut wire, VERSION_V2, 6, FrameKind::Ping, b"ok").unwrap();

        let pools = IngestPools::new(8, usize::MAX);
        let mut dec = Decoder::new(1 << 20);
        let mut events = Vec::new();
        let mut cursor = Cursor::new(wire);
        assert_eq!(dec.step(&mut cursor, &pools, &mut events), DecodeStep::Frame);
        assert_eq!(dec.step(&mut cursor, &pools, &mut events), DecodeStep::Frame);
        match &events[0] {
            InEvent::Bad {
                request_id: 5,
                code: ErrorCode::Malformed,
                message,
                fatal: false,
                ..
            } => {
                assert!(message.contains("dtype"), "{message}");
            }
            other => panic!("expected recoverable Bad, got {other:?}"),
        }
        assert!(matches!(&events[1], InEvent::Ping { head, .. } if head.request_id == 6));
    }

    #[test]
    fn bad_magic_is_fatal_and_stops_parsing() {
        let mut wire = vec![b'X', b'Y', b'Z', b'W'];
        wire.extend_from_slice(&[0u8; 20]);
        let pools = IngestPools::new(8, usize::MAX);
        let mut dec = Decoder::new(1 << 20);
        let mut events = Vec::new();
        let mut cursor = Cursor::new(wire);
        assert_eq!(dec.step(&mut cursor, &pools, &mut events), DecodeStep::Frame);
        assert!(matches!(&events[0], InEvent::Bad { code: ErrorCode::Malformed, fatal: true, .. }));
        assert!(dec.is_broken());
        assert_eq!(dec.step(&mut cursor, &pools, &mut events), DecodeStep::Broken);
    }

    #[test]
    fn write_queue_resumes_partial_writes_across_segments() {
        /// A writer accepting at most 3 bytes per call.
        struct Dribble {
            out: Vec<u8>,
            stalls: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.stalls > 0 {
                    self.stalls -= 1;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                self.stalls = 1;
                let n = buf.len().min(3);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let pools = IngestPools::new(4, usize::MAX);
        let mut result = pools.f64.acquire(3);
        result.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut expected = b"HDR".to_vec();
        for v in [1.0f64, 2.0, 3.0] {
            f64::write_le(v, &mut expected);
        }

        let mut q = WriteQueue::default();
        q.push_bytes(b"HDR".to_vec());
        q.push_buf(WireBuf::F64(result));
        assert_eq!(q.backlog(), expected.len());

        let mut sink = Dribble { out: Vec::new(), stalls: 0 };
        let mut rounds = 0;
        while !q.flush(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 100, "flush must make progress");
        }
        assert!(q.is_empty());
        assert_eq!(q.backlog(), 0);
        assert_eq!(sink.out, expected);
    }
}
