//! Blocking client for the `fmm-serve` protocol — the library the e2e
//! tests, the `fmm_serve` CLI, and the `serve_smoke` loadgen all drive.
//!
//! One [`Client`] owns one connection and is strictly request/response:
//! each call writes a frame, flushes, and blocks for the reply. Hold one
//! client per thread for concurrency (the server batches across
//! connections — that is the whole point).

use crate::protocol::{
    self, decode_error, decode_response, encode_request, ErrorCode, Frame, FrameError, FrameKind,
    WireScalar,
};
use fmm_dense::Matrix;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including a server that hung up).
    Io(io::Error),
    /// The server answered, but not with a frame this call expects.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Server { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => Self::Io(io),
            other => Self::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// True when the server refused the request with `Busy` — the typed
    /// backpressure signal callers may retry on.
    pub fn is_busy(&self) -> bool {
        matches!(self, Self::Server { code: ErrorCode::Busy, .. })
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_payload_bytes: usize,
}

impl Client {
    /// Connect with the default (64 MiB) reply-payload cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_cap(addr, 64 << 20)
    }

    /// Connect, capping accepted reply payloads at `max_payload_bytes`.
    pub fn connect_with_cap(
        addr: impl ToSocketAddrs,
        max_payload_bytes: usize,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream), max_payload_bytes })
    }

    /// Send one frame and block for the next reply frame.
    pub fn roundtrip(&mut self, kind: FrameKind, payload: &[u8]) -> Result<Frame, ClientError> {
        protocol::write_frame(&mut self.writer, kind, payload)?;
        self.writer.flush()?;
        Ok(protocol::read_frame(&mut self.reader, self.max_payload_bytes)?)
    }

    /// `C = A·B` on the server. Dtype follows the matrix scalar; the
    /// result is the full `m × n` product (the server computes into a
    /// zeroed destination).
    pub fn multiply<T: WireScalar>(
        &mut self,
        a: &Matrix<T>,
        b: &Matrix<T>,
    ) -> Result<Matrix<T>, ClientError> {
        if a.cols() != b.rows() {
            return Err(ClientError::Protocol(format!(
                "A is {}x{} but B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let reply = self.roundtrip(FrameKind::Request, &encode_request(a, b))?;
        match reply.kind {
            FrameKind::Response => {
                let c = decode_response::<T>(&reply.payload).map_err(ClientError::Protocol)?;
                if (c.rows(), c.cols()) != (a.rows(), b.cols()) {
                    return Err(ClientError::Protocol(format!(
                        "server answered a {}x{} matrix for a {}x{} problem",
                        c.rows(),
                        c.cols(),
                        a.rows(),
                        b.cols()
                    )));
                }
                Ok(c)
            }
            FrameKind::Error => {
                let (code, message) = decode_error(&reply.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Liveness probe; returns the round-trip time.
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let t0 = Instant::now();
        let reply = self.roundtrip(FrameKind::Ping, b"fmm")?;
        match reply.kind {
            FrameKind::Pong if reply.payload == b"fmm" => Ok(t0.elapsed()),
            FrameKind::Pong => Err(ClientError::Protocol("pong payload mismatch".into())),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Fetch the server's plaintext stats snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip(FrameKind::StatsRequest, b"")?;
        match reply.kind {
            FrameKind::StatsReply => String::from_utf8(reply.payload)
                .map_err(|_| ClientError::Protocol("stats body is not UTF-8".into())),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Ask the daemon to shut down (acknowledged before it stops
    /// accepting; in-flight requests drain).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.roundtrip(FrameKind::Shutdown, b"")?;
        match reply.kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }
}
