//! Clients for the `fmm-serve` protocol — the library the e2e tests, the
//! `fmm_serve` CLI, and the `serve_smoke` loadgen all drive.
//!
//! Two flavors over one TCP connection each:
//!
//! * [`Client`] speaks protocol **v1** and is strictly request/response:
//!   each call writes a frame, flushes, and blocks for the reply. Hold
//!   one client per thread for concurrency.
//! * [`PipelinedClient`] speaks protocol **v2**: [`PipelinedClient::send`]
//!   returns a `request_id` immediately, many requests ride the wire at
//!   once, and [`PipelinedClient::recv`] matches responses back by id in
//!   whatever order the server finishes them — one connection keeps the
//!   dispatcher's batch window full all by itself.
//!
//! [`retry_busy`] wraps either flavor's calls with bounded exponential
//! backoff on the server's `Busy` backpressure signal.

use crate::protocol::{
    self, decode_error, decode_response, encode_request, ErrorCode, Frame, FrameError, FrameKind,
    FrameV, WireScalar, VERSION_V2,
};
use fmm_dense::Matrix;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including a server that hung up).
    Io(io::Error),
    /// The server answered, but not with a frame this call expects.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Server { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => Self::Io(io),
            other => Self::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// True when the server refused the request with `Busy` — the typed
    /// backpressure signal callers may retry on.
    pub fn is_busy(&self) -> bool {
        matches!(self, Self::Server { code: ErrorCode::Busy, .. })
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_payload_bytes: usize,
}

impl Client {
    /// Connect with the default (64 MiB) reply-payload cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_cap(addr, 64 << 20)
    }

    /// Connect, capping accepted reply payloads at `max_payload_bytes`.
    pub fn connect_with_cap(
        addr: impl ToSocketAddrs,
        max_payload_bytes: usize,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream), max_payload_bytes })
    }

    /// Send one frame and block for the next reply frame.
    pub fn roundtrip(&mut self, kind: FrameKind, payload: &[u8]) -> Result<Frame, ClientError> {
        protocol::write_frame(&mut self.writer, kind, payload)?;
        self.writer.flush()?;
        Ok(protocol::read_frame(&mut self.reader, self.max_payload_bytes)?)
    }

    /// `C = A·B` on the server. Dtype follows the matrix scalar; the
    /// result is the full `m × n` product (the server computes into a
    /// zeroed destination).
    pub fn multiply<T: WireScalar>(
        &mut self,
        a: &Matrix<T>,
        b: &Matrix<T>,
    ) -> Result<Matrix<T>, ClientError> {
        if a.cols() != b.rows() {
            return Err(ClientError::Protocol(format!(
                "A is {}x{} but B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let reply = self.roundtrip(FrameKind::Request, &encode_request(a, b))?;
        match reply.kind {
            FrameKind::Response => {
                let c = decode_response::<T>(&reply.payload).map_err(ClientError::Protocol)?;
                if (c.rows(), c.cols()) != (a.rows(), b.cols()) {
                    return Err(ClientError::Protocol(format!(
                        "server answered a {}x{} matrix for a {}x{} problem",
                        c.rows(),
                        c.cols(),
                        a.rows(),
                        b.cols()
                    )));
                }
                Ok(c)
            }
            FrameKind::Error => {
                let (code, message) = decode_error(&reply.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Liveness probe; returns the round-trip time.
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let t0 = Instant::now();
        let reply = self.roundtrip(FrameKind::Ping, b"fmm")?;
        match reply.kind {
            FrameKind::Pong if reply.payload == b"fmm" => Ok(t0.elapsed()),
            FrameKind::Pong => Err(ClientError::Protocol("pong payload mismatch".into())),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Fetch the server's plaintext stats snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip(FrameKind::StatsRequest, b"")?;
        match reply.kind {
            FrameKind::StatsReply => String::from_utf8(reply.payload)
                .map_err(|_| ClientError::Protocol("stats body is not UTF-8".into())),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Fetch the server's full registry snapshot as JSON (counters,
    /// gauges, and per-phase histograms; see the README's Observability
    /// section for the schema).
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        self.stats_export(b"json")
    }

    /// Fetch the same registry snapshot as Prometheus-style plaintext
    /// exposition.
    pub fn stats_prometheus(&mut self) -> Result<String, ClientError> {
        self.stats_export(b"prometheus")
    }

    fn stats_export(&mut self, format: &[u8]) -> Result<String, ClientError> {
        let reply = self.roundtrip(FrameKind::StatsJson, format)?;
        match reply.kind {
            FrameKind::StatsJson => String::from_utf8(reply.payload)
                .map_err(|_| ClientError::Protocol("stats export body is not UTF-8".into())),
            FrameKind::Error => {
                let (code, message) = decode_error(&reply.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Fetch the most recent `last` tracing spans as a JSON array (`0` =
    /// everything the per-thread rings retain). Empty unless the server
    /// runs with tracing enabled (`--trace` / `FMM_TRACE=1`).
    pub fn trace(&mut self, last: u64) -> Result<String, ClientError> {
        let payload = if last == 0 { Vec::new() } else { last.to_le_bytes().to_vec() };
        let reply = self.roundtrip(FrameKind::Trace, &payload)?;
        match reply.kind {
            FrameKind::Trace => String::from_utf8(reply.payload)
                .map_err(|_| ClientError::Protocol("trace body is not UTF-8".into())),
            FrameKind::Error => {
                let (code, message) = decode_error(&reply.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Fetch a live incident dump — the same self-contained JSON
    /// document a SIGTERM/panic dump writes to `--incident-dir` (build
    /// fingerprint, config, watchdog roster, flight ring, full stats,
    /// recent spans). Servers that predate the frame kind answer with a
    /// typed `Malformed` error.
    pub fn incident(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip(FrameKind::Incident, b"")?;
        match reply.kind {
            FrameKind::Incident => String::from_utf8(reply.payload)
                .map_err(|_| ClientError::Protocol("incident body is not UTF-8".into())),
            FrameKind::Error => {
                let (code, message) = decode_error(&reply.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Ask the daemon to shut down (acknowledged before it stops
    /// accepting; in-flight requests drain).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.roundtrip(FrameKind::Shutdown, b"")?;
        match reply.kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }
}

/// A pipelined protocol-v2 client: many requests in flight on one
/// connection, responses matched back by `request_id` in completion
/// order.
///
/// `send` never reads and `recv` never writes, so the natural usage is a
/// window loop: keep `send`ing until the target depth is reached, then
/// `recv` the oldest outstanding id (responses that arrive out of order
/// are stashed and handed out when their id is asked for).
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_payload_bytes: usize,
    next_id: u64,
    /// Responses read while looking for a different id.
    stash: HashMap<u64, FrameV>,
}

impl PipelinedClient {
    /// Connect with the default (64 MiB) reply-payload cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_cap(addr, 64 << 20)
    }

    /// Connect, capping accepted reply payloads at `max_payload_bytes`.
    pub fn connect_with_cap(
        addr: impl ToSocketAddrs,
        max_payload_bytes: usize,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            max_payload_bytes,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Queue `C = A·B` on the server and return the request id to
    /// [`PipelinedClient::recv`] the result under. The frame is flushed
    /// before this returns; the response is *not* awaited.
    pub fn send<T: WireScalar>(
        &mut self,
        a: &Matrix<T>,
        b: &Matrix<T>,
    ) -> Result<u64, ClientError> {
        if a.cols() != b.rows() {
            return Err(ClientError::Protocol(format!(
                "A is {}x{} but B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame_v(
            &mut self.writer,
            VERSION_V2,
            id,
            FrameKind::Request,
            &encode_request(a, b),
        )?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Block for the response to `id`, reading (and stashing) any other
    /// responses that arrive first.
    pub fn recv<T: WireScalar>(&mut self, id: u64) -> Result<Matrix<T>, ClientError> {
        let frame = self.frame_for(id)?;
        match frame.kind {
            FrameKind::Response => {
                decode_response::<T>(&frame.payload).map_err(ClientError::Protocol)
            }
            FrameKind::Error => {
                let (code, message) = decode_error(&frame.payload);
                Err(ClientError::Server { code, message })
            }
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Liveness probe (pipelined like everything else: the Pong is
    /// matched by id, so it may overtake slower multiplies).
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let t0 = Instant::now();
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame_v(&mut self.writer, VERSION_V2, id, FrameKind::Ping, b"fmm")?;
        self.writer.flush()?;
        let frame = self.frame_for(id)?;
        match frame.kind {
            FrameKind::Pong if frame.payload == b"fmm" => Ok(t0.elapsed()),
            FrameKind::Pong => Err(ClientError::Protocol("pong payload mismatch".into())),
            other => Err(ClientError::Protocol(format!("unexpected {other:?} reply"))),
        }
    }

    /// Read frames until `id`'s reply surfaces, stashing responses for
    /// other outstanding ids along the way.
    fn frame_for(&mut self, id: u64) -> Result<FrameV, ClientError> {
        if let Some(frame) = self.stash.remove(&id) {
            return Ok(frame);
        }
        loop {
            let frame = protocol::read_frame_any(&mut self.reader, self.max_payload_bytes)?;
            if frame.request_id == id {
                return Ok(frame);
            }
            self.stash.insert(frame.request_id, frame);
        }
    }
}

/// Call `op` with bounded exponential backoff while it fails with the
/// server's `Busy` backpressure signal.
///
/// The delay before retry `i` is `base_delay · 2^i`, scaled by a
/// deterministic jitter factor in `[0.5, 1.0)` derived from `seed` (an
/// xorshift step per retry) — concurrent clients seeded differently
/// de-synchronize instead of stampeding the queue in lockstep. Any
/// non-`Busy` error, and the final `Busy` after `attempts` tries, are
/// returned as-is.
pub fn retry_busy<T>(
    attempts: usize,
    base_delay: Duration,
    seed: u64,
    mut op: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut jitter = seed | 1; // xorshift state must be non-zero
    let mut backoff = base_delay;
    let mut tries = 0;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if err.is_busy() && tries + 1 < attempts.max(1) => {
                tries += 1;
                jitter ^= jitter << 13;
                jitter ^= jitter >> 7;
                jitter ^= jitter << 17;
                // Map the top bits onto [0.5, 1.0).
                let scale = 0.5 + (jitter >> 40) as f64 / (1u64 << 25) as f64;
                std::thread::sleep(backoff.mul_f64(scale));
                backoff = backoff.saturating_mul(2);
            }
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_busy_retries_busy_until_success() {
        let mut calls = 0;
        let result = retry_busy(5, Duration::from_micros(10), 42, || {
            calls += 1;
            if calls < 3 {
                Err(ClientError::Server { code: ErrorCode::Busy, message: "full".into() })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn retry_busy_gives_up_after_attempts() {
        let mut calls = 0;
        let result: Result<(), _> = retry_busy(3, Duration::from_micros(10), 7, || {
            calls += 1;
            Err(ClientError::Server { code: ErrorCode::Busy, message: "full".into() })
        });
        assert!(result.unwrap_err().is_busy());
        assert_eq!(calls, 3, "attempts bound the total call count");
    }

    #[test]
    fn retry_busy_passes_other_errors_through() {
        let mut calls = 0;
        let result: Result<(), _> = retry_busy(5, Duration::from_micros(10), 9, || {
            calls += 1;
            Err(ClientError::Protocol("not busy".into()))
        });
        assert!(matches!(result.unwrap_err(), ClientError::Protocol(_)));
        assert_eq!(calls, 1, "only Busy is retried");
    }

    #[test]
    fn retry_busy_jitter_is_deterministic_per_seed() {
        // Same seed → same jitter sequence (indirectly: both runs make
        // the same number of calls and sleep the same schedule; here we
        // just pin the xorshift scale computation against drift).
        let mut jitter = 42u64 | 1;
        jitter ^= jitter << 13;
        jitter ^= jitter >> 7;
        jitter ^= jitter << 17;
        let scale = 0.5 + (jitter >> 40) as f64 / (1u64 << 25) as f64;
        assert!((0.5..1.0).contains(&scale), "jitter scale in [0.5, 1.0): {scale}");
    }
}
