//! Pooled, 64-byte-aligned ingest buffers: the single-copy path from the
//! socket to `multiply_batch` and back.
//!
//! A request's operand bytes are read by the event loop *directly* into a
//! [`PooledBuf`] checked out of the per-dtype [`IngestPool`] — the
//! `read(2)` into the buffer is the one and only copy off the wire. The
//! dispatcher then hands the engine strided views over those same bytes
//! (the wire is row-major, which is just a stride choice for `MatRef`),
//! and the result is computed into a third pooled buffer laid out in wire
//! order, so the response writes straight from it with no intermediate
//! `Vec`.
//!
//! The pool is bounded two ways: at most `retain` idle buffers per dtype
//! are kept across requests, and their summed capacity may not exceed
//! `retain_bytes` — so a burst of max-size requests cannot leave
//! gigabytes parked in an idle pool after load subsides. The hit/miss
//! counters make the warm-path "zero allocations per request" property
//! testable (a pool hit reuses an existing allocation; only misses
//! allocate).
//!
//! That property is also machine-checked: the file carries `fmm-check`'s
//! `contract(warm-alloc-free)` (see README § Static analysis). Cold-path
//! construction is explicitly allowed inline; the pool-miss allocation
//! goes through `AlignedBuf`, which the hit/miss counters account for.

// fmm-check: contract(warm-alloc-free)

use crate::protocol::{Dtype, RequestDims, WireScalar};
use fmm_dense::{AlignedBuf, MatMut, MatRef, Scalar};
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counter snapshot of one dtype's pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Checkouts satisfied by a retained buffer (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate (cold pool, or no retained buffer
    /// large enough).
    pub misses: u64,
    /// Buffers currently retained and idle.
    pub retained: u64,
    /// Summed allocated capacity of the retained buffers, in bytes.
    pub retained_bytes: u64,
}

/// The idle set and its summed capacity, kept consistent under one lock.
struct IdleSet<T> {
    /// Idle buffers, each remembering its allocated capacity in elements.
    bufs: Vec<AlignedBuf<T>>,
    /// Summed allocated capacity of `bufs`, in bytes.
    bytes: usize,
}

struct PoolInner<T> {
    idle: Mutex<IdleSet<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Most idle buffers kept; beyond this, released buffers are dropped.
    retain: usize,
    /// Most idle *bytes* kept; a released buffer that would push the idle
    /// set past this is dropped no matter how short the set is.
    retain_bytes: usize,
}

/// A bounded pool of aligned buffers for one scalar type.
pub struct BufferPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T: Scalar> BufferPool<T> {
    /// A pool retaining at most `retain` idle buffers totalling at most
    /// `retain_bytes` of capacity.
    pub fn new(retain: usize, retain_bytes: usize) -> Self {
        Self {
            // fmm-check: allow(deny-alloc, reason = "cold pool construction, once per server, not per-request")
            inner: Arc::new(PoolInner {
                // fmm-check: allow(deny-alloc, reason = "cold pool construction, once per server, not per-request")
                idle: Mutex::new(IdleSet { bufs: Vec::new(), bytes: 0 }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                retain,
                retain_bytes,
            }),
        }
    }

    /// Check out a buffer of at least `elems` elements. Contents are
    /// unspecified (callers overwrite); see [`PooledBuf::zero`] for
    /// destinations that need `C += A·B` accumulation semantics.
    pub fn acquire(&self, elems: usize) -> PooledBuf<T> {
        let reused = {
            let mut idle = self.inner.idle.lock().expect("buffer pool poisoned");
            // Best-fit over the small retained set: the tightest buffer
            // that is large enough. Tightest matters — a request mix of
            // several sizes (operands and results differ) must not burn
            // the one big buffer on a small need and then re-allocate the
            // big one every round. Ties take the most recently released
            // (warmest) buffer.
            idle.bufs
                .iter()
                .enumerate()
                .filter(|(_, buf)| buf.len() >= elems)
                .min_by_key(|(at, buf)| (buf.len(), usize::MAX - at))
                .map(|(at, _)| at)
                .map(|at| {
                    let buf = idle.bufs.swap_remove(at);
                    idle.bytes -= buf.len() * std::mem::size_of::<T>();
                    buf
                })
        };
        let buf = match reused {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                AlignedBuf::zeroed(elems)
            }
        };
        let cap_bytes = buf.len() * std::mem::size_of::<T>();
        PooledBuf {
            buf: ManuallyDrop::new(buf),
            elems,
            cap_bytes,
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let idle = self.inner.idle.lock().expect("buffer pool poisoned");
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            retained: idle.bufs.len() as u64,
            retained_bytes: idle.bytes as u64,
        }
    }
}

/// A buffer checked out of a [`BufferPool`]; returns to the pool on drop
/// (up to the pool's retention bound). `elems` is the *used* element
/// count for this checkout — the allocation behind it may be larger.
pub struct PooledBuf<T> {
    /// `ManuallyDrop` so the drop path can move the allocation back into
    /// the pool without swapping a placeholder allocation in.
    buf: ManuallyDrop<AlignedBuf<T>>,
    elems: usize,
    /// Allocated capacity in bytes — what the pool's byte budget charges
    /// on return (recorded here because `Drop` cannot ask the buffer).
    cap_bytes: usize,
    pool: std::sync::Weak<PoolInner<T>>,
}

impl<T> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} elems)", self.elems)
    }
}

impl<T: Scalar> PooledBuf<T> {
    /// Used element count of this checkout.
    pub fn elems(&self) -> usize {
        self.elems
    }

    /// The used region as raw little-endian-native bytes, for writing to
    /// the wire.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the first `elems` elements are initialized scalars and
        // any float bit pattern is a valid byte sequence.
        unsafe {
            std::slice::from_raw_parts(
                self.buf.as_ptr() as *const u8,
                self.elems * std::mem::size_of::<T>(),
            )
        }
    }

    /// The used region as writable bytes — the destination the event loop
    /// reads socket payloads straight into (the single copy off the wire).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: exclusive access; every bit pattern is a valid scalar.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.buf.as_mut_ptr() as *mut u8,
                self.elems * std::mem::size_of::<T>(),
            )
        }
    }

    /// Zero the used region (accumulation destinations need `C = 0`
    /// before `C += A·B`). A memset, never an allocation.
    pub fn zero(&mut self) {
        self.as_mut_slice().fill(T::ZERO);
    }

    /// The used region as a scalar slice.
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.elems]
    }

    /// The used region as a mutable scalar slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let elems = self.elems;
        &mut self.buf[..elems]
    }

    /// View the used region as a **row-major** `rows × cols` matrix —
    /// exactly the wire layout, expressed as strides (`rs = cols`,
    /// `cs = 1`) so no transposition copy ever happens.
    pub fn mat_ref(&self, rows: usize, cols: usize) -> MatRef<'_, T> {
        assert!(rows.saturating_mul(cols) <= self.elems, "view exceeds checkout");
        // SAFETY: bounds asserted above; shared borrow for the view's
        // lifetime.
        unsafe { MatRef::from_raw_parts(self.buf.as_ptr(), rows, cols, cols as isize, 1) }
    }

    /// Mutable row-major view of the used region.
    pub fn mat_mut(&mut self, rows: usize, cols: usize) -> MatMut<'_, T> {
        assert!(rows.saturating_mul(cols) <= self.elems, "view exceeds checkout");
        // SAFETY: bounds asserted above; exclusive borrow for the view's
        // lifetime.
        unsafe { MatMut::from_raw_parts(self.buf.as_mut_ptr(), rows, cols, cols as isize, 1) }
    }

    /// Convert the wire's little-endian element bytes to host order in
    /// place. A no-op on little-endian hosts — the read into the buffer
    /// was already the decode.
    pub fn wire_to_host(&mut self) {
        if cfg!(target_endian = "big") {
            let width = std::mem::size_of::<T>();
            for chunk in self.bytes_mut().chunks_exact_mut(width) {
                chunk.reverse();
            }
        }
    }

    /// Convert host-order elements to the wire's little-endian bytes in
    /// place (the buffer is about to be sent and never read again as
    /// scalars). A no-op on little-endian hosts.
    pub fn host_to_wire(&mut self) {
        self.wire_to_host();
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        // SAFETY: `buf` is taken exactly once, here; no use after this.
        let buf = unsafe { ManuallyDrop::take(&mut self.buf) };
        if let Some(pool) = self.pool.upgrade() {
            let bytes = self.cap_bytes;
            let mut idle = pool.idle.lock().expect("buffer pool poisoned");
            if idle.bufs.len() < pool.retain && idle.bytes + bytes <= pool.retain_bytes {
                idle.bytes += bytes;
                idle.bufs.push(buf);
                return;
            }
        }
        drop(buf);
    }
}

/// A type-erased pooled result buffer: what completions carry back to the
/// event loop, which only needs the bytes (and the drop-to-pool return).
pub enum WireBuf {
    /// A double-precision result.
    F64(PooledBuf<f64>),
    /// A single-precision result.
    F32(PooledBuf<f32>),
}

impl WireBuf {
    /// The used region as wire bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Self::F64(b) => b.bytes(),
            Self::F32(b) => b.bytes(),
        }
    }

    /// The dtype tag of the carried buffer.
    pub fn dtype(&self) -> Dtype {
        match self {
            Self::F64(_) => Dtype::F64,
            Self::F32(_) => Dtype::F32,
        }
    }
}

impl From<PooledBuf<f64>> for WireBuf {
    fn from(b: PooledBuf<f64>) -> Self {
        Self::F64(b)
    }
}

impl From<PooledBuf<f32>> for WireBuf {
    fn from(b: PooledBuf<f32>) -> Self {
        Self::F32(b)
    }
}

/// A request's staged operands: the `A`/`B` pooled buffers the event
/// loop fills straight off the wire, tagged by dtype. The payload body is
/// addressed linearly — `A`'s bytes first, then `B`'s — which is exactly
/// the wire order, so [`OperandStage::spare_bytes`] is the one `read(2)`
/// destination the streaming decoder needs.
#[derive(Debug)]
pub enum OperandStage {
    /// Double-precision operands.
    F64 {
        /// Left operand buffer (`m·k` elements).
        a: PooledBuf<f64>,
        /// Right operand buffer (`k·n` elements).
        b: PooledBuf<f64>,
    },
    /// Single-precision operands.
    F32 {
        /// Left operand buffer (`m·k` elements).
        a: PooledBuf<f32>,
        /// Right operand buffer (`k·n` elements).
        b: PooledBuf<f32>,
    },
}

impl OperandStage {
    /// Check operand buffers for `dims` out of the right dtype pool.
    pub fn acquire(pools: &IngestPools, dims: RequestDims) -> Self {
        match dims.dtype {
            Dtype::F64 => Self::F64 {
                a: pools.f64.acquire(dims.m * dims.k),
                b: pools.f64.acquire(dims.k * dims.n),
            },
            Dtype::F32 => Self::F32 {
                a: pools.f32.acquire(dims.m * dims.k),
                b: pools.f32.acquire(dims.k * dims.n),
            },
        }
    }

    /// The writable tail of the operand region at linear payload-body
    /// offset `filled` (`A`'s bytes, then `B`'s). Empty only when both
    /// operands are complete.
    pub fn spare_bytes(&mut self, dims: RequestDims, filled: usize) -> &mut [u8] {
        let a_bytes = dims.a_bytes();
        match self {
            Self::F64 { a, b } => {
                if filled < a_bytes {
                    &mut a.bytes_mut()[filled..]
                } else {
                    &mut b.bytes_mut()[filled - a_bytes..]
                }
            }
            Self::F32 { a, b } => {
                if filled < a_bytes {
                    &mut a.bytes_mut()[filled..]
                } else {
                    &mut b.bytes_mut()[filled - a_bytes..]
                }
            }
        }
    }

    /// Convert both operands from wire little-endian to host order (a
    /// no-op on little-endian hosts).
    pub fn wire_to_host(&mut self) {
        match self {
            Self::F64 { a, b } => {
                a.wire_to_host();
                b.wire_to_host();
            }
            Self::F32 { a, b } => {
                a.wire_to_host();
                b.wire_to_host();
            }
        }
    }
}

/// The per-dtype buffer pools one server shares across its event loops
/// and dispatchers.
pub struct IngestPools {
    /// f64 operand/result buffers.
    pub f64: BufferPool<f64>,
    /// f32 operand/result buffers.
    pub f32: BufferPool<f32>,
}

impl IngestPools {
    /// Pools retaining at most `retain` idle buffers and `retain_bytes`
    /// idle bytes per dtype.
    pub fn new(retain: usize, retain_bytes: usize) -> Self {
        Self {
            f64: BufferPool::new(retain, retain_bytes),
            f32: BufferPool::new(retain, retain_bytes),
        }
    }

    /// The pool serving `T`'s dtype.
    pub fn pool<T: PooledScalar>(&self) -> &BufferPool<T> {
        T::pool(self)
    }
}

/// Per-scalar pool selection — the static dispatch that lets generic
/// ingest code pull the right dtype's pool out of [`IngestPools`].
pub trait PooledScalar: WireScalar {
    /// The pool serving this scalar's dtype.
    fn pool(pools: &IngestPools) -> &BufferPool<Self>
    where
        Self: Sized;
}

impl PooledScalar for f64 {
    fn pool(pools: &IngestPools) -> &BufferPool<Self> {
        &pools.f64
    }
}

impl PooledScalar for f32 {
    fn pool(pools: &IngestPools) -> &BufferPool<Self> {
        &pools.f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers_and_counts_hits() {
        let pool = BufferPool::<f64>::new(4, usize::MAX);
        {
            let mut a = pool.acquire(64);
            a.as_mut_slice()[0] = 7.0;
        }
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().retained, 1);
        {
            let b = pool.acquire(64);
            assert_eq!(b.elems(), 64);
        }
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.retained), (1, 1, 1), "warm acquire did not allocate");
        // A larger request misses even with a retained (smaller) buffer.
        let _c = pool.acquire(128);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn pool_retention_is_bounded() {
        let pool = BufferPool::<f32>::new(2, usize::MAX);
        let bufs: Vec<_> = (0..5).map(|_| pool.acquire(16)).collect();
        drop(bufs);
        assert_eq!(pool.stats().retained, 2, "idle set bounded by retain");
    }

    #[test]
    fn pool_retention_is_bounded_by_bytes() {
        // Budget fits two 64-element f64 buffers (1024 bytes); a third
        // release must be dropped even though the count bound (8) has
        // plenty of room left.
        let pool = BufferPool::<f64>::new(8, 1024);
        let bufs: Vec<_> = (0..3).map(|_| pool.acquire(64)).collect();
        drop(bufs);
        let stats = pool.stats();
        assert_eq!(stats.retained, 2, "byte budget capped the idle set");
        assert_eq!(stats.retained_bytes, 1024);
        // Reacquiring frees budget: release-after-acquire is retained again.
        {
            let _held = pool.acquire(64);
            assert_eq!(pool.stats().retained_bytes, 512, "checkout released its bytes");
        }
        assert_eq!(pool.stats().retained_bytes, 1024, "returned buffer recharged the budget");
    }

    #[test]
    fn row_major_views_see_wire_order() {
        let pool = BufferPool::<f64>::new(2, usize::MAX);
        let mut buf = pool.acquire(6);
        // Wire order for a 2x3 row-major matrix: [r0c0 r0c1 r0c2 r1c0 ...]
        buf.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let view = buf.mat_ref(2, 3);
        assert_eq!(view.at(0, 1), 2.0);
        assert_eq!(view.at(1, 0), 4.0);
        assert_eq!(view.at(1, 2), 6.0);
    }

    #[test]
    fn bytes_roundtrip_through_wire_view() {
        let pool = BufferPool::<f64>::new(2, usize::MAX);
        let mut buf = pool.acquire(2);
        let vals = [1.5f64, -2.25];
        let mut wire = Vec::new();
        for v in vals {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        buf.bytes_mut().copy_from_slice(&wire);
        buf.wire_to_host();
        assert_eq!(buf.as_slice(), &vals);
        buf.host_to_wire();
        assert_eq!(buf.bytes(), &wire[..]);
    }

    #[test]
    fn zero_is_a_memset_not_an_allocation() {
        let pool = BufferPool::<f64>::new(2, usize::MAX);
        let mut buf = pool.acquire(32);
        buf.as_mut_slice().fill(3.0);
        buf.zero();
        assert!(buf.as_slice().iter().all(|&v| v == 0.0));
        drop(buf);
        let misses = pool.stats().misses;
        let mut again = pool.acquire(32);
        again.zero();
        assert_eq!(pool.stats().misses, misses, "zeroing a pooled buffer never allocates");
    }
}
