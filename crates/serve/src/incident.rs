//! Incident capture plumbing: build identity, atomic dump writing, and
//! the SIGTERM/SIGINT traps.
//!
//! The server composes the incident document itself (it owns the
//! registry, audit table, watchdog roster, and flight ring); this
//! module owns the parts that touch the outside world:
//!
//! * [`build_info_json`] — the binary's identity (crate version, git
//!   hash when the build script exported one, per-dtype kernel
//!   fingerprints, spoken protocol versions). Embedded in every
//!   `stats --json` export and incident dump so a post-mortem names the
//!   exact binary it came from.
//! * [`write_incident_file`] — atomic temp+rename dump writing: a
//!   half-written dump is never visible under its final name, even if
//!   the process aborts mid-write.
//! * [`install_signal_traps`]/[`pending_signal`] — SIGTERM/SIGINT
//!   handlers that do nothing but store the signal number into a
//!   process-global atomic (the only async-signal-safe option); a
//!   monitor thread polls the flag and performs the dump + clean stop
//!   from ordinary thread context.

use fmm_core::json;
use fmm_obs::IncidentTrigger;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag every incident document carries; `fmm_serve doctor`
/// refuses documents with a different tag instead of misreading them.
pub const INCIDENT_SCHEMA: &str = "fmm-incident-v1";

/// The build identity as a JSON object: crate version, git hash (when
/// `FMM_GIT_HASH` was set at compile time), the runtime-selected kernel
/// fingerprint per dtype, and the wire protocol versions spoken.
pub fn build_info_json() -> json::Value {
    json::Value::Object(
        [
            ("version".to_string(), json::Value::String(env!("CARGO_PKG_VERSION").to_string())),
            (
                "git_hash".to_string(),
                json::Value::String(option_env!("FMM_GIT_HASH").unwrap_or("unknown").to_string()),
            ),
            (
                "kernel_f64".to_string(),
                json::Value::String(fmm_engine::kernel_fingerprint::<f64>()),
            ),
            (
                "kernel_f32".to_string(),
                json::Value::String(fmm_engine::kernel_fingerprint::<f32>()),
            ),
            ("protocol_versions".to_string(), json::Value::String("v1,v2".to_string())),
        ]
        .into_iter()
        .collect(),
    )
}

/// The same identity as one human-readable line — `fmm_serve top`
/// headers and the Prometheus exposition comment.
pub fn build_info_line() -> String {
    format!(
        "fmm_serve {} git={} kernel_f64={} kernel_f32={} protocol=v1,v2",
        env!("CARGO_PKG_VERSION"),
        option_env!("FMM_GIT_HASH").unwrap_or("unknown"),
        fmm_engine::kernel_fingerprint::<f64>(),
        fmm_engine::kernel_fingerprint::<f32>(),
    )
}

/// Write one incident document under `dir` (created if absent) via
/// temp+rename; the final name embeds the trigger, a wall-clock stamp,
/// and the per-process dump sequence so successive dumps never collide.
pub fn write_incident_file(
    dir: &Path,
    trigger: &str,
    seq: u64,
    doc: &json::Value,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let millis =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let final_path = dir.join(format!("incident-{trigger}-{millis}-{seq}.json"));
    let tmp_path = dir.join(format!(".incident-{trigger}-{millis}-{seq}.json.tmp"));
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(json::to_string_pretty(doc).as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// The pending-signal mailbox: 0 = none, otherwise the raw signal
/// number stored by the handler.
static PENDING_SIGNAL: AtomicU64 = AtomicU64::new(0);

/// Install SIGTERM/SIGINT handlers that record the signal into the
/// returned atomic and do nothing else (the handler body must stay
/// async-signal-safe). Idempotent; on non-Unix targets this is a no-op
/// mailbox that never fires.
pub fn install_signal_traps() -> &'static AtomicU64 {
    sys::install();
    &PENDING_SIGNAL
}

/// Consume a trapped signal, mapping it to its incident trigger.
pub fn pending_signal(mailbox: &AtomicU64) -> Option<IncidentTrigger> {
    match mailbox.swap(0, Ordering::Relaxed) {
        0 => None,
        n if n == sys::SIGTERM as u64 => Some(IncidentTrigger::Sigterm),
        n if n == sys::SIGINT as u64 => Some(IncidentTrigger::Sigint),
        // An unexpected number (non-Unix stub, or a future extra trap):
        // treat as a terminate request rather than dropping it.
        _ => Some(IncidentTrigger::Sigterm),
    }
}

#[cfg(unix)]
mod sys {
    //! Minimal hand-declared signal shim, in the same style as the
    //! poller's epoll declarations: no libc crate, just the POSIX ABI
    //! surface actually used. `signal(2)` rather than `sigaction(2)`
    //! because the handler only stores into an atomic — BSD semantics
    //! (no handler reset, restartable syscalls — the default on every
    //! Unix libc this crate builds against) are exactly what the
    //! polling monitor thread wants, and the shim avoids declaring the
    //! platform-divergent `sigaction` struct layout.
    #![allow(non_camel_case_types)]

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    pub type c_int = i32;

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;

    // Layout guard in the spirit of the ffi-layout rule: the handler
    // pointer crosses the ABI as a machine word and the signal number as
    // a 32-bit int on every supported Unix.
    const _: () = assert!(std::mem::size_of::<c_int>() == 4);
    const _: () =
        assert!(std::mem::size_of::<extern "C" fn(c_int)>() == std::mem::size_of::<usize>());

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    /// The handler: one relaxed store, nothing else — the async-signal-
    /// safe contract forbids locks, allocation, and formatted I/O here.
    extern "C" fn on_signal(signum: c_int) {
        super::PENDING_SIGNAL.store(signum as u64, Ordering::Relaxed);
        // A second signal while the first dump is still being written
        // should kill the process the traditional way: restore default
        // disposition once we have one in the mailbox.
        if REENTERED.swap(true, Ordering::Relaxed) {
            const SIG_DFL: usize = 0;
            // SAFETY: signal(2) is async-signal-safe per POSIX; both
            // arguments are plain integers.
            unsafe {
                signal(signum, SIG_DFL);
            }
        }
    }

    static REENTERED: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    pub fn install() {
        INSTALL.call_once(|| {
            // SAFETY: on_signal is an extern "C" fn whose body is limited
            // to atomic stores and a re-arm via signal(2), both
            // async-signal-safe; the usize cast is the documented way to
            // pass a handler pointer through signal's integer-or-pointer
            // parameter.
            unsafe {
                signal(SIGTERM, on_signal as *const () as usize);
                signal(SIGINT, on_signal as *const () as usize);
            }
        });
    }
}

#[cfg(not(unix))]
mod sys {
    //! Non-Unix stub: no traps; the mailbox simply never fires.
    pub type c_int = i32;
    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_names_the_binary() {
        let info = build_info_json();
        let json::Value::Object(map) = &info else { panic!("build info is an object") };
        for key in ["version", "git_hash", "kernel_f64", "kernel_f32", "protocol_versions"] {
            assert!(map.contains_key(key), "missing {key}");
        }
        let line = build_info_line();
        assert!(line.contains(env!("CARGO_PKG_VERSION")));
        assert!(line.contains("kernel_f64="));
    }

    #[test]
    fn incident_file_written_atomically_with_unique_names() {
        let dir = std::env::temp_dir().join(format!("fmm-incident-test-{}", std::process::id()));
        let doc = json::Value::Object(
            [("schema".to_string(), json::Value::String(INCIDENT_SCHEMA.into()))]
                .into_iter()
                .collect(),
        );
        let p1 = write_incident_file(&dir, "sigterm", 0, &doc).expect("first dump");
        let p2 = write_incident_file(&dir, "sigterm", 1, &doc).expect("second dump");
        assert_ne!(p1, p2, "dump names must not collide");
        for p in [&p1, &p2] {
            let text = fs::read_to_string(p).expect("dump readable");
            let parsed = json::parse(&text).expect("dump is valid JSON");
            let json::Value::Object(map) = parsed else { panic!("dump is an object") };
            assert_eq!(map.get("schema"), Some(&json::Value::String(INCIDENT_SCHEMA.to_string())));
        }
        // No temp leftovers.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("dir listed")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_signal_maps_and_consumes() {
        let mailbox = AtomicU64::new(0);
        assert_eq!(pending_signal(&mailbox), None);
        mailbox.store(sys::SIGTERM as u64, Ordering::Relaxed);
        assert_eq!(pending_signal(&mailbox), Some(IncidentTrigger::Sigterm));
        assert_eq!(pending_signal(&mailbox), None, "signal consumed");
        mailbox.store(sys::SIGINT as u64, Ordering::Relaxed);
        assert_eq!(pending_signal(&mailbox), Some(IncidentTrigger::Sigint));
    }
}
