//! The micro-batching dispatcher: a bounded admission queue per dtype and
//! the drain loop that coalesces concurrent requests into one
//! `FmmEngine::multiply_batch` call.
//!
//! The policy is window/size based, the standard cross-request batching
//! compromise: the dispatcher blocks for the *first* pending request, then
//! keeps admitting stragglers until either [`BatchPolicy::max_batch`] is
//! reached or [`BatchPolicy::window`] has elapsed since the batch opened.
//! Under saturation the window never actually waits (the queue is
//! non-empty, so every pop returns immediately) and throughput is bounded
//! by the engine; at low load a request pays at most one window of extra
//! latency in exchange for the chance to share a fan-out with its
//! neighbors — which is exactly how `multiply_batch` realizes the
//! Benson–Ballard-style inter-problem parallelism on small problems.
//!
//! Admission control lives in the queue itself: [`BatchQueue::try_push`]
//! refuses beyond [`BatchQueue::capacity`], and the connection layer turns
//! that refusal into a typed `Busy` error frame instead of letting pending
//! matrices grow without bound.

use crate::buffers::{BufferPool, PooledBuf, WireBuf};
use crate::metrics::Metrics;
use fmm_engine::{BatchItem, FmmEngine};
use fmm_gemm::GemmScalar;
use fmm_obs::flight::{self, FlightEvent, SlowPhase};
use fmm_obs::Heartbeat;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Test-only wedge hook: while `true`, every dispatcher in the process
/// parks before popping its next job, so admitted work sits in the
/// queue with no batch ever forming — exactly the failure mode the
/// watchdog's progress policy exists to catch. Exposed (hidden) because
/// integration tests cannot reach `#[cfg(test)]` items in the library.
#[doc(hidden)]
pub static WEDGE_DISPATCH: AtomicBool = AtomicBool::new(false);

/// Cross-request coalescing policy.
///
/// A batch closes at the earliest of: `max_batch` reached, `window`
/// elapsed since the batch opened, or `straggler_gap` elapsed since the
/// last arrival. The gap bound is what keeps the window honest under
/// closed-loop load: when every in-flight client is already waiting on a
/// reply, no further request *can* arrive, and without the gap the
/// dispatcher would idle out the whole window anyway — pure wasted
/// latency and, on a saturated machine, lost throughput.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Longest a freshly opened batch waits for stragglers in total. `0`
    /// disables waiting: only requests already queued are coalesced.
    pub window: Duration,
    /// Most requests one `multiply_batch` call may coalesce. `1` disables
    /// batching entirely (one-request-at-a-time dispatch).
    pub max_batch: usize,
    /// Longest the open batch waits for the *next* straggler. Set it to
    /// `window` (or larger) to always wait out the full window.
    pub straggler_gap: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            max_batch: 32,
            straggler_gap: Duration::from_micros(200),
        }
    }
}

/// Where a finished request lives: the event loop that owns its
/// connection, addressed by slot + generation so completions for
/// connections that died mid-flight are recognized and dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnAddr {
    /// The owning event loop's slot index for the connection.
    pub slot: u32,
    /// The slot's generation at admission time; a completion whose
    /// generation no longer matches belongs to a dead connection.
    pub generation: u32,
}

/// A finished request on its way back to the event loop: the pooled
/// result buffer (already in wire byte order) plus everything needed to
/// frame and route the response.
pub struct Completion {
    /// The connection the response belongs to.
    pub addr: ConnAddr,
    /// The request id to echo (0 for v1).
    pub request_id: u64,
    /// The wire version to answer in.
    pub version: u8,
    /// Result rows.
    pub m: usize,
    /// Result columns.
    pub n: usize,
    /// The result bytes, row-major little-endian, pooled.
    pub result: WireBuf,
}

/// Where dispatchers deliver completions: one sink per event loop,
/// implemented by the server (push to the loop's completion queue, then
/// wake its poller).
pub trait CompletionSink: Send + Sync {
    /// Deliver one completion.
    fn complete(&self, completion: Completion);
}

/// The reply route of one admitted request.
pub struct ReplySink {
    /// The owning event loop's completion sink.
    pub sink: Arc<dyn CompletionSink>,
    /// The connection's address on that loop.
    pub addr: ConnAddr,
    /// The request id to echo.
    pub request_id: u64,
    /// The wire version to answer in.
    pub version: u8,
}

/// One admitted request: pooled wire-order operands, dimensions, the
/// completion route back to the event loop, and the admission timestamp
/// for latency accounting.
pub struct Job<T> {
    /// Left operand (`m × k`, row-major in the pooled buffer).
    pub a: PooledBuf<T>,
    /// Right operand (`k × n`, row-major).
    pub b: PooledBuf<T>,
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Completion route.
    pub reply: ReplySink,
    /// When admission control accepted the job.
    pub enqueued: Instant,
}

/// Why [`BatchQueue::try_push`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The queue is at capacity — transient backpressure; retry later.
    Full,
    /// The queue is closed (shutdown) — no retry will ever succeed here.
    Closed,
}

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    closed: bool,
}

/// A bounded multi-producer queue with batch-friendly consumption. The
/// capacity bound is the serving daemon's admission control: producers
/// that find it full are refused immediately (`try_push`), never blocked.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// Queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending jobs right now (racy, for stats only).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Admit a job, or hand it back with the refusal reason — a full
    /// queue is retryable backpressure (`Busy` on the wire), a closed one
    /// is shutdown (`ShuttingDown`, not retryable). The caller owns the
    /// refused job.
    // Returning the whole Job in Err is the point: the refused operands go
    // back to the caller without a drop/reparse cycle, and admission is
    // not a hot path once the queue is full.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job<T>) -> Result<(), (Job<T>, Refusal)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((job, Refusal::Closed));
        }
        if state.jobs.len() >= self.capacity {
            return Err((job, Refusal::Full));
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available (opening a new batch) or the queue
    /// is closed *and* drained — the dispatcher's exit condition.
    pub fn pop_first(&self) -> Option<Job<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Pop one job, waiting no later than `deadline` — the straggler
    /// admission path while a batch's window is open. `None` means the
    /// window elapsed (or the queue closed) with nothing available.
    pub fn pop_until(&self, deadline: Instant) -> Option<Job<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) =
                self.ready.wait_timeout(state, deadline - now).expect("queue poisoned");
            state = next;
            if timeout.timed_out() && state.jobs.is_empty() {
                return None;
            }
        }
    }

    /// Close the queue: further `try_push` calls are refused, and
    /// dispatchers exit once the backlog drains.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Observability sidecar for one dispatcher thread: the watchdog
/// heartbeat it publishes, its flight-recorder component id, and the
/// slow-request threshold. [`run_dispatcher`] runs with the default
/// (no heartbeat, no slow threshold); the server passes a configured
/// one through [`run_dispatcher_observed`].
#[derive(Default)]
pub struct DispatchObs {
    /// Heartbeat the watchdog judges this dispatcher by (progress =
    /// batches formed). `None` disables publishing.
    pub heartbeat: Option<Arc<Heartbeat>>,
    /// Flight-event `dispatcher` field for batches formed here.
    pub dispatcher_id: u64,
    /// Requests whose total latency reaches this record a
    /// [`FlightEvent::SlowRequest`] with their dominant phase.
    /// `None` disables slow-request flight events.
    pub slow_threshold: Option<Duration>,
}

/// Drain `queue` until it closes: form micro-batches under `policy`,
/// execute each through `engine.multiply_batch` over strided views of the
/// pooled wire buffers (no transpose copy, no intermediate `Vec`), and
/// deliver every result to its reply sink as a pooled wire-order buffer.
/// Runs on a dedicated thread per dtype; returns when the queue is closed
/// and fully drained, so in-flight requests complete across a shutdown.
pub fn run_dispatcher<T: GemmScalar>(
    queue: &BatchQueue<T>,
    engine: &FmmEngine<T>,
    pool: &BufferPool<T>,
    policy: BatchPolicy,
    metrics: &Arc<Metrics>,
) where
    WireBuf: From<PooledBuf<T>>,
{
    run_dispatcher_observed(queue, engine, pool, policy, metrics, &DispatchObs::default());
}

/// [`run_dispatcher`] with watchdog/flight-recorder instrumentation.
pub fn run_dispatcher_observed<T: GemmScalar>(
    queue: &BatchQueue<T>,
    engine: &FmmEngine<T>,
    pool: &BufferPool<T>,
    policy: BatchPolicy,
    metrics: &Arc<Metrics>,
    obs: &DispatchObs,
) where
    WireBuf: From<PooledBuf<T>>,
{
    let max_batch = policy.max_batch.max(1);
    loop {
        // Test-only wedge: park *before* popping, so wedged work stays
        // visible in the queue for the watchdog's progress probe.
        while WEDGE_DISPATCH.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let Some(first) = queue.pop_first() else { break };
        // Spans the whole coalescing window, from the job that opened the
        // batch to execution start; tagged with the opener's request id.
        let batch_open = fmm_obs::trace::start();
        let opener_id = first.reply.request_id;
        let mut jobs = Vec::with_capacity(max_batch.min(64));
        jobs.push(first);
        if !policy.window.is_zero() {
            let window_closes = Instant::now() + policy.window;
            while jobs.len() < max_batch {
                // Wait for the next straggler, but no further than the
                // window; a gap with no arrival closes the batch early
                // (see BatchPolicy docs).
                let deadline = window_closes.min(Instant::now() + policy.straggler_gap);
                match queue.pop_until(deadline) {
                    Some(job) => jobs.push(job),
                    None => break,
                }
            }
        } else {
            // Zero window: opportunistic only — coalesce what is already
            // queued, never wait.
            let already = Instant::now();
            while jobs.len() < max_batch {
                match queue.pop_until(already) {
                    Some(job) => jobs.push(job),
                    None => break,
                }
            }
        }

        let exec_start = Instant::now();
        let batch_formed = fmm_obs::trace::now_nanos();
        fmm_obs::trace::finish(fmm_obs::SpanKind::BatchForm, opener_id, batch_open);
        for job in &jobs {
            let wait = exec_start - job.enqueued;
            metrics.record_queue_wait(wait);
            if fmm_obs::trace::enabled() {
                // The wait span ends where the batch starts executing;
                // its start is reconstructed from the measured wait so no
                // clock read happens on the admission path.
                let wait_nanos = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
                fmm_obs::trace::record(fmm_obs::SpanEvent {
                    kind: fmm_obs::SpanKind::QueueWait,
                    request_id: job.reply.request_id,
                    start_nanos: batch_formed.saturating_sub(wait_nanos).max(1),
                    end_nanos: batch_formed,
                    thread: 0,
                });
            }
        }
        // One pooled result buffer per job, zeroed because the engine
        // accumulates (`C += A·B`); the BatchItem views borrow the wire
        // buffers directly for the duration of the fan-out.
        let mut results: Vec<PooledBuf<T>> = jobs
            .iter()
            .map(|job| {
                let mut c = pool.acquire(job.m * job.n);
                c.zero();
                c
            })
            .collect();
        {
            let mut items: Vec<BatchItem<'_, T>> = results
                .iter_mut()
                .zip(jobs.iter())
                .map(|(c, job)| {
                    BatchItem::new(
                        c.mat_mut(job.m, job.n),
                        job.a.mat_ref(job.m, job.k),
                        job.b.mat_ref(job.k, job.n),
                    )
                    .with_tag(job.reply.request_id)
                })
                .collect();
            engine.multiply_batch(&mut items);
        }
        metrics.record_batch(jobs.len());
        flight::record(FlightEvent::BatchFormed {
            dispatcher: obs.dispatcher_id,
            batch: jobs.len() as u64,
            depth: queue.depth() as u64,
        });
        if let Some(hb) = &obs.heartbeat {
            hb.beat();
            hb.progress();
        }
        let service = exec_start.elapsed();
        for (job, mut result) in jobs.into_iter().zip(results) {
            metrics.record_service(service);
            let total = job.enqueued.elapsed();
            metrics.record_latency(total);
            if let Some(threshold) = obs.slow_threshold {
                if total >= threshold {
                    // The serve/flush phase happens after hand-off and is
                    // not visible here, so the dominant phase is whichever
                    // half of the dispatch latency was larger.
                    let wait = total.saturating_sub(service);
                    let (phase, phase_nanos) = if wait > service {
                        (SlowPhase::QueueWait, wait.as_nanos())
                    } else {
                        (SlowPhase::Execute, service.as_nanos())
                    };
                    flight::record(FlightEvent::SlowRequest {
                        request_id: job.reply.request_id,
                        total_nanos: u64::try_from(total.as_nanos()).unwrap_or(u64::MAX),
                        phase,
                        phase_nanos: u64::try_from(phase_nanos).unwrap_or(u64::MAX),
                    });
                }
            }
            result.host_to_wire();
            let Job { a, b, m, n, reply, .. } = job;
            // Operands must be back in the pool *before* the completion
            // wakes the event loop: the client's next request can race
            // the tail of this iteration and must find them idle.
            drop(a);
            drop(b);
            reply.sink.complete(Completion {
                addr: reply.addr,
                request_id: reply.request_id,
                version: reply.version,
                m,
                n,
                result: result.into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::IngestPools;
    use crate::protocol::WireScalar;
    use fmm_dense::Matrix;
    use fmm_engine::{EngineConfig, Routing};
    use fmm_gemm::BlockingParams;
    use std::thread;

    /// Test sink: collects completions and wakes waiters.
    #[derive(Default)]
    struct Collector {
        done: Mutex<Vec<Completion>>,
        ready: Condvar,
    }

    impl CompletionSink for Collector {
        fn complete(&self, completion: Completion) {
            self.done.lock().expect("collector poisoned").push(completion);
            self.ready.notify_all();
        }
    }

    impl Collector {
        fn wait_for(&self, count: usize) -> Vec<(u64, Matrix<f64>)> {
            let mut done = self.done.lock().expect("collector poisoned");
            while done.len() < count {
                let (next, timeout) = self
                    .ready
                    .wait_timeout(done, Duration::from_secs(20))
                    .expect("collector poisoned");
                done = next;
                assert!(!timeout.timed_out(), "dispatcher never completed {count} jobs");
            }
            done.iter()
                .map(|c| {
                    let bytes = c.result.bytes();
                    let w = std::mem::size_of::<f64>();
                    let mat = Matrix::from_fn(c.m, c.n, |i, j| {
                        f64::read_le(&bytes[(i * c.n + j) * w..(i * c.n + j) * w + w])
                    });
                    (c.request_id, mat)
                })
                .collect()
        }
    }

    fn job(
        pools: &IngestPools,
        sink: &Arc<Collector>,
        n: usize,
        seed: u64,
        request_id: u64,
    ) -> (Job<f64>, Matrix<f64>, Matrix<f64>) {
        let a = fmm_dense::fill::bench_workload(n, n, seed);
        let b = fmm_dense::fill::bench_workload(n, n, seed + 1);
        let mut pa = pools.f64.acquire(n * n);
        let mut pb = pools.f64.acquire(n * n);
        for i in 0..n {
            for j in 0..n {
                pa.as_mut_slice()[i * n + j] = a.get(i, j);
                pb.as_mut_slice()[i * n + j] = b.get(i, j);
            }
        }
        let reply = ReplySink {
            sink: sink.clone() as Arc<dyn CompletionSink>,
            addr: ConnAddr { slot: 0, generation: 0 },
            request_id,
            version: 2,
        };
        (Job { a: pa, b: pb, m: n, k: n, n, reply, enqueued: Instant::now() }, a, b)
    }

    #[test]
    fn queue_refuses_beyond_capacity_and_after_close() {
        let pools = IngestPools::new(8, usize::MAX);
        let sink = Arc::new(Collector::default());
        let q = BatchQueue::<f64>::new(2);
        let (j1, _, _) = job(&pools, &sink, 4, 1, 1);
        let (j2, _, _) = job(&pools, &sink, 4, 3, 2);
        let (j3, _, _) = job(&pools, &sink, 4, 5, 3);
        assert!(q.try_push(j1).is_ok());
        assert!(q.try_push(j2).is_ok());
        let (refused, why) = match q.try_push(j3) {
            Err(refusal) => refusal,
            Ok(()) => panic!("full queue must refuse"),
        };
        assert_eq!(why, Refusal::Full, "capacity refusal is the retryable kind");
        assert_eq!(q.depth(), 2);
        q.close();
        match q.try_push(refused) {
            Err((_, Refusal::Closed)) => {}
            Err((_, why)) => panic!("closed queue must refuse as Closed, got {why:?}"),
            Ok(()) => panic!("closed queue must refuse"),
        }
        // Drain still works after close…
        assert!(q.pop_first().is_some());
        assert!(q.pop_first().is_some());
        // …and then signals exit.
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn pop_until_times_out_without_jobs() {
        let q = BatchQueue::<f64>::new(4);
        let t0 = Instant::now();
        assert!(q.pop_until(t0 + Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn dispatcher_coalesces_queued_jobs_and_completes_each_by_id() {
        let engine = FmmEngine::<f64>::new(EngineConfig {
            params: BlockingParams::tiny(),
            routing: Routing::Model,
            ..EngineConfig::default()
        });
        let pools = IngestPools::new(16, usize::MAX);
        let sink = Arc::new(Collector::default());
        let metrics = Arc::new(Metrics::default());
        let queue = BatchQueue::new(16);
        let mut expected = Vec::new();
        for seed in 0..6u64 {
            let (j, a, b) = job(&pools, &sink, 24, seed * 2 + 1, 100 + seed);
            expected.push((100 + seed, fmm_gemm::reference::matmul(a.as_ref(), b.as_ref())));
            assert!(queue.try_push(j).is_ok());
        }
        queue.close(); // dispatcher drains the backlog then exits

        let policy = BatchPolicy {
            window: Duration::from_millis(50),
            max_batch: 8,
            straggler_gap: Duration::from_millis(50),
        };
        thread::scope(|s| {
            s.spawn(|| run_dispatcher(&queue, &engine, &pools.f64, policy, &metrics));
        });

        let mut got = sink.wait_for(6);
        got.sort_by_key(|(id, _)| *id);
        for ((id, mat), (want_id, want)) in got.iter().zip(&expected) {
            assert_eq!(id, want_id, "completion routed by request id");
            assert!(fmm_dense::norms::rel_error(mat.as_ref(), want.as_ref()) < 1e-9);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.batched_items, 6);
        assert!(snap.max_occupancy > 1, "queued jobs were coalesced: {snap:?}");
        assert_eq!(snap.latency.count, 6);
        assert_eq!(snap.queue_wait.count, 6, "queue-wait split recorded per job");
        assert_eq!(snap.service.count, 6, "service split recorded per job");
    }

    #[test]
    fn max_batch_one_dispatches_one_at_a_time() {
        let engine = FmmEngine::<f64>::new(EngineConfig {
            params: BlockingParams::tiny(),
            ..EngineConfig::default()
        });
        let pools = IngestPools::new(16, usize::MAX);
        let sink = Arc::new(Collector::default());
        let metrics = Arc::new(Metrics::default());
        let queue = BatchQueue::new(16);
        for seed in 0..3u64 {
            let (j, _, _) = job(&pools, &sink, 16, seed * 2 + 20, seed);
            assert!(queue.try_push(j).is_ok());
        }
        queue.close();
        let policy =
            BatchPolicy { window: Duration::ZERO, max_batch: 1, straggler_gap: Duration::ZERO };
        thread::scope(|s| {
            s.spawn(|| run_dispatcher(&queue, &engine, &pools.f64, policy, &metrics));
        });
        sink.wait_for(3);
        let snap = metrics.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.max_occupancy, 1);
    }

    #[test]
    fn warm_dispatch_hits_the_result_pool() {
        let engine = FmmEngine::<f64>::new(EngineConfig {
            params: BlockingParams::tiny(),
            ..EngineConfig::default()
        });
        let pools = IngestPools::new(16, usize::MAX);
        let sink = Arc::new(Collector::default());
        let metrics = Arc::new(Metrics::default());
        // Two rounds of the same shape: round 1 warms the pool, round 2
        // must be all hits for the result buffers.
        for round in 0..2 {
            let queue = BatchQueue::new(4);
            let (j, _, _) = job(&pools, &sink, 8, 50 + round, round);
            assert!(queue.try_push(j).is_ok());
            queue.close();
            let policy =
                BatchPolicy { window: Duration::ZERO, max_batch: 4, straggler_gap: Duration::ZERO };
            thread::scope(|s| {
                s.spawn(|| run_dispatcher(&queue, &engine, &pools.f64, policy, &metrics));
            });
        }
        sink.wait_for(2);
        let misses_after_warm = pools.f64.stats().misses;
        // Drop the collected results back to the pool, then run a third
        // warm round: zero new allocations end to end.
        sink.done.lock().expect("collector poisoned").clear();
        let queue = BatchQueue::new(4);
        let (j, _, _) = job(&pools, &sink, 8, 60, 9);
        assert!(queue.try_push(j).is_ok());
        queue.close();
        let policy =
            BatchPolicy { window: Duration::ZERO, max_batch: 4, straggler_gap: Duration::ZERO };
        thread::scope(|s| {
            s.spawn(|| run_dispatcher(&queue, &engine, &pools.f64, policy, &metrics));
        });
        sink.wait_for(1);
        assert_eq!(
            pools.f64.stats().misses,
            misses_after_warm,
            "warm-path dispatch allocated a payload buffer"
        );
    }
}
