//! The micro-batching dispatcher: a bounded admission queue per dtype and
//! the drain loop that coalesces concurrent requests into one
//! `FmmEngine::multiply_batch` call.
//!
//! The policy is window/size based, the standard cross-request batching
//! compromise: the dispatcher blocks for the *first* pending request, then
//! keeps admitting stragglers until either [`BatchPolicy::max_batch`] is
//! reached or [`BatchPolicy::window`] has elapsed since the batch opened.
//! Under saturation the window never actually waits (the queue is
//! non-empty, so every pop returns immediately) and throughput is bounded
//! by the engine; at low load a request pays at most one window of extra
//! latency in exchange for the chance to share a fan-out with its
//! neighbors — which is exactly how `multiply_batch` realizes the
//! Benson–Ballard-style inter-problem parallelism on small problems.
//!
//! Admission control lives in the queue itself: [`BatchQueue::try_push`]
//! refuses beyond [`BatchQueue::capacity`], and the connection layer turns
//! that refusal into a typed `Busy` error frame instead of letting pending
//! matrices grow without bound.

use crate::metrics::Metrics;
use fmm_dense::Matrix;
use fmm_engine::{BatchItem, FmmEngine};
use fmm_gemm::GemmScalar;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cross-request coalescing policy.
///
/// A batch closes at the earliest of: `max_batch` reached, `window`
/// elapsed since the batch opened, or `straggler_gap` elapsed since the
/// last arrival. The gap bound is what keeps the window honest under
/// closed-loop load: when every in-flight client is already waiting on a
/// reply, no further request *can* arrive, and without the gap the
/// dispatcher would idle out the whole window anyway — pure wasted
/// latency and, on a saturated machine, lost throughput.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Longest a freshly opened batch waits for stragglers in total. `0`
    /// disables waiting: only requests already queued are coalesced.
    pub window: Duration,
    /// Most requests one `multiply_batch` call may coalesce. `1` disables
    /// batching entirely (one-request-at-a-time dispatch).
    pub max_batch: usize,
    /// Longest the open batch waits for the *next* straggler. Set it to
    /// `window` (or larger) to always wait out the full window.
    pub straggler_gap: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            max_batch: 32,
            straggler_gap: Duration::from_micros(200),
        }
    }
}

/// One admitted request: operands, the reply channel back to the
/// connection thread, and the admission timestamp for service-latency
/// accounting.
pub struct Job<T> {
    /// Left operand (`m × k`).
    pub a: Matrix<T>,
    /// Right operand (`k × n`).
    pub b: Matrix<T>,
    /// Reply channel; the connection thread blocks on the paired receiver.
    pub reply: mpsc::Sender<Matrix<T>>,
    /// When admission control accepted the job.
    pub enqueued: Instant,
}

/// Why [`BatchQueue::try_push`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The queue is at capacity — transient backpressure; retry later.
    Full,
    /// The queue is closed (shutdown) — no retry will ever succeed here.
    Closed,
}

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    closed: bool,
}

/// A bounded multi-producer queue with batch-friendly consumption. The
/// capacity bound is the serving daemon's admission control: producers
/// that find it full are refused immediately (`try_push`), never blocked.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// Queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending jobs right now (racy, for stats only).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Admit a job, or hand it back with the refusal reason — a full
    /// queue is retryable backpressure (`Busy` on the wire), a closed one
    /// is shutdown (`ShuttingDown`, not retryable). The caller owns the
    /// refused job.
    // Returning the whole Job in Err is the point: the refused operands go
    // back to the caller without a drop/reparse cycle, and admission is
    // not a hot path once the queue is full.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, job: Job<T>) -> Result<(), (Job<T>, Refusal)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((job, Refusal::Closed));
        }
        if state.jobs.len() >= self.capacity {
            return Err((job, Refusal::Full));
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available (opening a new batch) or the queue
    /// is closed *and* drained — the dispatcher's exit condition.
    pub fn pop_first(&self) -> Option<Job<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Pop one job, waiting no later than `deadline` — the straggler
    /// admission path while a batch's window is open. `None` means the
    /// window elapsed (or the queue closed) with nothing available.
    pub fn pop_until(&self, deadline: Instant) -> Option<Job<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) =
                self.ready.wait_timeout(state, deadline - now).expect("queue poisoned");
            state = next;
            if timeout.timed_out() && state.jobs.is_empty() {
                return None;
            }
        }
    }

    /// Close the queue: further `try_push` calls are refused, and
    /// dispatchers exit once the backlog drains.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Drain `queue` until it closes: form micro-batches under `policy`,
/// execute each through `engine.multiply_batch`, and hand every result
/// back on its job's reply channel. Runs on a dedicated thread per dtype;
/// returns when the queue is closed and fully drained, so in-flight
/// requests complete across a shutdown.
pub fn run_dispatcher<T: GemmScalar>(
    queue: &BatchQueue<T>,
    engine: &FmmEngine<T>,
    policy: BatchPolicy,
    metrics: &Arc<Metrics>,
) {
    let max_batch = policy.max_batch.max(1);
    while let Some(first) = queue.pop_first() {
        let mut jobs = Vec::with_capacity(max_batch.min(64));
        jobs.push(first);
        if !policy.window.is_zero() {
            let window_closes = Instant::now() + policy.window;
            while jobs.len() < max_batch {
                // Wait for the next straggler, but no further than the
                // window; a gap with no arrival closes the batch early
                // (see BatchPolicy docs).
                let deadline = window_closes.min(Instant::now() + policy.straggler_gap);
                match queue.pop_until(deadline) {
                    Some(job) => jobs.push(job),
                    None => break,
                }
            }
        } else {
            // Zero window: opportunistic only — coalesce what is already
            // queued, never wait.
            let already = Instant::now();
            while jobs.len() < max_batch {
                match queue.pop_until(already) {
                    Some(job) => jobs.push(job),
                    None => break,
                }
            }
        }

        // One result buffer per job; the BatchItem views borrow them for
        // the duration of the fan-out.
        let mut results: Vec<Matrix<T>> =
            jobs.iter().map(|job| Matrix::zeros(job.a.rows(), job.b.cols())).collect();
        {
            let mut items: Vec<BatchItem<'_, T>> = results
                .iter_mut()
                .zip(jobs.iter())
                .map(|(c, job)| BatchItem::new(c.as_mut(), job.a.as_ref(), job.b.as_ref()))
                .collect();
            engine.multiply_batch(&mut items);
        }
        metrics.record_batch(jobs.len());
        for (job, result) in jobs.into_iter().zip(results) {
            metrics.record_latency(job.enqueued.elapsed());
            // A dropped receiver (client hung up mid-flight) is not an
            // error worth dying for; the work is simply discarded.
            let _ = job.reply.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_engine::{EngineConfig, Routing};
    use fmm_gemm::BlockingParams;
    use std::thread;

    fn job(n: usize, seed: u64) -> (Job<f64>, mpsc::Receiver<Matrix<f64>>) {
        let (tx, rx) = mpsc::channel();
        let a = fmm_dense::fill::bench_workload(n, n, seed);
        let b = fmm_dense::fill::bench_workload(n, n, seed + 1);
        (Job { a, b, reply: tx, enqueued: Instant::now() }, rx)
    }

    #[test]
    fn queue_refuses_beyond_capacity_and_after_close() {
        let q = BatchQueue::<f64>::new(2);
        let (j1, _r1) = job(4, 1);
        let (j2, _r2) = job(4, 3);
        let (j3, _r3) = job(4, 5);
        assert!(q.try_push(j1).is_ok());
        assert!(q.try_push(j2).is_ok());
        let (refused, why) = match q.try_push(j3) {
            Err(refusal) => refusal,
            Ok(()) => panic!("full queue must refuse"),
        };
        assert_eq!(why, Refusal::Full, "capacity refusal is the retryable kind");
        assert_eq!(q.depth(), 2);
        q.close();
        match q.try_push(refused) {
            Err((_, Refusal::Closed)) => {}
            Err((_, why)) => panic!("closed queue must refuse as Closed, got {why:?}"),
            Ok(()) => panic!("closed queue must refuse"),
        }
        // Drain still works after close…
        assert!(q.pop_first().is_some());
        assert!(q.pop_first().is_some());
        // …and then signals exit.
        assert!(q.pop_first().is_none());
    }

    #[test]
    fn pop_until_times_out_without_jobs() {
        let q = BatchQueue::<f64>::new(4);
        let t0 = Instant::now();
        assert!(q.pop_until(t0 + Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn dispatcher_coalesces_queued_jobs_and_answers_each() {
        let engine = FmmEngine::<f64>::new(EngineConfig {
            params: BlockingParams::tiny(),
            routing: Routing::Model,
            ..EngineConfig::default()
        });
        let metrics = Arc::new(Metrics::default());
        let queue = BatchQueue::new(16);
        let mut receivers = Vec::new();
        let mut expected = Vec::new();
        for seed in 0..6u64 {
            let (j, rx) = job(24, seed * 2 + 1);
            expected.push(fmm_gemm::reference::matmul(j.a.as_ref(), j.b.as_ref()));
            assert!(queue.try_push(j).is_ok());
            receivers.push(rx);
        }
        queue.close(); // dispatcher drains the backlog then exits

        let policy = BatchPolicy {
            window: Duration::from_millis(50),
            max_batch: 8,
            straggler_gap: Duration::from_millis(50),
        };
        thread::scope(|s| {
            s.spawn(|| run_dispatcher(&queue, &engine, policy, &metrics));
        });

        for (rx, want) in receivers.iter().zip(&expected) {
            let got = rx.recv().expect("dispatcher replied");
            assert!(fmm_dense::norms::rel_error(got.as_ref(), want.as_ref()) < 1e-9);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.batched_items, 6);
        assert!(snap.max_occupancy > 1, "queued jobs were coalesced: {snap:?}");
        assert_eq!(snap.latency.count, 6);
    }

    #[test]
    fn max_batch_one_dispatches_one_at_a_time() {
        let engine = FmmEngine::<f64>::new(EngineConfig {
            params: BlockingParams::tiny(),
            ..EngineConfig::default()
        });
        let metrics = Arc::new(Metrics::default());
        let queue = BatchQueue::new(16);
        let mut receivers = Vec::new();
        for seed in 0..3u64 {
            let (j, rx) = job(16, seed * 2 + 20);
            assert!(queue.try_push(j).is_ok());
            receivers.push(rx);
        }
        queue.close();
        let policy =
            BatchPolicy { window: Duration::ZERO, max_batch: 1, straggler_gap: Duration::ZERO };
        thread::scope(|s| {
            s.spawn(|| run_dispatcher(&queue, &engine, policy, &metrics));
        });
        for rx in &receivers {
            rx.recv().expect("reply");
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.max_occupancy, 1);
    }
}
