//! The `fmm-serve` wire protocol: length-prefixed binary frames, in two
//! versions the server speaks side by side.
//!
//! A **v1** frame is a fixed 10-byte header followed by `payload_len`
//! bytes:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FMMS"
//!      4     1  version (1)
//!      5     1  kind    (FrameKind)
//!      6     4  payload_len, u32 little-endian
//! ```
//!
//! A **v2** frame extends the header to 18 bytes with a per-frame
//! `request_id`, which is what lets one connection pipeline many in-flight
//! requests and receive the responses out of order:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FMMS"
//!      4     1  version (2)
//!      5     1  kind    (FrameKind)
//!      6     4  payload_len, u32 little-endian
//!     10     8  request_id, u64 little-endian
//! ```
//!
//! The server echoes each frame's version and (for v2) `request_id` in
//! its reply, so v1 clients keep their strict request/response semantics
//! against a v2 server, while v2 clients match replies by id.
//!
//! A `Request` payload is `dtype(u8) m(u32) k(u32) n(u32)` followed by the
//! `A` (`m*k`) and `B` (`k*n`) elements, **row-major**, little-endian, at
//! the dtype's width; a `Response` payload is `dtype(u8) m(u32) n(u32)`
//! followed by `C` row-major. `Error` payloads are `code(u8)` plus a UTF-8
//! message. All multi-byte integers are little-endian.
//!
//! Parsing is defensive by contract: a frame from the network is untrusted
//! input, so every decode path returns `Err` on malformed bytes — no
//! panic, no unchecked multiplication, no allocation before the declared
//! length has been validated against the configured cap.
//!
//! That contract is machine-checked: the pragma below opts this whole
//! file into `fmm-check`'s `deny-panic` rule (no `unwrap`/`expect`/
//! `panic!`/`unreachable!`/`[]` indexing outside tests), and CI fails on
//! any violation. See README § Static analysis.

// fmm-check: contract(panic-free)

use fmm_dense::Matrix;
use fmm_gemm::GemmScalar;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FMMS";

/// The original protocol version: one blocking request in flight per
/// connection, no request ids. Still fully served.
pub const VERSION: u8 = 1;

/// The pipelined protocol version: every frame carries a `request_id`.
pub const VERSION_V2: u8 = 2;

/// Fixed v1 frame-header size in bytes (also the prefix every v2 header
/// starts with).
pub const HEADER_LEN: usize = 10;

/// Full v2 frame-header size in bytes (v1 header + u64 request id).
pub const HEADER_LEN_V2: usize = 18;

/// Request-payload prelude size: dtype + m + k + n.
pub const REQUEST_PRELUDE: usize = 1 + 4 + 4 + 4;

/// Response-payload prelude size: dtype + m + n.
pub const RESPONSE_PRELUDE: usize = 1 + 4 + 4;

/// Read `N` bytes starting at `off`, or `None` if the slice is too short —
/// the panic-free building block the decode paths here and in `conn`
/// slice with (`fmm-check` forbids `[]` indexing in both).
pub(crate) fn le_bytes<const N: usize>(b: &[u8], off: usize) -> Option<[u8; N]> {
    let src = b.get(off..off.checked_add(N)?)?;
    let mut out = [0u8; N];
    for (d, s) in out.iter_mut().zip(src) {
        *d = *s;
    }
    Some(out)
}

/// Read a little-endian `u32` at `off` (`None` when out of bounds).
fn le_u32(b: &[u8], off: usize) -> Option<u32> {
    le_bytes::<4>(b, off).map(u32::from_le_bytes)
}

/// Copy `src` into `dst` at `off`. Encode paths call this with statically
/// sized buffers, so the bounds check can only fail on a local bug — it
/// is asserted in debug builds and a no-op out of bounds in release.
fn put(dst: &mut [u8], off: usize, src: &[u8]) {
    let end = off.checked_add(src.len());
    debug_assert!(end.is_some_and(|e| e <= dst.len()), "put out of bounds");
    if let Some(d) = end.and_then(|e| dst.get_mut(off..e)) {
        d.copy_from_slice(src);
    }
}

/// Frame discriminator (header byte 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: one `C = A·B` problem.
    Request = 1,
    /// Server → client: the result matrix for one `Request`.
    Response = 2,
    /// Server → client: a typed error (see [`ErrorCode`]).
    Error = 3,
    /// Client → server: liveness probe; the payload is echoed back.
    Ping = 4,
    /// Server → client: `Ping` echo, and the `Shutdown` acknowledgement.
    Pong = 5,
    /// Client → server: request the plaintext stats snapshot.
    StatsRequest = 6,
    /// Server → client: the stats snapshot (UTF-8 payload).
    StatsReply = 7,
    /// Client → server: stop the daemon after in-flight work drains.
    Shutdown = 8,
    /// Both directions: client sends an empty payload, server replies
    /// with the full observability-registry snapshot as UTF-8 JSON.
    /// Servers that predate this kind reject it with a typed
    /// [`ErrorCode::Malformed`] error frame (unknown kind byte).
    StatsJson = 9,
    /// Both directions: client payload is an optional 8-byte LE count
    /// ("last N events", 0/absent = all retained); server replies with
    /// recent tracing span events as UTF-8 JSON.
    Trace = 10,
    /// Both directions: client sends an empty payload, server replies
    /// with a self-contained incident dump (build/config fingerprint,
    /// registry snapshot, audit table, recent spans, flight-recorder
    /// ring) as UTF-8 JSON — the same document a SIGTERM/panic dump
    /// writes to `--incident-dir`. Servers that predate this kind
    /// reject it with a typed [`ErrorCode::Malformed`] error frame.
    Incident = 11,
}

impl FrameKind {
    /// Decode a header kind byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Request),
            2 => Some(Self::Response),
            3 => Some(Self::Error),
            4 => Some(Self::Ping),
            5 => Some(Self::Pong),
            6 => Some(Self::StatsRequest),
            7 => Some(Self::StatsReply),
            8 => Some(Self::Shutdown),
            9 => Some(Self::StatsJson),
            10 => Some(Self::Trace),
            11 => Some(Self::Incident),
            _ => None,
        }
    }
}

/// Typed error codes carried by [`FrameKind::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame or payload could not be decoded (bad magic, unknown
    /// kind/dtype, length/dimension mismatch, …).
    Malformed = 1,
    /// The frame's version byte is not one this server speaks.
    UnsupportedVersion = 2,
    /// The declared payload length exceeds the server's frame cap.
    Oversized = 3,
    /// Admission control: the pending queue is full; retry later.
    Busy = 4,
    /// The server failed internally while handling the request.
    Internal = 5,
    /// The daemon is shutting down and accepts no new work. Unlike
    /// [`ErrorCode::Busy`] this is not retryable against this process.
    ShuttingDown = 6,
}

impl ErrorCode {
    /// Decode an error-code byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Malformed),
            2 => Some(Self::UnsupportedVersion),
            3 => Some(Self::Oversized),
            4 => Some(Self::Busy),
            5 => Some(Self::Internal),
            6 => Some(Self::ShuttingDown),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Malformed => "malformed",
            Self::UnsupportedVersion => "unsupported-version",
            Self::Oversized => "oversized",
            Self::Busy => "busy",
            Self::Internal => "internal",
            Self::ShuttingDown => "shutting-down",
        };
        f.write_str(name)
    }
}

/// Element dtype of a request/response payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Dtype {
    /// IEEE-754 binary64.
    F64 = 1,
    /// IEEE-754 binary32.
    F32 = 2,
}

impl Dtype {
    /// Decode a dtype byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::F64),
            2 => Some(Self::F32),
            _ => None,
        }
    }

    /// Element width in bytes.
    pub fn elem_bytes(self) -> usize {
        match self {
            Self::F64 => 8,
            Self::F32 => 4,
        }
    }

    /// Human-readable name (matches `Scalar::NAME`).
    pub fn name(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
        }
    }
}

/// A scalar that can cross the wire: ties a [`Dtype`] tag to fixed-width
/// little-endian encode/decode. Implemented for `f64` and `f32`; the
/// client and server matrix codecs are generic over it.
pub trait WireScalar: GemmScalar {
    /// The dtype tag requests/responses of this scalar carry.
    const DTYPE: Dtype;
    /// Append the little-endian bytes of `v`.
    fn write_le(v: Self, out: &mut Vec<u8>);
    /// Read one element from exactly `size_of::<Self>()` bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

impl WireScalar for f64 {
    const DTYPE: Dtype = Dtype::F64;

    fn write_le(v: Self, out: &mut Vec<u8>) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        debug_assert_eq!(bytes.len(), 8, "callers slice exactly one element");
        f64::from_le_bytes(le_bytes(bytes, 0).unwrap_or_default())
    }
}

impl WireScalar for f32 {
    const DTYPE: Dtype = Dtype::F32;

    fn write_le(v: Self, out: &mut Vec<u8>) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        debug_assert_eq!(bytes.len(), 4, "callers slice exactly one element");
        f32::from_le_bytes(le_bytes(bytes, 0).unwrap_or_default())
    }
}

/// One decoded frame.
#[derive(Debug)]
pub struct Frame {
    /// The frame kind.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Why [`read_frame`] could not produce a [`Frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Transport failure (includes mid-frame EOF).
    Io(io::Error),
    /// The magic bytes are wrong — the stream is not speaking this
    /// protocol, so framing is unrecoverable.
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Declared payload length exceeds the configured cap. Recovery would
    /// require skipping the body, which is exactly the memory/time the cap
    /// exists to refuse — the connection should be answered and closed.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The enforced cap.
        cap: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic(m) => write!(f, "bad magic {m:?}"),
            Self::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks v1 and v2)")
            }
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::Oversized { declared, cap } => {
                write!(f, "declared payload of {declared} bytes exceeds the {cap}-byte cap")
            }
        }
    }
}

/// Write one frame (header + payload). The caller flushes.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    // Hard error, not a debug_assert: silently wrapping the u32 length
    // field in release builds would desynchronize the stream.
    if payload.len() > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the u32 length field", payload.len()),
        ));
    }
    let mut header = [0u8; HEADER_LEN];
    put(&mut header, 0, &MAGIC);
    put(&mut header, 4, &[VERSION, kind as u8]);
    put(&mut header, 6, &(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Read one frame, enforcing `max_payload` before any payload allocation.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish a clean close (EOF before any header byte) from a
    // truncated frame.
    let mut filled = 0;
    while filled < HEADER_LEN {
        // `filled < HEADER_LEN` makes the range valid; `get_mut` keeps the
        // path panic-free regardless.
        let dst = header.get_mut(filled..).unwrap_or(&mut []);
        match r.read(dst) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let [m0, m1, m2, m3, version, kind_b, l0, l1, l2, l3] = header;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(kind_b).ok_or(FrameError::BadKind(kind_b))?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized { declared: len as u64, cap: max_payload as u64 });
    }
    let mut payload = vec![0u8; len];
    r.read_all(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// One decoded frame together with its wire version and (for v2 frames)
/// request id — what version-agnostic readers produce.
#[derive(Debug)]
pub struct FrameV {
    /// The wire version the frame arrived in ([`VERSION`] or
    /// [`VERSION_V2`]).
    pub version: u8,
    /// The frame's request id (`0` for v1 frames, which carry none).
    pub request_id: u64,
    /// The frame kind.
    pub kind: FrameKind,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Encode a frame header for `version` into `out`. v1 headers are 10
/// bytes; v2 headers append the little-endian `request_id`.
pub fn encode_header(version: u8, kind: FrameKind, payload_len: u32, request_id: u64) -> Vec<u8> {
    debug_assert!(version == VERSION || version == VERSION_V2, "unknown header version");
    let mut header = Vec::with_capacity(HEADER_LEN_V2);
    header.extend_from_slice(&MAGIC);
    header.push(version);
    header.push(kind as u8);
    header.extend_from_slice(&payload_len.to_le_bytes());
    if version == VERSION_V2 {
        header.extend_from_slice(&request_id.to_le_bytes());
    }
    header
}

/// Write one frame in the given wire version (v1 ignores `request_id`).
/// The caller flushes.
pub fn write_frame_v(
    w: &mut impl Write,
    version: u8,
    request_id: u64,
    kind: FrameKind,
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the u32 length field", payload.len()),
        ));
    }
    w.write_all(&encode_header(version, kind, payload.len() as u32, request_id))?;
    w.write_all(payload)
}

/// Read one frame of either protocol version, enforcing `max_payload`
/// before any payload allocation. This is the version-agnostic reader the
/// pipelined client uses; servers decode incrementally instead (see
/// `conn`).
pub fn read_frame_any(r: &mut impl Read, max_payload: usize) -> Result<FrameV, FrameError> {
    // Only the 10 shared prefix bytes land here; a v2 frame's request id
    // is read separately below.
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        // `filled < HEADER_LEN` makes the range valid; `get_mut` keeps the
        // path panic-free regardless.
        let dst = header.get_mut(filled..).unwrap_or(&mut []);
        match r.read(dst) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let [m0, m1, m2, m3, version, kind_b, l0, l1, l2, l3] = header;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if version != VERSION && version != VERSION_V2 {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(kind_b).ok_or(FrameError::BadKind(kind_b))?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized { declared: len as u64, cap: max_payload as u64 });
    }
    let request_id = if version == VERSION_V2 {
        let mut ext = [0u8; 8];
        r.read_all(&mut ext)?;
        u64::from_le_bytes(ext)
    } else {
        0
    };
    let mut payload = vec![0u8; len];
    r.read_all(&mut payload)?;
    Ok(FrameV { version, request_id, kind, payload })
}

/// `read_exact` that maps errors into [`FrameError`].
trait ReadAll: Read {
    fn read_all(&mut self, buf: &mut [u8]) -> Result<(), FrameError> {
        self.read_exact(buf).map_err(FrameError::Io)
    }
}

impl<R: Read> ReadAll for R {}

/// A parsed frame-header prefix (the first [`HEADER_LEN`] bytes, common
/// to both versions). For a v2 frame the caller still owes the 8-byte
/// request id before the payload starts.
#[derive(Clone, Copy, Debug)]
pub struct HeaderInfo {
    /// Wire version ([`VERSION`] or [`VERSION_V2`]).
    pub version: u8,
    /// The frame kind.
    pub kind: FrameKind,
    /// Declared payload length in bytes (already cap-checked).
    pub payload_len: usize,
}

/// Parse and validate the 10-byte header prefix shared by v1 and v2
/// frames, enforcing `max_payload` before anything is allocated. The
/// error classification (magic → version → kind → cap, in that order) is
/// the protocol contract servers answer typed error frames from.
pub fn parse_header_prefix(
    bytes: &[u8; HEADER_LEN],
    max_payload: usize,
) -> Result<HeaderInfo, FrameError> {
    let [m0, m1, m2, m3, version, kind_b, l0, l1, l2, l3] = *bytes;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if version != VERSION && version != VERSION_V2 {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(kind_b).ok_or(FrameError::BadKind(kind_b))?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > max_payload {
        return Err(FrameError::Oversized { declared: len as u64, cap: max_payload as u64 });
    }
    Ok(HeaderInfo { version, kind, payload_len: len })
}

/// The validated dimensions of a request payload, parsed from its
/// [`REQUEST_PRELUDE`]-byte prefix before the operand bytes arrive — the
/// contract the server's streaming ingest needs to size pooled buffers
/// from without buffering the whole payload first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestDims {
    /// Element dtype.
    pub dtype: Dtype,
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
}

impl RequestDims {
    /// Bytes of the `A` operand on the wire.
    pub fn a_bytes(&self) -> usize {
        self.m * self.k * self.dtype.elem_bytes()
    }

    /// Bytes of the `B` operand on the wire.
    pub fn b_bytes(&self) -> usize {
        self.k * self.n * self.dtype.elem_bytes()
    }

    /// Bytes of the `C` result the response will carry — known the moment
    /// the prelude decodes, which is what lets admission control charge a
    /// request's response cost *before* any result exists.
    pub fn c_bytes(&self) -> usize {
        self.m * self.n * self.dtype.elem_bytes()
    }
}

/// Parse and validate a request prelude against the frame's declared
/// payload length and the server's response-size cap. Every byte of the
/// payload must be accounted for by the declared dims, and the *result*
/// size is bounded here too (`k = 0` lets a tiny payload declare an
/// astronomical `m × n` output).
pub fn decode_request_prelude(
    prelude: &[u8; REQUEST_PRELUDE],
    payload_len: usize,
    max_response_bytes: usize,
) -> Result<RequestDims, String> {
    let [dtype_b, m0, m1, m2, m3, k0, k1, k2, k3, n0, n1, n2, n3] = *prelude;
    let dtype = Dtype::from_u8(dtype_b).ok_or_else(|| format!("unknown dtype {dtype_b}"))?;
    let m = u32::from_le_bytes([m0, m1, m2, m3]) as u64;
    let k = u32::from_le_bytes([k0, k1, k2, k3]) as u64;
    let n = u32::from_le_bytes([n0, n1, n2, n3]) as u64;
    let elems = m
        .checked_mul(k)
        .and_then(|ab| ab.checked_add(k.checked_mul(n)?))
        .ok_or_else(|| format!("dimension product m={m} k={k} n={n} overflows"))?;
    let expected = elems
        .checked_mul(dtype.elem_bytes() as u64)
        .and_then(|b| b.checked_add(REQUEST_PRELUDE as u64))
        .ok_or_else(|| format!("payload size for m={m} k={k} n={n} overflows"))?;
    if expected != payload_len as u64 {
        return Err(format!(
            "declared dims m={m} k={k} n={n} ({dtype:?}) need {expected} payload bytes, got \
             {payload_len}",
        ));
    }
    let response_bytes = m
        .checked_mul(n)
        .and_then(|e| e.checked_mul(dtype.elem_bytes() as u64))
        .and_then(|b| b.checked_add(RESPONSE_PRELUDE as u64))
        .ok_or_else(|| format!("response size for m={m} n={n} overflows"))?;
    if response_bytes > max_response_bytes as u64 {
        return Err(format!(
            "an m={m} n={n} result needs a {response_bytes}-byte response, beyond the \
             {max_response_bytes}-byte cap"
        ));
    }
    Ok(RequestDims { dtype, m: m as usize, k: k as usize, n: n as usize })
}

/// Encode a response prelude (`dtype m n`) — the header-adjacent part of
/// a response the server writes ahead of the raw result bytes.
pub fn encode_response_prelude(dtype: Dtype, m: usize, n: usize) -> [u8; RESPONSE_PRELUDE] {
    let mut out = [0u8; RESPONSE_PRELUDE];
    put(&mut out, 0, &[dtype as u8]);
    put(&mut out, 1, &(m as u32).to_le_bytes());
    put(&mut out, 5, &(n as u32).to_le_bytes());
    out
}

/// Encode an [`FrameKind::Error`] payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(code as u8);
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decode an [`FrameKind::Error`] payload.
pub fn decode_error(payload: &[u8]) -> (ErrorCode, String) {
    let code = payload.first().and_then(|&b| ErrorCode::from_u8(b)).unwrap_or(ErrorCode::Internal);
    let message = String::from_utf8_lossy(payload.get(1..).unwrap_or(&[])).into_owned();
    (code, message)
}

/// Encode a request payload from two operand matrices (row-major on the
/// wire; the column-major transposition happens element-wise here).
pub fn encode_request<T: WireScalar>(a: &Matrix<T>, b: &Matrix<T>) -> Vec<u8> {
    assert_eq!(a.cols(), b.rows(), "A/B inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let elems = m * k + k * n;
    let mut out = Vec::with_capacity(REQUEST_PRELUDE + elems * std::mem::size_of::<T>());
    out.push(T::DTYPE as u8);
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    write_matrix(&mut out, a);
    write_matrix(&mut out, b);
    out
}

/// Encode a response payload from a result matrix.
pub fn encode_response<T: WireScalar>(c: &Matrix<T>) -> Vec<u8> {
    let (m, n) = (c.rows(), c.cols());
    let mut out = Vec::with_capacity(RESPONSE_PRELUDE + m * n * std::mem::size_of::<T>());
    out.push(T::DTYPE as u8);
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    write_matrix(&mut out, c);
    out
}

fn write_matrix<T: WireScalar>(out: &mut Vec<u8>, mat: &Matrix<T>) {
    for i in 0..mat.rows() {
        for j in 0..mat.cols() {
            T::write_le(mat.get(i, j), out);
        }
    }
}

fn read_matrix<T: WireScalar>(bytes: &[u8], rows: usize, cols: usize) -> Matrix<T> {
    let w = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len(), rows * cols * w, "validated by the caller");
    Matrix::from_fn(rows, cols, |i, j| {
        let at = (i * cols + j) * w;
        T::read_le(bytes.get(at..at.wrapping_add(w)).unwrap_or(&[]))
    })
}

/// A decoded request: operand matrices of one of the served dtypes.
pub enum DecodedRequest {
    /// A double-precision problem.
    F64 {
        /// Left operand (`m × k`).
        a: Matrix<f64>,
        /// Right operand (`k × n`).
        b: Matrix<f64>,
    },
    /// A single-precision problem.
    F32 {
        /// Left operand (`m × k`).
        a: Matrix<f32>,
        /// Right operand (`k × n`).
        b: Matrix<f32>,
    },
}

/// Decode and validate a request payload. The payload has already passed
/// the frame-level size cap, so the dimension check here is about internal
/// consistency (declared dims must account for every payload byte), not
/// resource exhaustion.
/// `max_response_bytes` additionally bounds the *output*: the operand
/// payload alone does not limit `m × n` (consider `k = 0` — a 23-byte
/// frame may declare a result of `u32::MAX × u32::MAX`), so the encoded
/// response size is checked here, before the dispatcher allocates
/// anything. Servers pass their frame cap; both directions then honor
/// one bound.
pub fn decode_request(payload: &[u8], max_response_bytes: usize) -> Result<DecodedRequest, String> {
    if payload.len() < REQUEST_PRELUDE {
        return Err(format!(
            "request payload of {} bytes is shorter than the {REQUEST_PRELUDE}-byte prelude",
            payload.len()
        ));
    }
    let Some(prelude) = le_bytes::<REQUEST_PRELUDE>(payload, 0) else {
        return Err("request payload shorter than its prelude".to_string());
    };
    let dims = decode_request_prelude(&prelude, payload.len(), max_response_bytes)?;
    let RequestDims { dtype, m, k, n } = dims;
    // The prelude check guarantees the payload accounts for every operand
    // byte, so these `get`s cannot fail.
    let body = payload.get(REQUEST_PRELUDE..).unwrap_or(&[]);
    let a_bytes = dims.a_bytes();
    let a_body = body.get(..a_bytes).unwrap_or(&[]);
    let b_body = body.get(a_bytes..).unwrap_or(&[]);
    Ok(match dtype {
        Dtype::F64 => {
            DecodedRequest::F64 { a: read_matrix(a_body, m, k), b: read_matrix(b_body, k, n) }
        }
        Dtype::F32 => {
            DecodedRequest::F32 { a: read_matrix(a_body, m, k), b: read_matrix(b_body, k, n) }
        }
    })
}

/// Decode and validate a response payload into the expected dtype.
pub fn decode_response<T: WireScalar>(payload: &[u8]) -> Result<Matrix<T>, String> {
    if payload.len() < RESPONSE_PRELUDE {
        return Err(format!(
            "response payload of {} bytes is shorter than the {RESPONSE_PRELUDE}-byte prelude",
            payload.len()
        ));
    }
    // The length check above covers the whole prelude, so these reads
    // cannot fail; the fallbacks keep the path panic-free.
    let dtype_b = payload.first().copied().unwrap_or(0);
    let dtype = Dtype::from_u8(dtype_b).ok_or_else(|| format!("unknown dtype {dtype_b}"))?;
    if dtype != T::DTYPE {
        return Err(format!("expected {:?} response, got {dtype:?}", T::DTYPE));
    }
    let m = le_u32(payload, 1).unwrap_or(0) as u64;
    let n = le_u32(payload, 5).unwrap_or(0) as u64;
    let expected = m
        .checked_mul(n)
        .and_then(|e| e.checked_mul(dtype.elem_bytes() as u64))
        .and_then(|b| b.checked_add(RESPONSE_PRELUDE as u64))
        .ok_or_else(|| format!("response size for m={m} n={n} overflows"))?;
    if expected != payload.len() as u64 {
        return Err(format!(
            "declared dims m={m} n={n} need {expected} payload bytes, got {}",
            payload.len()
        ));
    }
    Ok(read_matrix(payload.get(RESPONSE_PRELUDE..).unwrap_or(&[]), m as usize, n as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::fill;

    #[test]
    fn request_roundtrip_is_bit_exact_for_both_dtypes() {
        let a = fill::bench_workload_t::<f64>(3, 5, 1);
        let b = fill::bench_workload_t::<f64>(5, 2, 2);
        let payload = encode_request(&a, &b);
        match decode_request(&payload, 1 << 20).unwrap() {
            DecodedRequest::F64 { a: da, b: db } => {
                assert_eq!(da, a);
                assert_eq!(db, b);
            }
            DecodedRequest::F32 { .. } => panic!("wrong dtype"),
        }

        let a = fill::bench_workload_t::<f32>(4, 1, 3);
        let b = fill::bench_workload_t::<f32>(1, 7, 4);
        let payload = encode_request(&a, &b);
        match decode_request(&payload, 1 << 20).unwrap() {
            DecodedRequest::F32 { a: da, b: db } => {
                assert_eq!(da, a);
                assert_eq!(db, b);
            }
            DecodedRequest::F64 { .. } => panic!("wrong dtype"),
        }
    }

    #[test]
    fn response_roundtrip_is_bit_exact() {
        let c = fill::bench_workload_t::<f64>(6, 3, 9);
        let payload = encode_response(&c);
        assert_eq!(decode_response::<f64>(&payload).unwrap(), c);
        assert!(decode_response::<f32>(&payload).is_err(), "dtype mismatch is an error");
    }

    #[test]
    fn frame_roundtrip_through_a_byte_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Ping, b"hello").unwrap();
        write_frame(&mut wire, FrameKind::Shutdown, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        let f1 = read_frame(&mut cursor, 1024).unwrap();
        assert_eq!(f1.kind, FrameKind::Ping);
        assert_eq!(f1.payload, b"hello");
        let f2 = read_frame(&mut cursor, 1024).unwrap();
        assert_eq!(f2.kind, FrameKind::Shutdown);
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn read_frame_rejects_bad_magic_version_kind_and_oversize() {
        let mut bad_magic = Vec::new();
        write_frame(&mut bad_magic, FrameKind::Ping, b"").unwrap();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bad_magic), 1024),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = Vec::new();
        write_frame(&mut bad_version, FrameKind::Ping, b"").unwrap();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bad_version), 1024),
            Err(FrameError::BadVersion(9))
        ));

        let mut bad_kind = Vec::new();
        write_frame(&mut bad_kind, FrameKind::Ping, b"").unwrap();
        bad_kind[5] = 200;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bad_kind), 1024),
            Err(FrameError::BadKind(200))
        ));

        let mut oversized = Vec::new();
        write_frame(&mut oversized, FrameKind::Request, &[0u8; 64]).unwrap();
        assert!(matches!(
            read_frame(&mut io::Cursor::new(oversized), 16),
            Err(FrameError::Oversized { declared: 64, cap: 16 })
        ));
    }

    #[test]
    fn decode_request_rejects_malformed_payloads() {
        // Too short for the prelude.
        assert!(decode_request(&[1, 0, 0], 1 << 20).is_err());
        // Unknown dtype.
        let mut p = vec![7u8];
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&[0u8; 16]);
        assert!(decode_request(&p, 1 << 20).is_err());
        // Dims that do not match the payload length.
        let a = fill::bench_workload_t::<f64>(2, 2, 1);
        let b = fill::bench_workload_t::<f64>(2, 2, 2);
        let mut payload = encode_request(&a, &b);
        payload.truncate(payload.len() - 8);
        assert!(decode_request(&payload, 1 << 20).is_err());
        // Dims whose element count overflows u64 arithmetic.
        let mut huge = vec![1u8];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&huge, 1 << 20).is_err());
        // Degenerate dims are fine (the engine supports empty problems).
        let payload = encode_request(&Matrix::<f64>::zeros(0, 3), &Matrix::<f64>::zeros(3, 0));
        assert!(decode_request(&payload, 1 << 20).is_ok());
        // The k=0 hostile frame: a tiny payload whose operands are empty
        // but whose declared *result* is astronomically large. The
        // response-side cap must refuse it before anything allocates.
        let mut outer = vec![1u8];
        outer.extend_from_slice(&u32::MAX.to_le_bytes()); // m
        outer.extend_from_slice(&0u32.to_le_bytes()); // k
        outer.extend_from_slice(&u32::MAX.to_le_bytes()); // n
        let err = match decode_request(&outer, 1 << 20) {
            Err(e) => e,
            Ok(_) => panic!("k=0 frame with a huge declared result must be refused"),
        };
        // Either refusal is acceptable: u64 overflow of the response
        // size, or the explicit response cap.
        assert!(err.contains("response"), "{err}");
        // Same shape at modest-but-over-cap result size.
        let mut outer = vec![1u8];
        outer.extend_from_slice(&100_000u32.to_le_bytes());
        outer.extend_from_slice(&0u32.to_le_bytes());
        outer.extend_from_slice(&100_000u32.to_le_bytes());
        assert!(decode_request(&outer, 1 << 20).is_err());
        // An in-cap empty-k problem still decodes.
        let payload = encode_request(&Matrix::<f64>::zeros(4, 0), &Matrix::<f64>::zeros(0, 5));
        assert!(decode_request(&payload, 1 << 20).is_ok());
    }

    #[test]
    fn truncated_and_mutated_frames_never_panic() {
        let a = fill::bench_workload_t::<f64>(3, 4, 5);
        let b = fill::bench_workload_t::<f64>(4, 2, 6);
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, &encode_request(&a, &b)).unwrap();
        for cut in 0..wire.len() {
            let _ = read_frame(&mut io::Cursor::new(&wire[..cut]), 1 << 20);
        }
        let mut state: u64 = 0xDEAD_BEEF_CAFE_F00D;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut mutated = wire.clone();
            let pos = state as usize % mutated.len();
            mutated[pos] = (state >> 32) as u8;
            if let Ok(frame) = read_frame(&mut io::Cursor::new(mutated), 1 << 20) {
                let _ = decode_request(&frame.payload, 1 << 20);
            }
        }
    }
}
