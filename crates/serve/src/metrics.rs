//! Live serving metrics: lock-free counters, batch-occupancy tracking,
//! and a bounded service-latency window for p50/p99.
//!
//! One [`Metrics`] value is shared by every connection thread and both
//! dtype dispatchers. The counters are plain relaxed atomics (a stats
//! snapshot is advisory, not a synchronization point); the latency window
//! is a mutex-guarded ring of the most recent samples, so percentiles
//! reflect current service behavior rather than the whole process
//! lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent service-latency samples the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Shared serving counters. All counts are cumulative since server start
/// except the latency percentiles, which cover the last
/// [`LATENCY_WINDOW`] responses.
#[derive(Default)]
pub struct Metrics {
    /// Requests admitted into a dispatch queue.
    pub requests: AtomicU64,
    /// Result frames sent.
    pub responses: AtomicU64,
    /// Requests refused with [`crate::protocol::ErrorCode::Busy`] by
    /// admission control.
    pub rejects_busy: AtomicU64,
    /// Error frames sent for malformed or oversized input.
    pub rejects_malformed: AtomicU64,
    /// Ping frames answered.
    pub pings: AtomicU64,
    /// `multiply_batch` dispatches performed (batches formed).
    pub batches: AtomicU64,
    /// Requests executed across all batches.
    pub batched_items: AtomicU64,
    /// Largest single-batch occupancy observed.
    pub max_occupancy: AtomicU64,
    /// Requests admitted whose response has not been queued yet (gauge).
    pub inflight: AtomicU64,
    /// Largest in-flight count observed on any single connection — the
    /// pipelining-depth gauge (1 for strict request/response v1 traffic).
    pub inflight_per_conn_max: AtomicU64,
    /// Connections currently open (gauge).
    pub connections: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    latencies: Mutex<LatencyRing>,
    queue_waits: Mutex<LatencyRing>,
    services: Mutex<LatencyRing>,
}

#[derive(Default)]
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, secs: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(secs);
        } else {
            self.samples[self.next] = secs;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }
}

/// Service-latency summary over the recent window, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples currently in the window.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

/// Point-in-time copy of every counter plus derived values.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::responses`].
    pub responses: u64,
    /// See [`Metrics::rejects_busy`].
    pub rejects_busy: u64,
    /// See [`Metrics::rejects_malformed`].
    pub rejects_malformed: u64,
    /// See [`Metrics::pings`].
    pub pings: u64,
    /// See [`Metrics::batches`].
    pub batches: u64,
    /// See [`Metrics::batched_items`].
    pub batched_items: u64,
    /// See [`Metrics::max_occupancy`].
    pub max_occupancy: u64,
    /// `batched_items / batches` — how many requests the average
    /// `multiply_batch` call coalesced. `0` before the first batch.
    pub mean_occupancy: f64,
    /// See [`Metrics::inflight`].
    pub inflight: u64,
    /// See [`Metrics::inflight_per_conn_max`].
    pub inflight_per_conn_max: u64,
    /// See [`Metrics::connections`].
    pub connections: u64,
    /// See [`Metrics::connections_total`].
    pub connections_total: u64,
    /// Service latency (admission to response hand-off) over the recent
    /// window.
    pub latency: LatencyStats,
    /// Queue wait (admission to batch execution start) over the recent
    /// window — the half of latency the dispatcher policy owns.
    pub queue_wait: LatencyStats,
    /// Service time (batch execution start to response hand-off) over the
    /// recent window — the half the engine owns.
    pub service: LatencyStats,
}

impl Metrics {
    /// Record one formed batch of `occupancy` requests.
    pub fn record_batch(&self, occupancy: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_items.fetch_add(occupancy as u64, Ordering::Relaxed);
        self.max_occupancy.fetch_max(occupancy as u64, Ordering::Relaxed);
    }

    /// Record one request's service latency (admission → response ready).
    pub fn record_latency(&self, elapsed: Duration) {
        self.latencies.lock().expect("latency ring poisoned").push(elapsed.as_secs_f64());
    }

    /// Record one request's queue wait (admission → batch start).
    pub fn record_queue_wait(&self, elapsed: Duration) {
        self.queue_waits.lock().expect("queue-wait ring poisoned").push(elapsed.as_secs_f64());
    }

    /// Record one request's pure service time (batch start → done).
    pub fn record_service(&self, elapsed: Duration) {
        self.services.lock().expect("service ring poisoned").push(elapsed.as_secs_f64());
    }

    /// Record a connection's in-flight depth after an admission — keeps
    /// the pipelining-depth high-water mark.
    pub fn record_conn_inflight(&self, depth: u64) {
        self.inflight_per_conn_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Snapshot every counter and compute derived values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_items = self.batched_items.load(Ordering::Relaxed);
        let latency = {
            let ring = self.latencies.lock().expect("latency ring poisoned");
            summarize(&ring.samples)
        };
        let queue_wait = {
            let ring = self.queue_waits.lock().expect("queue-wait ring poisoned");
            summarize(&ring.samples)
        };
        let service = {
            let ring = self.services.lock().expect("service ring poisoned");
            summarize(&ring.samples)
        };
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            rejects_busy: self.rejects_busy.load(Ordering::Relaxed),
            rejects_malformed: self.rejects_malformed.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            batches,
            batched_items,
            max_occupancy: self.max_occupancy.load(Ordering::Relaxed),
            mean_occupancy: if batches > 0 { batched_items as f64 / batches as f64 } else { 0.0 },
            inflight: self.inflight.load(Ordering::Relaxed),
            inflight_per_conn_max: self.inflight_per_conn_max.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            latency,
            queue_wait,
            service,
        }
    }
}

/// Summarize latency samples (seconds in, milliseconds out). Percentiles
/// use the nearest-rank method over a sorted copy.
pub fn summarize(samples_secs: &[f64]) -> LatencyStats {
    if samples_secs.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted: Vec<f64> = samples_secs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = |p: f64| -> f64 {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx] * 1e3
    };
    LatencyStats {
        count: sorted.len(),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64 * 1e3,
        p50_ms: rank(0.50),
        p99_ms: rank(0.99),
    }
}

impl MetricsSnapshot {
    /// Render the plaintext stats body (one `name value` pair per line,
    /// `fmm_serve_` prefixed) the [`crate::protocol::FrameKind::StatsReply`]
    /// frame carries. Engine counters are appended by the server, which
    /// owns the engines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, value: String| {
            out.push_str("fmm_serve_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        line("requests_total", self.requests.to_string());
        line("responses_total", self.responses.to_string());
        line("rejects_busy_total", self.rejects_busy.to_string());
        line("rejects_malformed_total", self.rejects_malformed.to_string());
        line("pings_total", self.pings.to_string());
        line("batches_total", self.batches.to_string());
        line("batched_items_total", self.batched_items.to_string());
        line("batch_occupancy_max", self.max_occupancy.to_string());
        line("batch_occupancy_mean", format!("{:.3}", self.mean_occupancy));
        line("latency_window_count", self.latency.count.to_string());
        line("latency_mean_ms", format!("{:.3}", self.latency.mean_ms));
        line("latency_p50_ms", format!("{:.3}", self.latency.p50_ms));
        line("latency_p99_ms", format!("{:.3}", self.latency.p99_ms));
        line("queue_wait_mean_ms", format!("{:.3}", self.queue_wait.mean_ms));
        line("queue_wait_p50_ms", format!("{:.3}", self.queue_wait.p50_ms));
        line("queue_wait_p99_ms", format!("{:.3}", self.queue_wait.p99_ms));
        line("service_mean_ms", format!("{:.3}", self.service.mean_ms));
        line("service_p50_ms", format!("{:.3}", self.service.p50_ms));
        line("service_p99_ms", format!("{:.3}", self.service.p99_ms));
        line("inflight_current", self.inflight.to_string());
        line("inflight_per_conn_max", self.inflight_per_conn_max.to_string());
        line("connections_current", self.connections.to_string());
        line("connections_total", self.connections_total.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_latency_aggregate() {
        let m = Metrics::default();
        m.record_batch(1);
        m.record_batch(3);
        m.record_latency(Duration::from_millis(2));
        m.record_latency(Duration::from_millis(4));
        let snap = m.snapshot();
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batched_items, 4);
        assert_eq!(snap.max_occupancy, 3);
        assert!((snap.mean_occupancy - 2.0).abs() < 1e-12);
        assert_eq!(snap.latency.count, 2);
        assert!(snap.latency.p99_ms >= snap.latency.p50_ms);
        assert!(snap.latency.mean_ms > 2.0 && snap.latency.mean_ms < 4.0);
    }

    #[test]
    fn summarize_uses_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 1e3).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.0).abs() < 1e-9);
        assert!((s.p99_ms - 99.0).abs() < 1e-9);
        assert_eq!(summarize(&[]), LatencyStats::default());
    }

    #[test]
    fn render_lists_every_counter() {
        let m = Metrics::default();
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.record_batch(2);
        let text = m.snapshot().render();
        for key in [
            "fmm_serve_requests_total 5",
            "fmm_serve_batches_total 1",
            "fmm_serve_batch_occupancy_max 2",
            "fmm_serve_latency_p99_ms",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = Metrics::default();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.record_latency(Duration::from_micros(i as u64));
        }
        assert_eq!(m.snapshot().latency.count, LATENCY_WINDOW);
    }
}
