//! Live serving metrics, backed by the `fmm-obs` registry.
//!
//! One [`Metrics`] value is shared by every connection thread and both
//! dtype dispatchers. Counters and gauges are relaxed-atomic handles
//! into a per-server [`fmm_obs::Registry`]; the three latency series
//! (total latency, queue wait, service time) are lock-free log-bucketed
//! [`fmm_obs::Histogram`]s. Unlike the mutex-guarded 4096-sample ring
//! this replaces, percentiles cover **every** sample since server start
//! (and the hot path takes no lock at all — the poisoned-ring `.expect`
//! calls died with the rings).
//!
//! The plaintext stats body keeps its historical byte format, including
//! the `latency_window_count` key — the "window" is now the whole
//! process lifetime.

use crate::protocol::ErrorCode;
use fmm_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Shared serving instruments. All counts are cumulative since server
/// start, latency percentiles included.
pub struct Metrics {
    registry: Arc<Registry>,
    /// Requests admitted into a dispatch queue.
    pub requests: Arc<Counter>,
    /// Result frames sent.
    pub responses: Arc<Counter>,
    /// Requests refused with [`crate::protocol::ErrorCode::Busy`] by
    /// admission control.
    pub rejects_busy: Arc<Counter>,
    /// Error frames sent for malformed or oversized input.
    pub rejects_malformed: Arc<Counter>,
    /// Ping frames answered.
    pub pings: Arc<Counter>,
    /// `multiply_batch` dispatches performed (batches formed).
    pub batches: Arc<Counter>,
    /// Requests executed across all batches.
    pub batched_items: Arc<Counter>,
    /// Largest single-batch occupancy observed.
    pub max_occupancy: Arc<Counter>,
    /// Requests admitted whose response has not been queued yet (gauge).
    pub inflight: Arc<Gauge>,
    /// Largest in-flight count observed on any single connection — the
    /// pipelining-depth gauge (1 for strict request/response v1 traffic).
    pub inflight_per_conn_max: Arc<Counter>,
    /// Connections currently open (gauge).
    pub connections: Arc<Gauge>,
    /// Connections accepted since start.
    pub connections_total: Arc<Counter>,
    /// Error frames sent, broken out per [`ErrorCode`] kind (indexed by
    /// `code as u8 - 1`) so exports can distinguish backpressure
    /// (`busy`, `shutting_down`) from protocol abuse (`malformed`,
    /// `unsupported_version`, `oversized`) and server faults
    /// (`internal`). The legacy aggregate counters above keep counting.
    errors_by_kind: [Arc<Counter>; 6],
    latency: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    service: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        Metrics {
            requests: registry.counter("fmm_serve_requests_total"),
            responses: registry.counter("fmm_serve_responses_total"),
            rejects_busy: registry.counter("fmm_serve_rejects_busy_total"),
            rejects_malformed: registry.counter("fmm_serve_rejects_malformed_total"),
            pings: registry.counter("fmm_serve_pings_total"),
            batches: registry.counter("fmm_serve_batches_total"),
            batched_items: registry.counter("fmm_serve_batched_items_total"),
            max_occupancy: registry.counter("fmm_serve_batch_occupancy_max"),
            inflight: registry.gauge("fmm_serve_inflight"),
            inflight_per_conn_max: registry.counter("fmm_serve_inflight_per_conn_max"),
            connections: registry.gauge("fmm_serve_connections"),
            connections_total: registry.counter("fmm_serve_connections_total"),
            errors_by_kind: [
                registry.counter("fmm_serve_errors_total_malformed"),
                registry.counter("fmm_serve_errors_total_unsupported_version"),
                registry.counter("fmm_serve_errors_total_oversized"),
                registry.counter("fmm_serve_errors_total_busy"),
                registry.counter("fmm_serve_errors_total_internal"),
                registry.counter("fmm_serve_errors_total_shutting_down"),
            ],
            latency: registry.histogram("fmm_serve_latency_nanos"),
            queue_wait: registry.histogram("fmm_serve_queue_wait_nanos"),
            service: registry.histogram("fmm_serve_service_nanos"),
            registry,
        }
    }
}

/// Latency summary in milliseconds, derived from a histogram covering
/// every sample since server start.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples recorded (lifetime).
    pub count: usize,
    /// Arithmetic mean (exact — sums are kept outside the buckets).
    pub mean_ms: f64,
    /// Median (bucket upper bound, within +12.5% of exact).
    pub p50_ms: f64,
    /// 99th percentile (same bound).
    pub p99_ms: f64,
}

impl LatencyStats {
    fn from_hist(h: &Histogram) -> Self {
        let snap = h.snapshot();
        if snap.count == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            count: snap.count as usize,
            mean_ms: snap.mean() / 1e6,
            p50_ms: snap.p50() as f64 / 1e6,
            p99_ms: snap.p99() as f64 / 1e6,
        }
    }
}

/// Point-in-time copy of every counter plus derived values.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::responses`].
    pub responses: u64,
    /// See [`Metrics::rejects_busy`].
    pub rejects_busy: u64,
    /// See [`Metrics::rejects_malformed`].
    pub rejects_malformed: u64,
    /// See [`Metrics::pings`].
    pub pings: u64,
    /// See [`Metrics::batches`].
    pub batches: u64,
    /// See [`Metrics::batched_items`].
    pub batched_items: u64,
    /// See [`Metrics::max_occupancy`].
    pub max_occupancy: u64,
    /// `batched_items / batches` — how many requests the average
    /// `multiply_batch` call coalesced. `0` before the first batch.
    pub mean_occupancy: f64,
    /// See [`Metrics::inflight`].
    pub inflight: u64,
    /// See [`Metrics::inflight_per_conn_max`].
    pub inflight_per_conn_max: u64,
    /// See [`Metrics::connections`].
    pub connections: u64,
    /// See [`Metrics::connections_total`].
    pub connections_total: u64,
    /// Service latency (admission to response hand-off), lifetime.
    pub latency: LatencyStats,
    /// Queue wait (admission to batch execution start), lifetime — the
    /// half of latency the dispatcher policy owns.
    pub queue_wait: LatencyStats,
    /// Service time (batch execution start to response hand-off),
    /// lifetime — the half the engine owns.
    pub service: LatencyStats,
}

impl Metrics {
    /// The registry holding every serve-side instrument; the `StatsJson`
    /// frame and the Prometheus exposition render from it.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record one formed batch of `occupancy` requests.
    pub fn record_batch(&self, occupancy: usize) {
        self.batches.inc();
        self.batched_items.add(occupancy as u64);
        self.max_occupancy.record_max(occupancy as u64);
    }

    /// Record one request's service latency (admission → response ready).
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency.record_duration(elapsed);
    }

    /// Record one request's queue wait (admission → batch start).
    pub fn record_queue_wait(&self, elapsed: Duration) {
        self.queue_wait.record_duration(elapsed);
    }

    /// Record one request's pure service time (batch start → done).
    pub fn record_service(&self, elapsed: Duration) {
        self.service.record_duration(elapsed);
    }

    /// Record a connection's in-flight depth after an admission — keeps
    /// the pipelining-depth high-water mark.
    pub fn record_conn_inflight(&self, depth: u64) {
        self.inflight_per_conn_max.record_max(depth);
    }

    /// Count one error frame sent with `code` into its per-kind counter
    /// (`fmm_serve_errors_total_<kind>`). Registry-export only — the
    /// frozen plaintext stats body is unchanged.
    pub fn record_error(&self, code: ErrorCode) {
        let idx = (code as u8 as usize) - 1;
        if let Some(counter) = self.errors_by_kind.get(idx) {
            counter.inc();
        }
    }

    /// Snapshot every counter and compute derived values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.get();
        let batched_items = self.batched_items.get();
        MetricsSnapshot {
            requests: self.requests.get(),
            responses: self.responses.get(),
            rejects_busy: self.rejects_busy.get(),
            rejects_malformed: self.rejects_malformed.get(),
            pings: self.pings.get(),
            batches,
            batched_items,
            max_occupancy: self.max_occupancy.get(),
            mean_occupancy: if batches > 0 { batched_items as f64 / batches as f64 } else { 0.0 },
            inflight: self.inflight.get().max(0) as u64,
            inflight_per_conn_max: self.inflight_per_conn_max.get(),
            connections: self.connections.get().max(0) as u64,
            connections_total: self.connections_total.get(),
            latency: LatencyStats::from_hist(&self.latency),
            queue_wait: LatencyStats::from_hist(&self.queue_wait),
            service: LatencyStats::from_hist(&self.service),
        }
    }
}

/// Summarize latency samples (seconds in, milliseconds out). Percentiles
/// use the nearest-rank method over a sorted copy. This is the exact
/// client-side summarizer `fmm_serve bench` applies to its own samples
/// (and the oracle the histogram percentiles are tested against).
pub fn summarize(samples_secs: &[f64]) -> LatencyStats {
    if samples_secs.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted: Vec<f64> = samples_secs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = |p: f64| -> f64 {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx] * 1e3
    };
    LatencyStats {
        count: sorted.len(),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64 * 1e3,
        p50_ms: rank(0.50),
        p99_ms: rank(0.99),
    }
}

impl MetricsSnapshot {
    /// Render the plaintext stats body (one `name value` pair per line,
    /// `fmm_serve_` prefixed) the [`crate::protocol::FrameKind::StatsReply`]
    /// frame carries. The key set and format are byte-stable across
    /// server versions (`latency_window_count` now counts the lifetime).
    /// Engine counters are appended by the server, which owns the engines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, value: String| {
            out.push_str("fmm_serve_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        line("requests_total", self.requests.to_string());
        line("responses_total", self.responses.to_string());
        line("rejects_busy_total", self.rejects_busy.to_string());
        line("rejects_malformed_total", self.rejects_malformed.to_string());
        line("pings_total", self.pings.to_string());
        line("batches_total", self.batches.to_string());
        line("batched_items_total", self.batched_items.to_string());
        line("batch_occupancy_max", self.max_occupancy.to_string());
        line("batch_occupancy_mean", format!("{:.3}", self.mean_occupancy));
        line("latency_window_count", self.latency.count.to_string());
        line("latency_mean_ms", format!("{:.3}", self.latency.mean_ms));
        line("latency_p50_ms", format!("{:.3}", self.latency.p50_ms));
        line("latency_p99_ms", format!("{:.3}", self.latency.p99_ms));
        line("queue_wait_mean_ms", format!("{:.3}", self.queue_wait.mean_ms));
        line("queue_wait_p50_ms", format!("{:.3}", self.queue_wait.p50_ms));
        line("queue_wait_p99_ms", format!("{:.3}", self.queue_wait.p99_ms));
        line("service_mean_ms", format!("{:.3}", self.service.mean_ms));
        line("service_p50_ms", format!("{:.3}", self.service.p50_ms));
        line("service_p99_ms", format!("{:.3}", self.service.p99_ms));
        line("inflight_current", self.inflight.to_string());
        line("inflight_per_conn_max", self.inflight_per_conn_max.to_string());
        line("connections_current", self.connections.to_string());
        line("connections_total", self.connections_total.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_latency_aggregate() {
        let m = Metrics::default();
        m.record_batch(1);
        m.record_batch(3);
        m.record_latency(Duration::from_millis(2));
        m.record_latency(Duration::from_millis(4));
        let snap = m.snapshot();
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batched_items, 4);
        assert_eq!(snap.max_occupancy, 3);
        assert!((snap.mean_occupancy - 2.0).abs() < 1e-12);
        assert_eq!(snap.latency.count, 2);
        assert!(snap.latency.p99_ms >= snap.latency.p50_ms);
        assert!(snap.latency.mean_ms > 2.0 && snap.latency.mean_ms < 4.0);
    }

    #[test]
    fn summarize_uses_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 1e3).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.0).abs() < 1e-9);
        assert!((s.p99_ms - 99.0).abs() < 1e-9);
        assert_eq!(summarize(&[]), LatencyStats::default());
    }

    #[test]
    fn render_lists_every_counter() {
        let m = Metrics::default();
        m.requests.add(5);
        m.record_batch(2);
        let text = m.snapshot().render();
        for key in [
            "fmm_serve_requests_total 5",
            "fmm_serve_batches_total 1",
            "fmm_serve_batch_occupancy_max 2",
            "fmm_serve_latency_p99_ms",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
    }

    #[test]
    fn percentiles_cover_all_samples_not_a_window() {
        // The old ring forgot everything but the last 4096 samples; the
        // histogram must keep counting past that.
        let m = Metrics::default();
        for i in 0..5000u64 {
            m.record_latency(Duration::from_micros(i));
        }
        assert_eq!(m.snapshot().latency.count, 5000);
    }

    #[test]
    fn histogram_percentiles_match_exact_sort_oracle() {
        // The same samples through the histogram and through the exact
        // nearest-rank summarizer the bench path uses: the histogram may
        // only err upward, by at most one sub-bucket (12.5%).
        let m = Metrics::default();
        let mut secs = Vec::new();
        let mut state = 0x243F6A8885A308D3u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let micros = 50 + state % 200_000; // 50µs .. 200ms
            m.record_latency(Duration::from_micros(micros));
            m.record_queue_wait(Duration::from_micros(micros / 4));
            m.record_service(Duration::from_micros(micros / 2));
            secs.push(micros as f64 / 1e6);
        }
        let exact = summarize(&secs);
        let snap = m.snapshot();
        for (h, x, label) in
            [(snap.latency.p50_ms, exact.p50_ms, "p50"), (snap.latency.p99_ms, exact.p99_ms, "p99")]
        {
            assert!(h >= x * 0.999 && h <= x * 1.125 + 1e-3, "{label}: hist={h} exact={x}");
        }
        assert!((snap.latency.mean_ms - exact.mean_ms).abs() / exact.mean_ms < 1e-3);
        assert_eq!(snap.queue_wait.count, 20_000);
        assert_eq!(snap.service.count, 20_000);
    }

    #[test]
    fn per_kind_error_counters_register_and_count() {
        let m = Metrics::default();
        m.record_error(ErrorCode::Busy);
        m.record_error(ErrorCode::Busy);
        m.record_error(ErrorCode::Malformed);
        m.record_error(ErrorCode::ShuttingDown);
        let snap = m.registry().snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get("fmm_serve_errors_total_busy"), 2);
        assert_eq!(get("fmm_serve_errors_total_malformed"), 1);
        assert_eq!(get("fmm_serve_errors_total_shutting_down"), 1);
        assert_eq!(get("fmm_serve_errors_total_unsupported_version"), 0);
        assert_eq!(get("fmm_serve_errors_total_oversized"), 0);
        assert_eq!(get("fmm_serve_errors_total_internal"), 0);
        // The frozen plaintext body must not grow new keys.
        assert!(!m.snapshot().render().contains("errors_total"));
    }

    #[test]
    fn registry_exposes_serve_instruments() {
        let m = Metrics::default();
        m.requests.inc();
        m.record_latency(Duration::from_millis(1));
        let snap = m.registry().snapshot();
        let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert!(counters.contains(&"fmm_serve_requests_total"));
        let hists: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert!(hists.contains(&"fmm_serve_latency_nanos"));
        assert!(hists.contains(&"fmm_serve_queue_wait_nanos"));
        assert!(hists.contains(&"fmm_serve_service_nanos"));
        let text = m.registry().render_prometheus();
        assert!(text.contains("fmm_serve_latency_nanos{quantile=\"0.99\"}"));
    }
}
