//! The std-only readiness poller under the serving event loops.
//!
//! Three backends behind one small API, chosen at compile time:
//!
//! * **Linux**: `epoll(7)` through thin `extern "C"` declarations (std
//!   already links libc, so no crate dependency is added) — O(ready)
//!   wakeups, the production path;
//! * **other Unix**: portable `poll(2)`, rebuilding the descriptor array
//!   per wait — O(registered), fine for the connection counts a
//!   single machine serves;
//! * **elsewhere**: a sleep-scan fallback that reports every registered
//!   descriptor ready each tick; correctness comes from the sockets
//!   being nonblocking (`WouldBlock` is simply retried next tick).
//!
//! All backends are level-triggered: a readiness bit stays set until the
//! condition drains, so event-loop code never needs to worry about missed
//! edges. Cross-thread wakeups use a self-pipe ([`Waker`]) registered
//! like any other descriptor under [`WAKE_TOKEN`].

use std::collections::BTreeMap;
use std::io;
use std::time::Duration;

/// The token [`Waker`] readiness is reported under.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable.
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { read: true, write: true };
    /// Neither — parked (still registered, reported only on hangup by
    /// backends that can't mask it).
    pub const NONE: Interest = Interest { read: false, write: false };
}

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration's token.
    pub token: u64,
    /// Readable (or hung up — a read will observe EOF/error promptly).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Raw descriptor type registrations use.
#[cfg(unix)]
pub type SysFd = std::os::fd::RawFd;
/// Raw descriptor type registrations use (unused by the fallback
/// backend beyond identity).
#[cfg(not(unix))]
pub type SysFd = u64;

#[cfg(target_os = "linux")]
mod sys {
    //! Thin epoll + pipe FFI. Constants are the Linux ABI values shared
    //! by x86-64, AArch64, and RISC-V (the asm-generic UAPI numbers).
    #![allow(non_camel_case_types)]

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const O_NONBLOCK: i32 = 0x800;
    pub const O_CLOEXEC: i32 = 0x80000;

    /// `struct epoll_event`. The kernel packs this struct **only on
    /// x86/x86-64** (UAPI `EPOLL_PACKED` is defined solely there, for
    /// 32/64-bit compat); every other architecture uses natural C layout
    /// — 16 bytes with `data` at offset 8 on aarch64/riscv64. Packing it
    /// unconditionally would make `epoll_wait` scribble past the event
    /// array on those targets.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    /// Layout guard: 12 bytes where the kernel packs, 16 elsewhere.
    const _: () = assert!(
        std::mem::size_of::<epoll_event>()
            == if cfg!(any(target_arch = "x86", target_arch = "x86_64")) { 12 } else { 16 }
    );

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(
            epfd: i32,
            events: *mut epoll_event,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable poll(2) + pipe FFI for non-Linux Unix.
    #![allow(non_camel_case_types)]

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: u64, timeout_ms: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub const F_SETFL: i32 = 4;
    pub const O_NONBLOCK: i32 = 0x4; // BSD/macOS value; only used off-Linux
}

/// Level-triggered readiness poller over registered descriptors.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
    /// Registered interests; epoll keeps its own copy kernel-side, the
    /// poll(2)/fallback backends rebuild their wait set from this.
    registered: BTreeMap<u64, (SysFd, Interest)>,
}

impl Poller {
    /// A new empty poller.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd, registered: BTreeMap::new() })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Self { registered: BTreeMap::new() })
        }
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: SysFd, token: u64, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut ev = sys::epoll_event { events: epoll_bits(interest), data: token };
            // SAFETY: `ev` outlives the call; epfd/fd are owned handles.
            if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        self.registered.insert(token, (fd, interest));
        Ok(())
    }

    /// Change the interest of an existing registration.
    pub fn modify(&mut self, token: u64, interest: Interest) -> io::Result<()> {
        let Some(&(fd, current)) = self.registered.get(&token) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "token not registered"));
        };
        if current == interest {
            return Ok(());
        }
        #[cfg(target_os = "linux")]
        {
            let mut ev = sys::epoll_event { events: epoll_bits(interest), data: token };
            // SAFETY: as in register.
            if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        self.registered.insert(token, (fd, interest));
        Ok(())
    }

    /// Remove a registration (the caller still owns and closes the fd).
    pub fn deregister(&mut self, token: u64) -> io::Result<()> {
        if let Some((fd, _)) = self.registered.remove(&token) {
            #[cfg(target_os = "linux")]
            {
                let mut ev = sys::epoll_event { events: 0, data: 0 };
                // SAFETY: as in register; DEL ignores the event payload.
                if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            #[cfg(not(target_os = "linux"))]
            let _ = fd;
        }
        Ok(())
    }

    /// Block until at least one registration is ready or `timeout`
    /// elapses; ready events are appended to `out` (which is cleared
    /// first). Returns the number of events delivered.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout still sleeps instead of spinning.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as i32,
        };
        #[cfg(target_os = "linux")]
        {
            let mut events = [sys::epoll_event { events: 0, data: 0 }; 128];
            // SAFETY: `events` is a valid out-array of the stated length.
            let n = unsafe {
                sys::epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in &events[..n as usize] {
                let bits = ev.events;
                let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                out.push(Event {
                    token: ev.data,
                    // Hangups surface as readable: the next read returns
                    // EOF/error and the connection tears down cleanly.
                    readable: bits & sys::EPOLLIN != 0 || hangup,
                    writable: bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(out.len())
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            let mut fds: Vec<sys::pollfd> = Vec::with_capacity(self.registered.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(self.registered.len());
            for (&token, &(fd, interest)) in &self.registered {
                let mut events = 0i16;
                if interest.read {
                    events |= sys::POLLIN;
                }
                if interest.write {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::pollfd { fd, events, revents: 0 });
                tokens.push(token);
            }
            // SAFETY: `fds` is a valid array of the stated length.
            let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                let hangup = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                if pfd.revents & sys::POLLIN != 0 || pfd.revents & sys::POLLOUT != 0 || hangup {
                    out.push(Event {
                        token,
                        readable: pfd.revents & sys::POLLIN != 0 || hangup,
                        writable: pfd.revents & sys::POLLOUT != 0,
                    });
                }
            }
            Ok(out.len())
        }
        #[cfg(not(unix))]
        {
            // Sleep-scan fallback: report everything with interest ready;
            // nonblocking I/O turns false positives into WouldBlock.
            std::thread::sleep(Duration::from_millis(timeout_ms.clamp(1, 10) as u64));
            for (&token, &(_, interest)) in &self.registered {
                if interest.read || interest.write {
                    out.push(Event { token, readable: interest.read, writable: interest.write });
                }
            }
            Ok(out.len())
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        // SAFETY: epfd is an owned descriptor, closed exactly once here.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_bits(interest: Interest) -> u32 {
    // RDHUP rides with read interest only: a read-paused connection
    // (v1 one-at-a-time wait, backlog flow control) cannot act on a
    // peer's half-close, and the level-triggered hangup would re-fire
    // every wait with no progress possible — a busy spin until read
    // interest returns. Masking it is safe: the EOF is still sitting in
    // the socket and is observed the moment reads resume. Full hangups
    // (EPOLLHUP/EPOLLERR) are unmaskable by design, and those tear the
    // connection down through the write-error path instead.
    let mut bits = 0;
    if interest.read {
        bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if interest.write {
        bits |= sys::EPOLLOUT;
    }
    bits
}

/// A cross-thread wakeup handle: a nonblocking self-pipe whose read end
/// is registered in a [`Poller`] under [`WAKE_TOKEN`]. `wake()` is safe
/// to call from any thread (dispatchers, other loops, the shutdown path).
pub struct Waker {
    #[cfg(unix)]
    read_fd: i32,
    #[cfg(unix)]
    write_fd: i32,
    #[cfg(not(unix))]
    _nothing: (),
}

// SAFETY: the pipe fds are plain integers; writes from multiple threads
// are what pipes are for.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create the pipe and register its read end with the poller.
    pub fn new(poller: &mut Poller) -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid 2-element out-array.
            if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) } < 0 {
                return Err(io::Error::last_os_error());
            }
            poller.register(fds[0], WAKE_TOKEN, Interest::READ)?;
            Ok(Self { read_fd: fds[0], write_fd: fds[1] })
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid 2-element out-array.
            if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain fcntl on owned fds.
            unsafe {
                sys::fcntl(fds[0], sys::F_SETFL, sys::O_NONBLOCK);
                sys::fcntl(fds[1], sys::F_SETFL, sys::O_NONBLOCK);
            }
            poller.register(fds[0], WAKE_TOKEN, Interest::READ)?;
            Ok(Self { read_fd: fds[0], write_fd: fds[1] })
        }
        #[cfg(not(unix))]
        {
            let _ = poller;
            Ok(Self { _nothing: () })
        }
    }

    /// Wake the owning poller (idempotent; a full pipe already wakes).
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let byte = 1u8;
            // SAFETY: valid 1-byte buffer; EAGAIN on a full pipe is fine.
            unsafe {
                sys::write(self.write_fd, &byte, 1);
            }
        }
    }

    /// Drain pending wakeup bytes after a [`WAKE_TOKEN`] readiness event.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            // SAFETY: valid buffer; loop ends on EAGAIN (nonblocking).
            while unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: owned descriptors, closed exactly once here.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[cfg(unix)]
    fn fd_of(s: &TcpStream) -> SysFd {
        s.as_raw_fd()
    }

    #[cfg(not(unix))]
    fn fd_of(_s: &TcpStream) -> SysFd {
        0
    }

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(fd_of(&rx), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing readable yet: a short wait times out empty.
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        tx.write_all(b"x").unwrap();
        tx.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut seen = false;
        while Instant::now() < deadline && !seen {
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            seen = events.iter().any(|e| e.token == 7 && e.readable);
        }
        assert!(seen, "byte arrival must surface as readability");

        let mut byte = [0u8; 1];
        let mut rx = rx;
        rx.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&mut poller).unwrap());
        let w = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        let t0 = Instant::now();
        // Generous timeout: the waker must end the wait long before it.
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "wake() interrupted the wait");
        if cfg!(unix) {
            assert!(events.iter().any(|e| e.token == WAKE_TOKEN && e.readable));
            waker.drain();
        }
        handle.join().unwrap();
    }

    #[test]
    fn modify_switches_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        // Register read-only: an idle writable socket must not wake us.
        poller.register(fd_of(&tx), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(
            events.iter().all(|e| e.token != 3 || !e.writable),
            "write readiness must be masked without write interest"
        );
        poller.modify(3, Interest::BOTH).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut writable = false;
        while Instant::now() < deadline && !writable {
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            writable = events.iter().any(|e| e.token == 3 && e.writable);
        }
        assert!(writable, "an idle socket is writable once write interest is on");
        poller.deregister(3).unwrap();
        drop(rx);
    }
}
