//! Discovery campaign: run the annealing searcher on the registry's target
//! shapes and write any verified find into the registry data format.

use fmm_search::anneal::{anneal, AnnealConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (m, k, n, rank, secs): (usize, usize, usize, usize, u64) = (
        args[1].parse().unwrap(),
        args[2].parse().unwrap(),
        args[3].parse().unwrap(),
        args[4].parse().unwrap(),
        args[5].parse().unwrap(),
    );
    let mut cfg = AnnealConfig::new((m, k, n), rank);
    cfg.budget = Duration::from_secs(secs);
    cfg.restarts = 100_000;
    cfg.steps = 400_000;
    if args.len() > 6 {
        cfg.seed = args[6].parse().unwrap();
    }
    let out = anneal(&cfg);
    match out.algorithm {
        Some(algo) => {
            let file = fmm_search::io::registry_file_name(&algo);
            let path = std::path::Path::new("crates/core/src/registry/data").join(&file);
            fmm_search::io::save(&algo, &path).unwrap();
            println!("FOUND {} -> {}", algo, path.display());
        }
        None => println!(
            "<{m},{k},{n}> rank {rank}: not found (best obj {}, {} restarts, {:?})",
            out.best_objective, out.restarts_run, out.elapsed
        ),
    }
}
