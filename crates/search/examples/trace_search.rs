//! Developer harness for tuning the search heuristics. Not part of the
//! public API; see `fmm-search::runner` for the production entry point.

use fmm_search::als::{self, AlsOptions, Factors};
use fmm_search::linalg::Mat;
use fmm_search::repair;
use fmm_search::rounding::DEFAULT_GRID;
use fmm_search::tensor::MatMulTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn discrete_random(t: &MatMulTensor, r: usize, seed: u64) -> Factors {
    let (da, db, dc) = t.mode_sizes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = |rows: usize| {
        Mat::from_rows(
            rows,
            r,
            (0..rows * r)
                .map(|_| {
                    let x: f64 = rng.gen();
                    if x < 0.5 {
                        0.0
                    } else if x < 0.75 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect(),
        )
    };
    Factors { u: gen(da), v: gen(db), w: gen(dc) }
}

fn attempt(t: &MatMulTensor, rank: usize, seed: u64, sweeps: usize) -> Option<usize> {
    let mut f = discrete_random(t, rank, seed);
    let opts = AlsOptions { ridge: 1e-7, clamp: 2.5 };
    let mut mu = 0.002;
    for outer in 0..sweeps / 4 {
        for _ in 0..4 {
            if !als::sweep_discrete(t, &mut f, &opts, mu, DEFAULT_GRID) {
                return None;
            }
        }
        let res = f.residual_sq(t);
        let disc = als::discreteness(&f, DEFAULT_GRID);
        if disc < 0.03 && res < 0.01 {
            if let Some(a) = repair::finalize(t, &f, "x", DEFAULT_GRID) {
                if a.rank() == rank {
                    return Some(outer);
                }
            }
        }
        // Periodic hard snap (basin hopping) when fit is decent.
        if outer % 8 == 7 && res < 0.3 {
            let mut g = f.clone();
            fmm_search::rounding::snap_all(&mut g.u.data, DEFAULT_GRID);
            fmm_search::rounding::snap_all(&mut g.v.data, DEFAULT_GRID);
            fmm_search::rounding::snap_all(&mut g.w.data, DEFAULT_GRID);
            if g.residual_sq(t) < res + 0.5 {
                f = g;
            }
        }
        mu = (mu * 1.05).min(0.35);
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (m, k, n, rank, tries): (usize, usize, usize, usize, u64) = if args.len() >= 6 {
        (
            args[1].parse().unwrap(),
            args[2].parse().unwrap(),
            args[3].parse().unwrap(),
            args[4].parse().unwrap(),
            args[5].parse().unwrap(),
        )
    } else {
        (2, 2, 2, 7, 40)
    };
    let t = MatMulTensor::new(m, k, n);
    let mut found = 0;
    let start = std::time::Instant::now();
    for seed in 0..tries {
        if let Some(outer) = attempt(&t, rank, seed, 800) {
            println!("seed {seed}: FOUND after {outer} outers");
            found += 1;
        }
    }
    println!(
        "<{m},{k},{n}> rank {rank}: {found}/{tries} successes in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
