//! Import/export of discovered algorithms as registry JSON files.

use fmm_core::FmmAlgorithm;
use std::path::Path;

/// Write `algo` to `path` in the registry JSON format
/// (`crates/core/src/registry/data/*.json`).
pub fn save(algo: &FmmAlgorithm, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, algo.to_json())
}

/// Load and re-verify an algorithm from a JSON file.
pub fn load(path: &Path) -> Result<FmmAlgorithm, String> {
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    FmmAlgorithm::from_json(&json)
}

/// Canonical registry file name for an algorithm, e.g. `mkn233_r15.json`.
pub fn registry_file_name(algo: &FmmAlgorithm) -> String {
    let (m, k, n) = algo.dims();
    format!("mkn{m}{k}{n}_r{}.json", algo.rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry::strassen;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("fmm_search_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("strassen.json");
        let s = strassen();
        save(&s, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.dims(), s.dims());
        assert_eq!(back.rank(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_tampered_files() {
        let dir = std::env::temp_dir().join("fmm_search_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        let tampered = strassen().to_json().replace("-1.0", "1.0");
        std::fs::write(&path, tampered).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_file_name_format() {
        assert_eq!(registry_file_name(&strassen()), "mkn222_r7.json");
    }
}
