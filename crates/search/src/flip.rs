//! Flip-graph random walk over exact integer decompositions
//! (Kauers–Moosbauer style).
//!
//! A decomposition is a list of rank-one terms `a_r ⊗ b_r ⊗ c_r` summing to
//! the matmul tensor. A *flip* rewrites a pair of terms sharing one factor:
//!
//! ```text
//! a⊗b₁⊗c₁ + a⊗b₂⊗c₂  ->  a⊗(b₁+b₂)⊗c₁ + a⊗b₂⊗(c₂-c₁)
//! ```
//!
//! which preserves the sum *exactly* (all arithmetic over ℤ). A *reduction*
//! removes a term whose factor became zero, or merges two terms that agree
//! in two modes — dropping the rank by one. Random walks through flips,
//! harvesting reductions, walk the classical rank down toward the published
//! ranks; every result is re-verified through `FmmAlgorithm::new`.

use crate::tensor::MatMulTensor;
use fmm_core::{CoeffMatrix, FmmAlgorithm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One rank-one term `a ⊗ b ⊗ c` with integer entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Term {
    /// A-mode factor (length `m̃k̃`).
    pub a: Vec<i32>,
    /// B-mode factor (length `k̃ñ`).
    pub b: Vec<i32>,
    /// C-mode factor (length `m̃ñ`).
    pub c: Vec<i32>,
}

impl Term {
    fn is_zero(&self) -> bool {
        self.a.iter().all(|&x| x == 0)
            || self.b.iter().all(|&x| x == 0)
            || self.c.iter().all(|&x| x == 0)
    }
}

/// Walk configuration.
#[derive(Clone, Debug)]
pub struct FlipConfig {
    /// Partition dims.
    pub dims: (usize, usize, usize),
    /// Stop when this rank is reached.
    pub target_rank: usize,
    /// Entry magnitude bound (flips breaching it are rejected).
    pub bound: i32,
    /// Flip attempts per restart.
    pub flips_per_restart: usize,
    /// Number of restarts.
    pub restarts: usize,
    /// Wall-clock budget.
    pub budget: Duration,
    /// RNG seed.
    pub seed: u64,
    /// After this many flips without progress, allow a rank-increasing
    /// split ("plus" move) to escape; 0 disables.
    pub plus_after: usize,
    /// Maximum extra rank the plus moves may add above the best-seen rank.
    pub plus_slack: usize,
}

impl FlipConfig {
    /// Defaults tuned for the paper's shapes.
    pub fn new(dims: (usize, usize, usize), target_rank: usize) -> Self {
        Self {
            dims,
            target_rank,
            bound: 2,
            flips_per_restart: 2_000_000,
            restarts: 8,
            budget: Duration::from_secs(60),
            seed: 0xF11F,
            plus_after: 30_000,
            plus_slack: 1,
        }
    }
}

/// Outcome of a flip-graph campaign.
#[derive(Debug)]
pub struct FlipOutcome {
    /// Verified algorithm at `target_rank`, if reached.
    pub algorithm: Option<FmmAlgorithm>,
    /// Lowest rank reached (even if above target).
    pub best_rank: usize,
    /// The decomposition at the lowest rank (always valid).
    pub best_terms: Vec<Term>,
    /// Wall-clock spent.
    pub elapsed: Duration,
}

/// The classical decomposition of the `<m̃,k̃,ñ>` tensor (`m̃k̃ñ` terms).
pub fn classical_terms(mt: usize, kt: usize, nt: usize) -> Vec<Term> {
    let mut terms = Vec::with_capacity(mt * kt * nt);
    for i in 0..mt {
        for ka in 0..kt {
            for j in 0..nt {
                let mut a = vec![0; mt * kt];
                let mut b = vec![0; kt * nt];
                let mut c = vec![0; mt * nt];
                a[i * kt + ka] = 1;
                b[ka * nt + j] = 1;
                c[i * nt + j] = 1;
                terms.push(Term { a, b, c });
            }
        }
    }
    terms
}

/// Check that `terms` sum exactly to the matmul tensor.
pub fn is_valid(terms: &[Term], t: &MatMulTensor) -> bool {
    let (da, db, dc) = t.mode_sizes();
    for a in 0..da {
        for b in 0..db {
            for c in 0..dc {
                let mut acc = 0i64;
                for term in terms {
                    acc += term.a[a] as i64 * term.b[b] as i64 * term.c[c] as i64;
                }
                if acc as f64 != t.at(a, b, c) {
                    return false;
                }
            }
        }
    }
    true
}

/// Convert a term list into a verified algorithm.
pub fn to_algorithm(
    terms: &[Term],
    dims: (usize, usize, usize),
    name: &str,
) -> Result<FmmAlgorithm, String> {
    let r = terms.len();
    let (mt, kt, nt) = dims;
    let mut u = CoeffMatrix::zeros(mt * kt, r);
    let mut v = CoeffMatrix::zeros(kt * nt, r);
    let mut w = CoeffMatrix::zeros(mt * nt, r);
    for (rr, term) in terms.iter().enumerate() {
        for (i, &x) in term.a.iter().enumerate() {
            u.set(i, rr, x as f64);
        }
        for (i, &x) in term.b.iter().enumerate() {
            v.set(i, rr, x as f64);
        }
        for (i, &x) in term.c.iter().enumerate() {
            w.set(i, rr, x as f64);
        }
    }
    FmmAlgorithm::new(name, dims, u, v, w)
}

/// Which mode two terms share for a flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    A,
    B,
    C,
}

/// Sign-canonical form of a factor: negate so the first non-zero entry is
/// positive (zero vectors stay zero). Terms whose factors agree up to sign
/// share a canonical form.
fn canonical(x: &[i32]) -> Vec<i32> {
    match x.iter().find(|&&v| v != 0) {
        Some(&v) if v < 0 => x.iter().map(|&p| -p).collect(),
        _ => x.to_vec(),
    }
}

/// `x == y` or `x == -y` (returns the sign), for factor matching up to sign.
fn sign_match(x: &[i32], y: &[i32]) -> Option<i32> {
    if x == y {
        return Some(1);
    }
    if x.len() == y.len() && x.iter().zip(y).all(|(&p, &q)| p == -q) {
        return Some(-1);
    }
    None
}

struct Walk {
    terms: Vec<Term>,
    bound: i32,
    rng: StdRng,
}

impl Walk {
    /// Attempt one random flip; returns true if a flip was applied.
    ///
    /// Candidate pairs are drawn from an index of terms grouped by
    /// sign-canonicalized factor, so nearly every proposal is a real flip
    /// (uniform random pairs share a factor only rarely).
    fn random_flip(&mut self) -> bool {
        let n = self.terms.len();
        if n < 2 {
            return false;
        }
        let first_mode = self.rng.gen_range(0..3u8);
        let mut chosen: Option<(Mode, usize, usize)> = None;
        'modes: for off in 0..3u8 {
            let mode = match (first_mode + off) % 3 {
                0 => Mode::A,
                1 => Mode::B,
                _ => Mode::C,
            };
            let mut groups: std::collections::HashMap<Vec<i32>, Vec<usize>> =
                std::collections::HashMap::new();
            for (idx, term) in self.terms.iter().enumerate() {
                let f = match mode {
                    Mode::A => &term.a,
                    Mode::B => &term.b,
                    Mode::C => &term.c,
                };
                groups.entry(canonical(f)).or_default().push(idx);
            }
            let mut multi: Vec<&Vec<usize>> = groups.values().filter(|g| g.len() >= 2).collect();
            if multi.is_empty() {
                continue 'modes;
            }
            let g = multi.swap_remove(self.rng.gen_range(0..multi.len()));
            let i = g[self.rng.gen_range(0..g.len())];
            let mut j = g[self.rng.gen_range(0..g.len())];
            while j == i {
                j = g[self.rng.gen_range(0..g.len())];
            }
            chosen = Some((mode, i, j));
            break;
        }
        let Some((mode, i, j)) = chosen else { return false };
        let sign = {
            let (ti, tj) = (&self.terms[i], &self.terms[j]);
            let (fi, fj) = match mode {
                Mode::A => (&ti.a, &tj.a),
                Mode::B => (&ti.b, &tj.b),
                Mode::C => (&ti.c, &tj.c),
            };
            match sign_match(fi, fj) {
                Some(s) => s,
                None => return false,
            }
        };
        // Shared factor: f_j = s·f_i. Using f_i⊗(s·y_j) = f_j⊗y_j, the flip
        //   f_i⊗y_i⊗z_i + f_j⊗y_j⊗z_j
        //     -> f_i⊗(y_i + s·y_j)⊗z_i + f_j⊗y_j⊗(z_j - z_i)
        // preserves the sum exactly ((y, z) order randomized per flip).
        let swap_yz = self.rng.gen::<bool>();
        let (yi, zi, yj, zj) = {
            let ti = &self.terms[i];
            let tj = &self.terms[j];
            let (yi, zi) = other_modes(ti, mode, swap_yz);
            let (yj, zj) = other_modes(tj, mode, swap_yz);
            (yi.clone(), zi.clone(), yj.clone(), zj.clone())
        };
        // y_i' = y_i + s*y_j ; z_j' = z_j - s*z_i.
        let mut yi_new = yi;
        for (p, &q) in yi_new.iter_mut().zip(yj.iter()) {
            *p += sign * q;
            if p.abs() > self.bound {
                return false;
            }
        }
        let mut zj_new = zj;
        for (p, &q) in zj_new.iter_mut().zip(zi.iter()) {
            *p -= q;
            if p.abs() > self.bound {
                return false;
            }
        }
        set_other_modes(&mut self.terms[i], mode, swap_yz, Some(yi_new), None);
        set_other_modes(&mut self.terms[j], mode, swap_yz, None, Some(zj_new));
        true
    }

    /// Remove zero terms and merge two-mode matches; returns number of
    /// terms eliminated.
    fn reduce(&mut self) -> usize {
        let before = self.terms.len();
        self.terms.retain(|t| !t.is_zero());
        // Pairwise merges: if two terms agree (up to sign) in two modes,
        // fold the third together.
        'outer: loop {
            let n = self.terms.len();
            for i in 0..n {
                for j in i + 1..n {
                    if let Some(merged) = merge(&self.terms[i], &self.terms[j], self.bound) {
                        self.terms[i] = merged;
                        self.terms.swap_remove(j);
                        self.terms.retain(|t| !t.is_zero());
                        continue 'outer;
                    }
                }
            }
            break;
        }
        before - self.terms.len()
    }

    /// Rank-increasing escape: split a random term `a⊗b⊗c` into
    /// `a'⊗b⊗c + (a-a')⊗b⊗c` with a random sparse `a'`.
    fn plus_split(&mut self) {
        let n = self.terms.len();
        if n == 0 {
            return;
        }
        let i = self.rng.gen_range(0..n);
        let mode = match self.rng.gen_range(0..3u8) {
            0 => Mode::A,
            1 => Mode::B,
            _ => Mode::C,
        };
        let src = match mode {
            Mode::A => self.terms[i].a.clone(),
            Mode::B => self.terms[i].b.clone(),
            Mode::C => self.terms[i].c.clone(),
        };
        let len = src.len();
        let mut part = vec![0i32; len];
        let idx = self.rng.gen_range(0..len);
        part[idx] = if self.rng.gen::<bool>() { 1 } else { -1 };
        let rest: Vec<i32> = src.iter().zip(&part).map(|(&s, &p)| s - p).collect();
        if rest.iter().any(|&x| x.abs() > self.bound) {
            return;
        }
        let mut t_new = self.terms[i].clone();
        match mode {
            Mode::A => {
                self.terms[i].a = part;
                t_new.a = rest;
            }
            Mode::B => {
                self.terms[i].b = part;
                t_new.b = rest;
            }
            Mode::C => {
                self.terms[i].c = part;
                t_new.c = rest;
            }
        }
        self.terms.push(t_new);
        self.terms.retain(|t| !t.is_zero());
    }
}

fn other_modes(t: &Term, mode: Mode, swap: bool) -> (&Vec<i32>, &Vec<i32>) {
    let (y, z) = match mode {
        Mode::A => (&t.b, &t.c),
        Mode::B => (&t.a, &t.c),
        Mode::C => (&t.a, &t.b),
    };
    if swap {
        (z, y)
    } else {
        (y, z)
    }
}

fn set_other_modes(t: &mut Term, mode: Mode, swap: bool, y: Option<Vec<i32>>, z: Option<Vec<i32>>) {
    let (y, z) = if swap { (z, y) } else { (y, z) };
    match mode {
        Mode::A => {
            if let Some(y) = y {
                t.b = y;
            }
            if let Some(z) = z {
                t.c = z;
            }
        }
        Mode::B => {
            if let Some(y) = y {
                t.a = y;
            }
            if let Some(z) = z {
                t.c = z;
            }
        }
        Mode::C => {
            if let Some(y) = y {
                t.a = y;
            }
            if let Some(z) = z {
                t.b = z;
            }
        }
    }
}

/// Merge two terms agreeing in two modes (up to sign): the third-mode
/// factors combine. Returns the merged term if entries stay within bound.
fn merge(x: &Term, y: &Term, bound: i32) -> Option<Term> {
    // Agree in A and B: c_x + s_a*s_b*c_y ... signs multiply.
    if let (Some(sa), Some(sb)) = (sign_match(&x.a, &y.a), sign_match(&x.b, &y.b)) {
        let s = sa * sb;
        let c: Vec<i32> = x.c.iter().zip(&y.c).map(|(&p, &q)| p + s * q).collect();
        if c.iter().all(|&v| v.abs() <= bound) {
            return Some(Term { a: x.a.clone(), b: x.b.clone(), c });
        }
    }
    if let (Some(sa), Some(sc)) = (sign_match(&x.a, &y.a), sign_match(&x.c, &y.c)) {
        let s = sa * sc;
        let b: Vec<i32> = x.b.iter().zip(&y.b).map(|(&p, &q)| p + s * q).collect();
        if b.iter().all(|&v| v.abs() <= bound) {
            return Some(Term { a: x.a.clone(), b, c: x.c.clone() });
        }
    }
    if let (Some(sb), Some(sc)) = (sign_match(&x.b, &y.b), sign_match(&x.c, &y.c)) {
        let s = sb * sc;
        let a: Vec<i32> = x.a.iter().zip(&y.a).map(|(&p, &q)| p + s * q).collect();
        if a.iter().all(|&v| v.abs() <= bound) {
            return Some(Term { a, b: x.b.clone(), c: x.c.clone() });
        }
    }
    None
}

/// Run the flip-graph campaign.
pub fn flip_search(cfg: &FlipConfig) -> FlipOutcome {
    let (mt, kt, nt) = cfg.dims;
    let t = MatMulTensor::new(mt, kt, nt);
    let start = Instant::now();
    let mut best_rank = usize::MAX;
    let mut best_terms = Vec::new();
    let name = format!("flip<{mt},{kt},{nt}>");

    'restarts: for attempt in 0..cfg.restarts {
        if start.elapsed() > cfg.budget {
            break;
        }
        let mut walk = Walk {
            terms: classical_terms(mt, kt, nt),
            bound: cfg.bound,
            rng: StdRng::seed_from_u64(cfg.seed ^ (attempt as u64).wrapping_mul(0x5851_F42D)),
        };
        walk.reduce();
        let mut since_progress = 0usize;
        let mut local_best = walk.terms.len();
        for flip_no in 0..cfg.flips_per_restart {
            if walk.random_flip() {
                let removed = walk.reduce();
                if removed > 0 && walk.terms.len() < local_best {
                    local_best = walk.terms.len();
                    since_progress = 0;
                }
            }
            since_progress += 1;
            if walk.terms.len() < best_rank {
                best_rank = walk.terms.len();
                best_terms = walk.terms.clone();
                if best_rank <= cfg.target_rank {
                    break 'restarts;
                }
            }
            // Escape via a rank-increasing split, bounded above best+slack.
            if cfg.plus_after > 0
                && since_progress >= cfg.plus_after
                && walk.terms.len() <= local_best + cfg.plus_slack
            {
                walk.plus_split();
                since_progress = 0;
            }
            if flip_no % 8192 == 0 && start.elapsed() > cfg.budget {
                break 'restarts;
            }
        }
    }

    let algorithm = if best_rank <= cfg.target_rank {
        debug_assert!(is_valid(&best_terms, &t));
        to_algorithm(&best_terms, cfg.dims, &name).ok()
    } else {
        None
    };
    FlipOutcome { algorithm, best_rank, best_terms, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_terms_are_valid() {
        for (m, k, n) in [(2, 2, 2), (2, 3, 2), (3, 3, 3)] {
            let t = MatMulTensor::new(m, k, n);
            let terms = classical_terms(m, k, n);
            assert_eq!(terms.len(), m * k * n);
            assert!(is_valid(&terms, &t));
        }
    }

    #[test]
    fn flips_preserve_validity() {
        let t = MatMulTensor::new(2, 2, 2);
        let mut walk =
            Walk { terms: classical_terms(2, 2, 2), bound: 2, rng: StdRng::seed_from_u64(7) };
        let mut applied = 0;
        // The applied count is not reproducible run-to-run even with a
        // seeded rng: random_flip samples candidates from a HashMap whose
        // iteration order varies per process. Observed range over 8000
        // steps is roughly 45-100, so assert only the intent — that flips
        // actually fire — with a wide margin.
        for _ in 0..8000 {
            if walk.random_flip() {
                applied += 1;
            }
            walk.reduce();
        }
        assert!(applied > 20, "flips must actually fire ({applied})");
        assert!(is_valid(&walk.terms, &t), "walk left the tensor's fiber");
    }

    #[test]
    fn plus_split_preserves_validity() {
        let t = MatMulTensor::new(2, 2, 2);
        let mut walk =
            Walk { terms: classical_terms(2, 2, 2), bound: 2, rng: StdRng::seed_from_u64(9) };
        for _ in 0..50 {
            walk.plus_split();
        }
        assert!(is_valid(&walk.terms, &t));
    }

    #[test]
    fn sign_match_detects_negation() {
        assert_eq!(sign_match(&[1, 0, -1], &[1, 0, -1]), Some(1));
        assert_eq!(sign_match(&[1, 0, -1], &[-1, 0, 1]), Some(-1));
        assert_eq!(sign_match(&[1, 0, -1], &[1, 0, 1]), None);
        // All-zero vectors "match" — callers must drop zero terms first.
        assert_eq!(sign_match(&[0, 0], &[0, 0]), Some(1));
    }

    #[test]
    fn flip_walk_plumbing_reaches_classical_rank() {
        // Target = classical rank: satisfied at the start; exercises the
        // conversion and verification path end to end.
        let mut cfg = FlipConfig::new((2, 2, 2), 8);
        cfg.budget = Duration::from_secs(5);
        let out = flip_search(&cfg);
        let algo = out.algorithm.expect("classical rank always reachable");
        assert_eq!(algo.rank(), 8);
        assert_eq!(algo.dims(), (2, 2, 2));
    }

    #[test]
    fn flip_walk_explores_the_classical_level_set() {
        // The flip graph's use (Kauers–Moosbauer): walk the level set of a
        // known decomposition, producing a stream of *inequivalent* exact
        // decompositions. Start from the classical rank-8 decomposition,
        // flip a lot, and require that the result is (a) still exactly
        // valid, (b) of rank <= 8, and (c) a different representative.
        let start_terms = classical_terms(2, 2, 2);
        let t = MatMulTensor::new(2, 2, 2);
        let mut walk =
            Walk { terms: start_terms.clone(), bound: 2, rng: StdRng::seed_from_u64(123) };
        let mut applied = 0;
        for _ in 0..20_000 {
            if walk.random_flip() {
                applied += 1;
            }
            walk.reduce();
            assert!(walk.terms.len() <= 8, "rank can only shrink");
        }
        // Flips destroy factor sharing, so walks can reach flip-poor
        // (absorbing) states — the searcher handles that with restarts.
        // What matters here: the walk moved, and stayed exact throughout.
        // (The count is not reproducible even seeded — candidate sampling
        // iterates a HashMap, whose order varies per process — so assert
        // with a wide margin; observed range is roughly 10-150.)
        assert!(applied > 5, "flips must fire on the level set ({applied})");
        assert!(is_valid(&walk.terms, &t), "level-set walk must stay exact");
        let end = to_algorithm(&walk.terms, (2, 2, 2), "walked").expect("still verifies");
        assert!(end.rank() <= 8);
        assert_ne!(walk.terms, start_terms, "walk must move to a different representative");
    }

    #[test]
    fn strassen_is_flip_isolated_over_z() {
        // Noteworthy structural fact: Strassen's seven products have
        // pairwise distinct factors (up to sign) in *every* mode, so no
        // Kauers–Moosbauer flip applies to it over ℤ with ±1 matching —
        // the vertex is isolated in our flip graph.
        let s = fmm_core::registry::strassen();
        let col = |m: &fmm_core::CoeffMatrix, rows: usize, r: usize| -> Vec<i32> {
            (0..rows).map(|i| m.at(i, r) as i32).collect()
        };
        for mode in 0..3 {
            for r1 in 0..7 {
                for r2 in (r1 + 1)..7 {
                    let (x, y) = match mode {
                        0 => (col(s.u(), 4, r1), col(s.u(), 4, r2)),
                        1 => (col(s.v(), 4, r1), col(s.v(), 4, r2)),
                        _ => (col(s.w(), 4, r1), col(s.w(), 4, r2)),
                    };
                    assert_eq!(sign_match(&x, &y), None, "mode {mode} products {r1},{r2}");
                }
            }
        }
    }

    #[test]
    fn merge_reduces_rank_when_two_modes_agree() {
        // Hand-build a redundant decomposition: classical <1,1,1> split
        // into two terms sharing a and b; reduce() must merge them.
        let t = MatMulTensor::new(1, 1, 1);
        let terms = vec![
            Term { a: vec![1], b: vec![1], c: vec![2] },
            Term { a: vec![1], b: vec![1], c: vec![-1] },
        ];
        assert!(is_valid(&terms, &t));
        let mut walk = Walk { terms, bound: 2, rng: StdRng::seed_from_u64(1) };
        walk.reduce();
        assert_eq!(walk.terms.len(), 1);
        assert!(is_valid(&walk.terms, &t));
    }
}
