//! Rounding approximate factors onto the dyadic coefficient grid.
//!
//! Published practical FMM algorithms use coefficients from a tiny dyadic
//! set. After ALS drives the residual low, each factor entry is snapped to
//! the nearest grid value; the repair step then restores exactness.

/// The default coefficient grid: `{0, ±1/2, ±1, ±2}` covers every algorithm
/// in the paper's Figure 2 family.
pub const DEFAULT_GRID: &[f64] = &[0.0, 0.5, -0.5, 1.0, -1.0, 2.0, -2.0];

/// Snap `x` to the nearest value in `grid`.
pub fn snap(x: f64, grid: &[f64]) -> f64 {
    let mut best = grid[0];
    let mut best_d = (x - grid[0]).abs();
    for &g in &grid[1..] {
        let d = (x - g).abs();
        if d < best_d {
            best_d = d;
            best = g;
        }
    }
    best
}

/// Snap every entry of a factor matrix; returns the largest snap distance
/// (a confidence signal: near-converged ALS snaps by < 0.1).
pub fn snap_all(data: &mut [f64], grid: &[f64]) -> f64 {
    let mut worst = 0.0_f64;
    for x in data.iter_mut() {
        let s = snap(*x, grid);
        worst = worst.max((*x - s).abs());
        *x = s;
    }
    worst
}

/// Column-rescaling normalization: for each product `r`, the decomposition
/// is invariant under `u_r *= α, v_r *= β, w_r /= (αβ)`. Rescale so each
/// column's largest |entry| is 1, which puts entries near the grid.
pub fn normalize_columns(
    u: &mut crate::linalg::Mat,
    v: &mut crate::linalg::Mat,
    w: &mut crate::linalg::Mat,
) {
    let r = u.cols;
    for rr in 0..r {
        let max_u = col_max(u, rr);
        let max_v = col_max(v, rr);
        if max_u > 0.0 {
            scale_col(u, rr, 1.0 / max_u);
        }
        if max_v > 0.0 {
            scale_col(v, rr, 1.0 / max_v);
        }
        let s = max_u * max_v;
        if s > 0.0 {
            scale_col(w, rr, s);
        }
    }
}

fn col_max(m: &crate::linalg::Mat, col: usize) -> f64 {
    (0..m.rows).map(|i| m.at(i, col).abs()).fold(0.0, f64::max)
}

fn scale_col(m: &mut crate::linalg::Mat, col: usize, s: f64) {
    for i in 0..m.rows {
        let v = m.at(i, col) * s;
        m.set(i, col, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Mat;

    #[test]
    fn snap_picks_nearest() {
        assert_eq!(snap(0.9, DEFAULT_GRID), 1.0);
        assert_eq!(snap(-0.6, DEFAULT_GRID), -0.5);
        assert_eq!(snap(0.2, DEFAULT_GRID), 0.0);
        assert_eq!(snap(1.7, DEFAULT_GRID), 2.0);
        assert_eq!(snap(0.26, DEFAULT_GRID), 0.5);
    }

    #[test]
    fn snap_all_reports_worst_distance() {
        let mut data = vec![0.95, -1.02, 0.4];
        let worst = snap_all(&mut data, DEFAULT_GRID);
        assert_eq!(data, vec![1.0, -1.0, 0.5]);
        assert!((worst - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalize_makes_u_v_columns_unit_max() {
        let mut u = Mat::from_rows(2, 1, vec![0.5, -0.25]);
        let mut v = Mat::from_rows(2, 1, vec![2.0, 0.0]);
        let mut w = Mat::from_rows(2, 1, vec![1.0, 3.0]);
        normalize_columns(&mut u, &mut v, &mut w);
        assert!((u.at(0, 0) - 1.0).abs() < 1e-14);
        assert!((v.at(0, 0) - 1.0).abs() < 1e-14);
        // w scaled by 0.5 * 2.0 = 1.0: unchanged.
        assert!((w.at(1, 0) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn normalization_preserves_the_product() {
        // u ⊗ v ⊗ w triple products are invariant.
        let mut u = Mat::from_rows(2, 1, vec![0.5, -0.25]);
        let mut v = Mat::from_rows(2, 1, vec![2.0, 4.0]);
        let mut w = Mat::from_rows(2, 1, vec![1.0, 3.0]);
        let before = u.at(1, 0) * v.at(0, 0) * w.at(1, 0);
        normalize_columns(&mut u, &mut v, &mut w);
        let after = u.at(1, 0) * v.at(0, 0) * w.at(1, 0);
        assert!((before - after).abs() < 1e-12);
    }
}
