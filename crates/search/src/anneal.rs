//! Simulated annealing over *discrete* coefficient triples.
//!
//! Complementing the continuous ALS pipeline, this searcher walks factor
//! matrices with entries restricted to a small integer grid (default
//! `{-1, 0, 1}`) and minimizes the summed squared Brent residual. Single
//! entry flips change only one mode slice of the approximation, so the
//! objective updates incrementally in `O(d_b·d_c)` per proposal — millions
//! of moves per second on the tensors of interest. A zero objective *is* an
//! exact algorithm (verified again through `FmmAlgorithm::new` regardless).

use crate::linalg::Mat;
use crate::tensor::MatMulTensor;
use fmm_core::{CoeffMatrix, FmmAlgorithm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Which factor a move touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Factor {
    U,
    V,
    W,
}

/// Annealing configuration.
#[derive(Clone, Debug)]
pub struct AnnealConfig {
    /// Partition dims.
    pub dims: (usize, usize, usize),
    /// Target rank.
    pub rank: usize,
    /// Allowed coefficient values.
    pub grid: Vec<f64>,
    /// Moves per restart.
    pub steps: usize,
    /// Start temperature.
    pub t0: f64,
    /// End temperature.
    pub t1: f64,
    /// Random restarts.
    pub restarts: usize,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Base RNG seed.
    pub seed: u64,
}

impl AnnealConfig {
    /// Reasonable defaults for a `<m̃,k̃,ñ>` target at rank `r`.
    pub fn new(dims: (usize, usize, usize), rank: usize) -> Self {
        Self {
            dims,
            rank,
            grid: vec![-1.0, 0.0, 1.0],
            steps: 200_000,
            t0: 1.2,
            t1: 0.02,
            restarts: 40,
            budget: Duration::from_secs(30),
            seed: 0xA11EA1,
        }
    }
}

/// Outcome of an annealing campaign.
#[derive(Debug)]
pub struct AnnealOutcome {
    /// Verified algorithm, if found.
    pub algorithm: Option<FmmAlgorithm>,
    /// Best (lowest) objective seen.
    pub best_objective: f64,
    /// Restarts attempted.
    pub restarts_run: usize,
    /// Wall-clock spent.
    pub elapsed: Duration,
}

struct State {
    u: Mat,
    v: Mat,
    w: Mat,
    /// Current approximation `Σ_r u_a v_b w_c`, indexed `(a*db + b)*dc + c`.
    approx: Vec<f64>,
    /// Current objective `Σ (approx - target)²`.
    obj: f64,
    da: usize,
    db: usize,
    dc: usize,
    rank: usize,
}

impl State {
    fn random(t: &MatMulTensor, rank: usize, grid: &[f64], rng: &mut StdRng) -> Self {
        let (da, db, dc) = t.mode_sizes();
        // Sparse-biased init: zeros are the most common entry in known
        // algorithms, so start ~60% zero.
        let mut gen = |rows: usize| {
            Mat::from_rows(
                rows,
                rank,
                (0..rows * rank)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.6 {
                            0.0
                        } else {
                            grid[rng.gen_range(0..grid.len())]
                        }
                    })
                    .collect(),
            )
        };
        let u = gen(da);
        let v = gen(db);
        let w = gen(dc);
        let mut s = Self { u, v, w, approx: vec![0.0; da * db * dc], obj: 0.0, da, db, dc, rank };
        s.rebuild(t);
        s
    }

    fn rebuild(&mut self, t: &MatMulTensor) {
        self.approx.iter_mut().for_each(|x| *x = 0.0);
        for a in 0..self.da {
            for b in 0..self.db {
                for c in 0..self.dc {
                    let mut acc = 0.0;
                    for r in 0..self.rank {
                        acc += self.u.at(a, r) * self.v.at(b, r) * self.w.at(c, r);
                    }
                    self.approx[(a * self.db + b) * self.dc + c] = acc;
                }
            }
        }
        self.obj = 0.0;
        for a in 0..self.da {
            for b in 0..self.db {
                for c in 0..self.dc {
                    let d = self.approx[(a * self.db + b) * self.dc + c] - t.at(a, b, c);
                    self.obj += d * d;
                }
            }
        }
    }

    /// Objective change if `factor[row, r]` moved by `delta`; applies the
    /// move when `commit` is true.
    fn probe(
        &mut self,
        t: &MatMulTensor,
        factor: Factor,
        row: usize,
        r: usize,
        delta: f64,
        commit: bool,
    ) -> f64 {
        let mut d_obj = 0.0;
        match factor {
            Factor::U => {
                for b in 0..self.db {
                    let vb = self.v.at(b, r);
                    if vb == 0.0 {
                        continue;
                    }
                    for c in 0..self.dc {
                        let wc = self.w.at(c, r);
                        if wc == 0.0 {
                            continue;
                        }
                        let idx = (row * self.db + b) * self.dc + c;
                        let old = self.approx[idx];
                        let new = old + delta * vb * wc;
                        let target = t.at(row, b, c);
                        d_obj += (new - target) * (new - target) - (old - target) * (old - target);
                        if commit {
                            self.approx[idx] = new;
                        }
                    }
                }
                if commit {
                    let cur = self.u.at(row, r);
                    self.u.set(row, r, cur + delta);
                }
            }
            Factor::V => {
                for a in 0..self.da {
                    let ua = self.u.at(a, r);
                    if ua == 0.0 {
                        continue;
                    }
                    for c in 0..self.dc {
                        let wc = self.w.at(c, r);
                        if wc == 0.0 {
                            continue;
                        }
                        let idx = (a * self.db + row) * self.dc + c;
                        let old = self.approx[idx];
                        let new = old + delta * ua * wc;
                        let target = t.at(a, row, c);
                        d_obj += (new - target) * (new - target) - (old - target) * (old - target);
                        if commit {
                            self.approx[idx] = new;
                        }
                    }
                }
                if commit {
                    let cur = self.v.at(row, r);
                    self.v.set(row, r, cur + delta);
                }
            }
            Factor::W => {
                for a in 0..self.da {
                    let ua = self.u.at(a, r);
                    if ua == 0.0 {
                        continue;
                    }
                    for b in 0..self.db {
                        let vb = self.v.at(b, r);
                        if vb == 0.0 {
                            continue;
                        }
                        let idx = (a * self.db + b) * self.dc + row;
                        let old = self.approx[idx];
                        let new = old + delta * ua * vb;
                        let target = t.at(a, b, row);
                        d_obj += (new - target) * (new - target) - (old - target) * (old - target);
                        if commit {
                            self.approx[idx] = new;
                        }
                    }
                }
                if commit {
                    let cur = self.w.at(row, r);
                    self.w.set(row, r, cur + delta);
                }
            }
        }
        if commit {
            self.obj += d_obj;
        }
        d_obj
    }
}

impl State {
    /// Enumerate `(factor, row)` slots.
    fn slots(&self) -> Vec<(Factor, usize)> {
        let mut out = Vec::with_capacity(self.da + self.db + self.dc);
        out.extend((0..self.da).map(|i| (Factor::U, i)));
        out.extend((0..self.db).map(|i| (Factor::V, i)));
        out.extend((0..self.dc).map(|i| (Factor::W, i)));
        out
    }

    fn get(&self, factor: Factor, row: usize, r: usize) -> f64 {
        match factor {
            Factor::U => self.u.at(row, r),
            Factor::V => self.v.at(row, r),
            Factor::W => self.w.at(row, r),
        }
    }

    /// Exhaustive coordinated two-entry moves within each product column;
    /// greedily applies the best strictly-improving pair. Returns true if
    /// the objective improved. All arithmetic is on small integers, so
    /// commit/revert roundtrips are exact.
    fn two_opt(&mut self, t: &MatMulTensor, grid: &[f64]) -> bool {
        let slots = self.slots();
        let base = self.obj;
        // (objective delta, first move, second move, product column).
        type Move = (Factor, usize, f64);
        let mut best: Option<(f64, Move, Move, usize)> = None;
        for r in 0..self.rank {
            for (i1, &(f1, row1)) in slots.iter().enumerate() {
                let cur1 = self.get(f1, row1, r);
                for &v1 in grid {
                    if v1 == cur1 {
                        continue;
                    }
                    let d1_alone = self.probe(t, f1, row1, r, v1 - cur1, false);
                    // Single improving move counts too.
                    if d1_alone < -1e-12 {
                        let cand = (d1_alone, (f1, row1, v1), (f1, row1, v1), r);
                        if best.as_ref().is_none_or(|b| cand.0 < b.0) {
                            best = Some(cand);
                        }
                    }
                    // Tentatively commit e1, scan partners, revert.
                    self.probe(t, f1, row1, r, v1 - cur1, true);
                    for &(f2, row2) in slots.iter().skip(i1 + 1) {
                        let cur2 = self.get(f2, row2, r);
                        for &v2 in grid {
                            if v2 == cur2 {
                                continue;
                            }
                            let d2 = self.probe(t, f2, row2, r, v2 - cur2, false);
                            let total = d1_alone + d2;
                            if total < -1e-12 {
                                let cand = (total, (f1, row1, v1), (f2, row2, v2), r);
                                if best.as_ref().is_none_or(|b| cand.0 < b.0) {
                                    best = Some(cand);
                                }
                            }
                        }
                    }
                    self.probe(t, f1, row1, r, cur1 - v1, true);
                }
            }
        }
        if let Some((_, (f1, row1, v1), (f2, row2, v2), r)) = best {
            let cur1 = self.get(f1, row1, r);
            self.probe(t, f1, row1, r, v1 - cur1, true);
            if !(f2 == f1 && row2 == row1) {
                let cur2 = self.get(f2, row2, r);
                self.probe(t, f2, row2, r, v2 - cur2, true);
            }
            return self.obj < base - 1e-12;
        }
        false
    }
}

/// Run the annealing campaign.
pub fn anneal(cfg: &AnnealConfig) -> AnnealOutcome {
    let t = MatMulTensor::new(cfg.dims.0, cfg.dims.1, cfg.dims.2);
    let start = Instant::now();
    let mut best_obj = f64::INFINITY;
    let mut restarts_run = 0;
    let name = format!("annealed<{},{},{}>", cfg.dims.0, cfg.dims.1, cfg.dims.2);

    for attempt in 0..cfg.restarts {
        if start.elapsed() > cfg.budget {
            break;
        }
        restarts_run += 1;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9));
        let mut s = State::random(&t, cfg.rank, &cfg.grid, &mut rng);
        // Reheat cycles: cool over steps/4 moves, then restart the schedule
        // at a lower peak, keeping the current state (basin hopping).
        let cycles = 4;
        let cycle_steps = cfg.steps / cycles;
        'cycles: for cycle in 0..cycles {
            let peak = cfg.t0 * 0.6_f64.powi(cycle as i32);
            let mut temp = peak;
            let cool = (cfg.t1 / peak).powf(1.0 / cycle_steps.max(1) as f64);
            for step in 0..cycle_steps {
                // Pick a factor, entry, and a different grid value.
                let (factor, rows) = match rng.gen_range(0..3u8) {
                    0 => (Factor::U, s.da),
                    1 => (Factor::V, s.db),
                    _ => (Factor::W, s.dc),
                };
                let row = rng.gen_range(0..rows);
                let r = rng.gen_range(0..s.rank);
                let cur = match factor {
                    Factor::U => s.u.at(row, r),
                    Factor::V => s.v.at(row, r),
                    Factor::W => s.w.at(row, r),
                };
                let new = cfg.grid[rng.gen_range(0..cfg.grid.len())];
                if new == cur {
                    continue;
                }
                let delta = new - cur;
                let d_obj = s.probe(&t, factor, row, r, delta, false);
                if d_obj <= 0.0 || rng.gen::<f64>() < (-d_obj / temp).exp() {
                    s.probe(&t, factor, row, r, delta, true);
                }
                temp *= cool;
                if s.obj <= 1e-9 {
                    break 'cycles;
                }
                // Periodic plateau escape: greedy coordinated pair moves.
                if step % 4096 == 4095 && s.obj < 6.5 {
                    while s.two_opt(&t, &cfg.grid) {}
                    if s.obj <= 1e-9 {
                        break 'cycles;
                    }
                }
                // Cheap periodic budget check.
                if step % 8192 == 0 && start.elapsed() > cfg.budget {
                    break 'cycles;
                }
            }
            // End-of-cycle 2-opt descent, then rescue from the near-solution.
            if s.obj < 6.5 {
                while s.two_opt(&t, &cfg.grid) {}
                if s.obj <= 1e-9 {
                    break 'cycles;
                }
            }
            if s.obj < 8.5 {
                if let Some(algo) = rescue(&t, &s, cfg, &name) {
                    return AnnealOutcome {
                        algorithm: Some(algo),
                        best_objective: s.obj,
                        restarts_run,
                        elapsed: start.elapsed(),
                    };
                }
            }
        }
        best_obj = best_obj.min(s.obj);
        if s.obj <= 1e-9 {
            if let Ok(algo) = finalize_discrete(&t, &s, &name) {
                return AnnealOutcome {
                    algorithm: Some(algo),
                    best_objective: 0.0,
                    restarts_run,
                    elapsed: start.elapsed(),
                };
            }
        }
        // Final near-miss rescue for this restart.
        if s.obj < 8.5 {
            if let Some(algo) = rescue(&t, &s, cfg, &name) {
                return AnnealOutcome {
                    algorithm: Some(algo),
                    best_objective: s.obj,
                    restarts_run,
                    elapsed: start.elapsed(),
                };
            }
        }
    }
    AnnealOutcome {
        algorithm: None,
        best_objective: best_obj,
        restarts_run,
        elapsed: start.elapsed(),
    }
}

fn finalize_discrete(t: &MatMulTensor, s: &State, name: &str) -> Result<FmmAlgorithm, String> {
    let conv = |m: &Mat| CoeffMatrix::from_rows(m.rows, m.cols, m.data.clone());
    FmmAlgorithm::new(name, t.dims(), conv(&s.u), conv(&s.v), conv(&s.w))
}

/// Rescue a near-solution (a few violated equations): first the direct
/// exact linear repairs; failing that, a short continuous ALS polish from
/// the discrete point — which, starting near-discrete, converges to a
/// *roundable* exact solution if one is nearby — followed by finalize.
fn rescue(t: &MatMulTensor, s: &State, cfg: &AnnealConfig, name: &str) -> Option<FmmAlgorithm> {
    use crate::als::{self, AlsOptions, Factors};
    use crate::repair;
    use crate::rounding::DEFAULT_GRID;

    let f = Factors { u: s.u.clone(), v: s.v.clone(), w: s.w.clone() };
    if let Some(algo) = repair::repair_any(t, &f, name, DEFAULT_GRID) {
        if algo.rank() == cfg.rank {
            return Some(algo);
        }
    }
    // ALS polish from the discrete near-solution.
    let mut g = f;
    let res = als::run(t, &mut g, &AlsOptions { ridge: 1e-9, clamp: 3.0 }, 120, 1e-12);
    if res < 1e-6 {
        if let Some(algo) = repair::finalize(t, &g, name, DEFAULT_GRID) {
            if algo.rank() == cfg.rank {
                return Some(algo);
            }
        }
        if let Some(algo) = repair::repair_any(t, &g, name, DEFAULT_GRID) {
            if algo.rank() == cfg.rank {
                return Some(algo);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anneal_finds_rank_8_classical_fast() {
        let mut cfg = AnnealConfig::new((2, 2, 2), 8);
        cfg.restarts = 20;
        cfg.budget = Duration::from_secs(20);
        let out = anneal(&cfg);
        let algo = out.algorithm.expect("rank-8 must be found by annealing");
        assert_eq!(algo.rank(), 8);
    }

    #[test]
    fn anneal_rediscovers_strassen_rank_7() {
        // Debug builds run the annealer ~20x slower; exercise the pipeline
        // at the (abundant) classical rank there and reserve the genuine
        // rank-7 rediscovery for release runs (`cargo test --release`).
        let rank = if cfg!(debug_assertions) { 8 } else { 7 };
        let mut cfg = AnnealConfig::new((2, 2, 2), rank);
        cfg.restarts = 200;
        cfg.budget = Duration::from_secs(60);
        let out = anneal(&cfg);
        let algo = out.algorithm.unwrap_or_else(|| {
            panic!(
                "rank-{rank} not found: best objective {} after {} restarts",
                out.best_objective, out.restarts_run
            )
        });
        assert_eq!(algo.rank(), rank);
        assert_eq!(algo.dims(), (2, 2, 2));
    }

    #[test]
    fn incremental_objective_matches_rebuild() {
        let t = MatMulTensor::new(2, 2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let grid = vec![-1.0, 0.0, 1.0];
        let mut s = State::random(&t, 9, &grid, &mut rng);
        for _ in 0..200 {
            let (factor, rows) = match rng.gen_range(0..3u8) {
                0 => (Factor::U, s.da),
                1 => (Factor::V, s.db),
                _ => (Factor::W, s.dc),
            };
            let row = rng.gen_range(0..rows);
            let r = rng.gen_range(0..s.rank);
            let new = grid[rng.gen_range(0..grid.len())];
            let cur = match factor {
                Factor::U => s.u.at(row, r),
                Factor::V => s.v.at(row, r),
                Factor::W => s.w.at(row, r),
            };
            if new == cur {
                continue;
            }
            s.probe(&t, factor, row, r, new - cur, true);
        }
        let incremental = s.obj;
        s.rebuild(&t);
        assert!(
            (incremental - s.obj).abs() < 1e-9,
            "incremental {incremental} vs rebuilt {}",
            s.obj
        );
    }
}
