//! Exact repair: with two factors fixed, the third factor of a tensor
//! decomposition solves a *linear* least-squares problem. After ALS +
//! rounding, re-solving one factor exactly (then snapping and verifying)
//! turns a near-solution into an exact algorithm — and can also recover a
//! correct `W` from a hand-remembered `(U, V)` pair.

use crate::als::{khatri_rao, Factors};
use crate::linalg::{ridge_lstsq, Mat};
use crate::rounding::{self, DEFAULT_GRID};
use crate::tensor::MatMulTensor;
use fmm_core::{CoeffMatrix, FmmAlgorithm};

/// Solve `W` from `(U, V)`: minimize `||T_(3)ᵀ - (U ⊙ V)·Wᵀ||`.
/// Returns `None` if the system is too ill-conditioned to solve.
pub fn solve_w(t: &MatMulTensor, u: &Mat, v: &Mat) -> Option<Mat> {
    let (da, db, dc) = t.mode_sizes();
    let z = khatri_rao(u, v); // (da*db) x R, row index a*db + b
    let t3t = Mat::from_rows(dc, da * db, t.unfold_3()).t();
    let wt = ridge_lstsq(&z, &t3t, 1e-10)?;
    Some(wt.t())
}

/// Solve `U` from `(V, W)`.
pub fn solve_u(t: &MatMulTensor, v: &Mat, w: &Mat) -> Option<Mat> {
    let (da, db, dc) = t.mode_sizes();
    let z = khatri_rao(v, w); // row index b*dc + c
    let t1t = Mat::from_rows(da, db * dc, t.unfold_1()).t();
    let ut = ridge_lstsq(&z, &t1t, 1e-10)?;
    Some(ut.t())
}

/// Solve `V` from `(U, W)`.
pub fn solve_v(t: &MatMulTensor, u: &Mat, w: &Mat) -> Option<Mat> {
    let (da, db, dc) = t.mode_sizes();
    let z = khatri_rao(u, w); // row index a*dc + c
    let t2t = Mat::from_rows(db, da * dc, t.unfold_2()).t();
    let vt = ridge_lstsq(&z, &t2t, 1e-10)?;
    Some(vt.t())
}

/// Try to turn approximate factors into a verified algorithm:
/// normalize → snap `U`,`V` to the grid → exactly re-solve `W` → snap `W` →
/// verify the Brent equations. Returns the verified algorithm or `None`.
pub fn finalize(
    t: &MatMulTensor,
    factors: &Factors,
    name: &str,
    grid: &[f64],
) -> Option<FmmAlgorithm> {
    let mut f = factors.clone();
    rounding::normalize_columns(&mut f.u, &mut f.v, &mut f.w);
    rounding::snap_all(&mut f.u.data, grid);
    rounding::snap_all(&mut f.v.data, grid);
    let w = solve_w(t, &f.u, &f.v)?;
    let mut w = w;
    rounding::snap_all(&mut w.data, grid);
    to_algorithm(t, &f.u, &f.v, &w, name).ok()
}

/// Convert raw factor matrices into a Brent-verified [`FmmAlgorithm`].
pub fn to_algorithm(
    t: &MatMulTensor,
    u: &Mat,
    v: &Mat,
    w: &Mat,
    name: &str,
) -> Result<FmmAlgorithm, String> {
    let dims = t.dims();
    let conv = |m: &Mat| -> Result<CoeffMatrix, String> {
        for &x in &m.data {
            if !fmm_core::coeffs::is_dyadic(x) {
                return Err(format!("non-dyadic coefficient {x}"));
            }
        }
        Ok(CoeffMatrix::from_rows(m.rows, m.cols, m.data.clone()))
    };
    FmmAlgorithm::new(name, dims, conv(u)?, conv(v)?, conv(w)?)
}

/// Repair a hand-remembered algorithm guess: keep its `(U, V)`, re-solve
/// `W` exactly, snap, verify.
pub fn repair_w(guess: &FmmAlgorithm, grid: &[f64]) -> Option<FmmAlgorithm> {
    let (mt, kt, nt) = guess.dims();
    let t = MatMulTensor::new(mt, kt, nt);
    let conv = |m: &CoeffMatrix| {
        let mut data = Vec::with_capacity(m.rows() * m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                data.push(m.at(i, j));
            }
        }
        Mat::from_rows(m.rows(), m.cols(), data)
    };
    let u = conv(guess.u());
    let v = conv(guess.v());
    let mut w = solve_w(&t, &u, &v)?;
    rounding::snap_all(&mut w.data, grid);
    to_algorithm(&t, &u, &v, &w, &format!("repaired({})", guess.name())).ok()
}

/// Convenience: repair with the default grid.
pub fn repair_w_default(guess: &FmmAlgorithm) -> Option<FmmAlgorithm> {
    repair_w(guess, DEFAULT_GRID)
}

/// Try every single-factor exact repair of a near-solution: `W` from
/// `(U,V)`, `U` from `(V,W)`, `V` from `(U,W)`, then the two-factor chains
/// `V→W` and `U→W`. Returns the first verified algorithm.
pub fn repair_any(
    t: &MatMulTensor,
    factors: &Factors,
    name: &str,
    grid: &[f64],
) -> Option<FmmAlgorithm> {
    let snap = |mut m: Mat| {
        rounding::snap_all(&mut m.data, grid);
        m
    };
    // Single-factor repairs.
    if let Some(w) = solve_w(t, &factors.u, &factors.v) {
        let w = snap(w);
        if let Ok(a) = to_algorithm(t, &factors.u, &factors.v, &w, name) {
            return Some(a);
        }
    }
    if let Some(u) = solve_u(t, &factors.v, &factors.w) {
        let u = snap(u);
        if let Ok(a) = to_algorithm(t, &u, &factors.v, &factors.w, name) {
            return Some(a);
        }
    }
    if let Some(v) = solve_v(t, &factors.u, &factors.w) {
        let v = snap(v);
        if let Ok(a) = to_algorithm(t, &factors.u, &v, &factors.w, name) {
            return Some(a);
        }
    }
    // Chained repairs: refresh one factor, then re-solve another.
    if let Some(v) = solve_v(t, &factors.u, &factors.w) {
        let v = snap(v);
        if let Some(w) = solve_w(t, &factors.u, &v) {
            let w = snap(w);
            if let Ok(a) = to_algorithm(t, &factors.u, &v, &w, name) {
                return Some(a);
            }
        }
    }
    if let Some(u) = solve_u(t, &factors.v, &factors.w) {
        let u = snap(u);
        if let Some(w) = solve_w(t, &u, &factors.v) {
            let w = snap(w);
            if let Ok(a) = to_algorithm(t, &u, &factors.v, &w, name) {
                return Some(a);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_core::registry::strassen;

    fn strassen_mats() -> (MatMulTensor, Mat, Mat, Mat) {
        let s = strassen();
        let conv = |m: &CoeffMatrix| {
            let mut data = Vec::new();
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    data.push(m.at(i, j));
                }
            }
            Mat::from_rows(m.rows(), m.cols(), data)
        };
        (MatMulTensor::new(2, 2, 2), conv(s.u()), conv(s.v()), conv(s.w()))
    }

    #[test]
    fn solve_w_recovers_strassens_w() {
        let (t, u, v, w_true) = strassen_mats();
        let mut w = solve_w(&t, &u, &v).unwrap();
        rounding::snap_all(&mut w.data, DEFAULT_GRID);
        assert_eq!(w.data, w_true.data);
    }

    #[test]
    fn solve_u_and_v_recover_strassen() {
        let (t, u_true, v_true, w) = strassen_mats();
        let mut u = solve_u(&t, &v_true, &w).unwrap();
        rounding::snap_all(&mut u.data, DEFAULT_GRID);
        assert_eq!(u.data, u_true.data);
        let mut v = solve_v(&t, &u_true, &w).unwrap();
        rounding::snap_all(&mut v.data, DEFAULT_GRID);
        assert_eq!(v.data, v_true.data);
    }

    #[test]
    fn repair_w_fixes_a_corrupted_w() {
        // Corrupt several W entries; (U, V) still determine W uniquely.
        let s = strassen();
        let mut w = s.w().clone();
        w.set(0, 0, 0.0);
        w.set(3, 4, 1.0);
        w.set(2, 1, -1.0);
        let broken =
            FmmAlgorithm::new_unchecked("broken", (2, 2, 2), s.u().clone(), s.v().clone(), w);
        assert!(fmm_core::brent::verify(&broken).is_err());
        let fixed = repair_w_default(&broken).expect("repair succeeds");
        assert_eq!(fixed.rank(), 7);
        assert_eq!(fixed.dims(), (2, 2, 2));
        // Repaired W is Strassen's W again.
        for i in 0..4 {
            for j in 0..7 {
                assert_eq!(fixed.w().at(i, j), s.w().at(i, j));
            }
        }
    }

    #[test]
    fn repair_cannot_fix_a_rank_deficient_uv() {
        // Zero out a whole U column: only 6 effective products remain, and
        // rank-6 <2,2,2> decompositions do not exist, so repair must fail.
        let s = strassen();
        let mut u = s.u().clone();
        for i in 0..4 {
            u.set(i, 0, 0.0);
        }
        let broken =
            FmmAlgorithm::new_unchecked("broken", (2, 2, 2), u, s.v().clone(), s.w().clone());
        assert!(repair_w_default(&broken).is_none());
    }

    #[test]
    fn finalize_accepts_exact_factors_with_noise() {
        // Perturb Strassen's factors by small noise; finalize must recover.
        let (t, mut u, mut v, w) = strassen_mats();
        for (idx, x) in u.data.iter_mut().enumerate() {
            *x += 0.02 * ((idx % 5) as f64 - 2.0) / 2.0;
        }
        for (idx, x) in v.data.iter_mut().enumerate() {
            *x -= 0.015 * ((idx % 3) as f64 - 1.0);
        }
        let f = Factors { u, v, w };
        let algo = finalize(&t, &f, "recovered", DEFAULT_GRID).expect("finalize succeeds");
        assert_eq!(algo.rank(), 7);
    }
}
