//! Searching for fast matrix multiplication algorithms.
//!
//! The paper consumes algorithms found by others (Benson–Ballard's numerical
//! search, Smirnov's constructions) and lists coefficient search as future
//! work (§6). This crate implements the standard discovery pipeline those
//! sources used, so the repository is self-contained:
//!
//! 1. Build the `<m̃,k̃,ñ>` matrix multiplication tensor ([`tensor`]).
//! 2. Run alternating least squares (ALS) with ridge regularization to find
//!    an approximate rank-`R` decomposition ([`als`]).
//! 3. Round factor entries onto the dyadic grid `{0, ±1/2, ±1, ±2}`
//!    ([`rounding`]).
//! 4. Repair: with two factors fixed, the third is the solution of a linear
//!    system — solve it exactly and verify the Brent equations ([`repair`]).
//! 5. Orchestrate restarts/budgets and emit registry JSON ([`runner`],
//!    [`io`]).
//!
//! Every "discovery" is re-verified through `FmmAlgorithm::new`, so this
//! pipeline can never hand the registry a wrong algorithm.

pub mod als;
pub mod anneal;
pub mod flip;
pub mod io;
pub mod linalg;
pub mod repair;
pub mod rounding;
pub mod runner;
pub mod tensor;

pub use runner::{search, SearchConfig, SearchOutcome};
