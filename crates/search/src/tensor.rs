//! The `<m̃, k̃, ñ>` matrix multiplication tensor.

/// Dense order-3 tensor `T[a, b, c]` with mode sizes
/// `(m̃k̃, k̃ñ, m̃ñ)`, where `T[(i,κ), (κ',j), (i',j')] = δ_{κκ'}δ_{ii'}δ_{jj'}`
/// — the target of the rank decomposition (a rank-R decomposition *is* a
/// `[[U,V,W]]` algorithm).
#[derive(Clone, Debug, PartialEq)]
pub struct MatMulTensor {
    mt: usize,
    kt: usize,
    nt: usize,
    /// Dense entries, index `(a * dim_b + b) * dim_c + c`.
    data: Vec<f64>,
}

impl MatMulTensor {
    /// Build the tensor for partition dims `(m̃, k̃, ñ)`.
    pub fn new(mt: usize, kt: usize, nt: usize) -> Self {
        assert!(mt >= 1 && kt >= 1 && nt >= 1);
        let (da, db, dc) = (mt * kt, kt * nt, mt * nt);
        let mut data = vec![0.0; da * db * dc];
        for i in 0..mt {
            for ka in 0..kt {
                for j in 0..nt {
                    let a = i * kt + ka;
                    let b = ka * nt + j;
                    let c = i * nt + j;
                    data[(a * db + b) * dc + c] = 1.0;
                }
            }
        }
        Self { mt, kt, nt, data }
    }

    /// Partition dims.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.mt, self.kt, self.nt)
    }

    /// Mode sizes `(m̃k̃, k̃ñ, m̃ñ)`.
    pub fn mode_sizes(&self) -> (usize, usize, usize) {
        (self.mt * self.kt, self.kt * self.nt, self.mt * self.nt)
    }

    /// Entry `T[a, b, c]`.
    pub fn at(&self, a: usize, b: usize, c: usize) -> f64 {
        let (_, db, dc) = self.mode_sizes();
        self.data[(a * db + b) * dc + c]
    }

    /// Number of ones (`= m̃k̃ñ`).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Mode-1 unfolding: `(da) x (db*dc)` row-major, column index `b*dc + c`.
    pub fn unfold_1(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Mode-2 unfolding: `(db) x (da*dc)`, column index `a*dc + c`.
    pub fn unfold_2(&self) -> Vec<f64> {
        let (da, db, dc) = self.mode_sizes();
        let mut out = vec![0.0; da * db * dc];
        for a in 0..da {
            for b in 0..db {
                for c in 0..dc {
                    out[b * (da * dc) + a * dc + c] = self.at(a, b, c);
                }
            }
        }
        out
    }

    /// Mode-3 unfolding: `(dc) x (da*db)`, column index `a*db + b`.
    pub fn unfold_3(&self) -> Vec<f64> {
        let (da, db, dc) = self.mode_sizes();
        let mut out = vec![0.0; da * db * dc];
        for a in 0..da {
            for b in 0..db {
                for c in 0..dc {
                    out[c * (da * db) + a * db + b] = self.at(a, b, c);
                }
            }
        }
        out
    }

    /// Squared Frobenius distance to a rank-R factor triple
    /// (`U: da x R`, `V: db x R`, `W: dc x R`, all row-major).
    pub fn residual_sq(&self, u: &[f64], v: &[f64], w: &[f64], r: usize) -> f64 {
        let (da, db, dc) = self.mode_sizes();
        assert_eq!(u.len(), da * r);
        assert_eq!(v.len(), db * r);
        assert_eq!(w.len(), dc * r);
        let mut acc = 0.0;
        for a in 0..da {
            for b in 0..db {
                // Precompute u_a .* v_b once per (a, b).
                for c in 0..dc {
                    let mut approx = 0.0;
                    for rr in 0..r {
                        approx += u[a * r + rr] * v[b * r + rr] * w[c * r + rr];
                    }
                    let d = self.at(a, b, c) - approx;
                    acc += d * d;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_has_mkn_ones() {
        let t = MatMulTensor::new(2, 2, 2);
        assert_eq!(t.nnz(), 8);
        let t333 = MatMulTensor::new(3, 3, 3);
        assert_eq!(t333.nnz(), 27);
    }

    #[test]
    fn entries_follow_delta_pattern() {
        let t = MatMulTensor::new(2, 3, 2);
        // (i,κ)=(1,2) -> a = 1*3+2 = 5; (κ,j)=(2,1) -> b = 2*2+1 = 5;
        // (i,j)=(1,1) -> c = 1*2+1 = 3.
        assert_eq!(t.at(5, 5, 3), 1.0);
        // Mismatched κ: (κ',j)=(1,1) -> b = 3.
        assert_eq!(t.at(5, 3, 3), 0.0);
    }

    #[test]
    fn unfoldings_are_consistent() {
        let t = MatMulTensor::new(2, 2, 3);
        let (da, db, dc) = t.mode_sizes();
        let u1 = t.unfold_1();
        let u2 = t.unfold_2();
        let u3 = t.unfold_3();
        for a in 0..da {
            for b in 0..db {
                for c in 0..dc {
                    let v = t.at(a, b, c);
                    assert_eq!(u1[a * (db * dc) + b * dc + c], v);
                    assert_eq!(u2[b * (da * dc) + a * dc + c], v);
                    assert_eq!(u3[c * (da * db) + a * db + b], v);
                }
            }
        }
    }

    #[test]
    fn residual_of_exact_decomposition_is_zero() {
        // Classical <1,1,1>: u=v=w=[1].
        let t = MatMulTensor::new(1, 1, 1);
        assert_eq!(t.residual_sq(&[1.0], &[1.0], &[1.0], 1), 0.0);
        // Strassen as factors: residual must be exactly 0.
        let s = fmm_core::registry::strassen();
        let t222 = MatMulTensor::new(2, 2, 2);
        let to_row_major = |m: &fmm_core::CoeffMatrix| -> Vec<f64> {
            let mut out = Vec::with_capacity(m.rows() * m.cols());
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    out.push(m.at(i, j));
                }
            }
            out
        };
        let res =
            t222.residual_sq(&to_row_major(s.u()), &to_row_major(s.v()), &to_row_major(s.w()), 7);
        assert_eq!(res, 0.0);
    }

    #[test]
    fn residual_detects_wrong_factors() {
        let t = MatMulTensor::new(1, 1, 1);
        assert!(t.residual_sq(&[0.5], &[1.0], &[1.0], 1) > 0.2);
    }
}
