//! Search orchestration: restarts, budgets, and the ALS → round → repair
//! funnel.

use crate::als::{self, AlsOptions, Factors};
use crate::repair;
use crate::rounding::{self, DEFAULT_GRID};
use crate::tensor::MatMulTensor;
use fmm_core::FmmAlgorithm;
use std::time::{Duration, Instant};

/// Configuration of one search campaign.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Partition dims to decompose.
    pub dims: (usize, usize, usize),
    /// Target rank `R`.
    pub rank: usize,
    /// Random restarts to attempt.
    pub restarts: usize,
    /// ALS sweeps per restart.
    pub sweeps: usize,
    /// Wall-clock budget; the search stops cleanly when exceeded.
    pub budget: Duration,
    /// Base RNG seed (restart `i` uses `seed + i`).
    pub seed: u64,
    /// Residual below which a finalize (round + repair + verify) attempt is
    /// made.
    pub finalize_threshold: f64,
}

impl SearchConfig {
    /// A quick configuration for easy targets (used by tests/examples).
    pub fn quick(dims: (usize, usize, usize), rank: usize) -> Self {
        Self {
            dims,
            rank,
            restarts: 50,
            sweeps: 400,
            budget: Duration::from_secs(30),
            seed: 0xF33D,
            finalize_threshold: 0.5,
        }
    }
}

/// Result of a search campaign.
#[derive(Debug)]
pub struct SearchOutcome {
    /// A verified algorithm, if one was found.
    pub algorithm: Option<FmmAlgorithm>,
    /// Restarts actually attempted.
    pub restarts_run: usize,
    /// Best residual seen across restarts (diagnostic).
    pub best_residual: f64,
    /// Total wall-clock spent.
    pub elapsed: Duration,
}

/// Run a search campaign.
///
/// Orchestrates the two engines: simulated annealing over discrete
/// coefficients first (the more reliable discoverer — it rediscovers
/// Strassen in seconds), then the continuous ALS → quantize → repair
/// pipeline with whatever budget remains.
pub fn search(config: &SearchConfig) -> SearchOutcome {
    let start = Instant::now();
    // Engine 1: discrete annealing with half the budget.
    let mut anneal_cfg = crate::anneal::AnnealConfig::new(config.dims, config.rank);
    anneal_cfg.budget = config.budget / 2;
    anneal_cfg.restarts = config.restarts.max(1);
    anneal_cfg.seed = config.seed;
    let annealed = crate::anneal::anneal(&anneal_cfg);
    if let Some(algo) = annealed.algorithm {
        return SearchOutcome {
            algorithm: Some(algo),
            restarts_run: annealed.restarts_run,
            best_residual: 0.0,
            elapsed: start.elapsed(),
        };
    }
    // Engine 2: continuous ALS pipeline.
    let mut out = search_als(config, config.budget.saturating_sub(start.elapsed()));
    out.restarts_run += annealed.restarts_run;
    out.best_residual = out.best_residual.min(annealed.best_objective);
    out.elapsed = start.elapsed();
    out
}

/// The ALS → quantization → exact-repair engine on its own.
pub fn search_als(config: &SearchConfig, budget: Duration) -> SearchOutcome {
    let t = MatMulTensor::new(config.dims.0, config.dims.1, config.dims.2);
    let start = Instant::now();
    let mut best_residual = f64::INFINITY;
    let mut restarts_run = 0;
    let name = format!("discovered<{},{},{}>", config.dims.0, config.dims.1, config.dims.2);
    let config = &SearchConfig { budget, ..config.clone() };

    for attempt in 0..config.restarts {
        if start.elapsed() > config.budget {
            break;
        }
        restarts_run += 1;
        let mut f = Factors::random(&t, config.rank, config.seed + attempt as u64);
        // Stage 1 — annealed ridge ALS: strong regularization early (keeps
        // entries tame), weak late (lets the residual reach zero).
        let stages: [(f64, usize); 3] =
            [(1e-2, config.sweeps / 4), (1e-3, config.sweeps / 4), (1e-6, config.sweeps / 2)];
        let mut res = f64::INFINITY;
        for (ridge, sweeps) in stages {
            let opts = AlsOptions { ridge, clamp: 2.5 };
            res = als::run(&t, &mut f, &opts, sweeps, 1e-10);
            if start.elapsed() > config.budget {
                break;
            }
        }
        best_residual = best_residual.min(res);
        if res >= config.finalize_threshold {
            continue;
        }
        // Stage 2 — quantization-regularized ALS: the continuous solution
        // sits on a scaling orbit; ramping the proximal pull `mu` walks it
        // to a discrete representative without leaving the residual basin.
        rounding::normalize_columns(&mut f.u, &mut f.v, &mut f.w);
        let opts = AlsOptions { ridge: 1e-9, clamp: 2.5 };
        let mut mu = 0.005;
        while mu < 4.0 {
            for _ in 0..6 {
                if !als::sweep_discrete(&t, &mut f, &opts, mu, DEFAULT_GRID) {
                    break;
                }
            }
            let disc = als::discreteness(&f, DEFAULT_GRID);
            let res_now = f.residual_sq(&t);
            best_residual = best_residual.min(res_now);
            if disc < 0.03 && res_now < 0.01 {
                if let Some(algo) = repair::finalize(&t, &f, &name, DEFAULT_GRID) {
                    if algo.rank() == config.rank {
                        return SearchOutcome {
                            algorithm: Some(algo),
                            restarts_run,
                            best_residual: res_now,
                            elapsed: start.elapsed(),
                        };
                    }
                }
            }
            if start.elapsed() > config.budget {
                break;
            }
            mu *= 1.7;
        }
        // Last-ditch finalize even if the discreteness test never fired.
        if let Some(algo) = repair::finalize(&t, &f, &name, DEFAULT_GRID) {
            if algo.rank() == config.rank {
                let res_now = f.residual_sq(&t);
                return SearchOutcome {
                    algorithm: Some(algo),
                    restarts_run,
                    best_residual: res_now,
                    elapsed: start.elapsed(),
                };
            }
        }
    }
    SearchOutcome { algorithm: None, restarts_run, best_residual, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_classical_rank_decomposition_immediately() {
        // <2,2,2> at rank 8 — abundant solutions, a couple of restarts max.
        let mut config = SearchConfig::quick((2, 2, 2), 8);
        config.restarts = 10;
        config.budget = Duration::from_secs(20);
        let out = search(&config);
        let algo = out.algorithm.expect("rank-8 <2,2,2> must be found");
        assert_eq!(algo.rank(), 8);
        assert_eq!(algo.dims(), (2, 2, 2));
    }

    #[test]
    fn finds_strassen_rank_7() {
        // The flagship sanity check of the whole pipeline: rediscover
        // Strassen's rank-7 decomposition from random starts. The campaign
        // is seeded for determinism — per-restart success probability is
        // about 1%, and this seed reaches a solution within ~100 restarts.
        // Debug builds run the annealer ~20x slower; skip there (covered by
        // release CI and `cargo test --release`).
        if cfg!(debug_assertions) {
            return;
        }
        let mut config = SearchConfig::quick((2, 2, 2), 7);
        config.restarts = 500;
        config.seed = 0xA11EA1;
        config.budget = Duration::from_secs(120);
        let out = search(&config);
        let algo = out.algorithm.unwrap_or_else(|| {
            panic!(
                "rank-7 <2,2,2> not found in {} restarts (best residual {})",
                out.restarts_run, out.best_residual
            )
        });
        assert_eq!(algo.rank(), 7);
    }

    #[test]
    fn rank_6_strassen_is_never_found() {
        // Rank(<2,2,2>) = 7 is a theorem; the search must come up empty.
        let mut config = SearchConfig::quick((2, 2, 2), 6);
        config.restarts = 5;
        config.sweeps = 150;
        config.budget = Duration::from_secs(5);
        let out = search(&config);
        assert!(out.algorithm.is_none());
        assert!(out.best_residual > 0.1, "residual {}", out.best_residual);
    }

    #[test]
    fn budget_is_respected() {
        let mut config = SearchConfig::quick((3, 3, 3), 23);
        config.budget = Duration::from_millis(300);
        config.restarts = 1_000_000;
        let out = search(&config);
        assert!(out.elapsed < Duration::from_secs(15));
        assert!(out.restarts_run < 1_000_000);
    }
}
