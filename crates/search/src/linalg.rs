//! Minimal dense linear algebra for the ALS solver: row-major matrices,
//! Cholesky factorization of SPD systems, and regularized least squares via
//! normal equations. Sizes here are tiny (tens of rows/columns), so clarity
//! beats asymptotics.
//!
//! Index-style loops are kept deliberately (they mirror the textbook
//! formulas), hence the lint allowance.
#![allow(clippy::needless_range_loop)]

/// Row-major dense matrix of `f64` (no dyadic restriction, unlike
/// `fmm_core::CoeffMatrix`).
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major entries.
    pub data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// From row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Entry accessor.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul dims");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for p in 0..self.cols {
                let a = self.at(i, p);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.at(p, j);
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.at(i, j));
            }
        }
        out
    }

    /// Gram matrix `selfᵀ·self` (`cols x cols`, symmetric).
    pub fn gram(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.cols);
        for p in 0..self.rows {
            let row = &self.data[p * self.cols..(p + 1) * self.cols];
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out.data[i * self.cols + j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out.data[i * self.cols + j] = out.data[j * self.cols + i];
            }
        }
        out
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }
}

/// Cholesky factorization of an SPD matrix (in place lower factor).
/// Returns `None` if the matrix is not positive definite.
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor `a` (must be square, symmetric, positive definite).
    pub fn new(a: &Mat) -> Option<Self> {
        assert_eq!(a.rows, a.cols, "Cholesky needs a square matrix");
        let n = a.rows;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.at(i, j);
                for p in 0..j {
                    sum -= l.at(i, p) * l.at(j, p);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.at(j, j));
                }
            }
        }
        Some(Self { l })
    }

    /// Solve `A x = b` for one right-hand side (length `n`).
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows;
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for p in 0..i {
                y[i] -= self.l.at(i, p) * y[p];
            }
            y[i] /= self.l.at(i, i);
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for p in i + 1..n {
                x[i] -= self.l.at(p, i) * x[p];
            }
            x[i] /= self.l.at(i, i);
        }
        x
    }

    /// Solve `A X = B` column-by-column (`B` is `n x m`).
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows, self.l.rows);
        let mut out = Mat::zeros(b.rows, b.cols);
        let mut col = vec![0.0; b.rows];
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b.at(i, j);
            }
            let x = self.solve_vec(&col);
            for i in 0..b.rows {
                out.set(i, j, x[i]);
            }
        }
        out
    }
}

/// Regularized least squares: minimize `||Z x - y||² + ridge·||x||²` for
/// every column `y` of `rhs`, i.e. solve `(ZᵀZ + ridge·I) X = Zᵀ·rhs`.
///
/// Returns `X` with shape `(z.cols, rhs.cols)`.
pub fn ridge_lstsq(z: &Mat, rhs: &Mat, ridge: f64) -> Option<Mat> {
    assert_eq!(z.rows, rhs.rows, "ridge_lstsq: row mismatch");
    let mut gram = z.gram();
    for i in 0..gram.rows {
        gram.data[i * gram.cols + i] += ridge;
    }
    let chol = Cholesky::new(&gram)?;
    let zty = z.t().matmul(rhs);
    Some(chol.solve_mat(&zty))
}

/// Proximal least squares toward a prior: minimize
/// `||Z x - y||² + ridge·||x||² + mu·||x - prior||²`, i.e. solve
/// `(ZᵀZ + (ridge+mu)·I) X = Zᵀ·rhs + mu·prior`.
///
/// Used by quantization-regularized ALS: `prior` is the entrywise snap of
/// the current factor onto the dyadic grid, and ramping `mu` drags the
/// continuous solution onto a discrete one without leaving the residual
/// basin.
pub fn ridge_lstsq_with_prior(z: &Mat, rhs: &Mat, ridge: f64, mu: f64, prior: &Mat) -> Option<Mat> {
    assert_eq!(z.rows, rhs.rows, "ridge_lstsq_with_prior: row mismatch");
    assert_eq!(prior.rows, z.cols, "prior shape");
    assert_eq!(prior.cols, rhs.cols, "prior shape");
    let mut gram = z.gram();
    for i in 0..gram.rows {
        gram.data[i * gram.cols + i] += ridge + mu;
    }
    let chol = Cholesky::new(&gram)?;
    let mut zty = z.t().matmul(rhs);
    for (dst, p) in zty.data.iter_mut().zip(prior.data.iter()) {
        *dst += mu * p;
    }
    Some(chol.solve_mat(&zty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_and_transpose() {
        let a = Mat::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(a.t().at(2, 1), 6.0);
    }

    #[test]
    fn gram_is_xtx() {
        let a = Mat::from_rows(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]);
        let g = a.gram();
        let expect = a.t().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g.at(i, j) - expect.at(i, j)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = Mᵀ M + I is SPD.
        let m = Mat::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let mut a = m.gram();
        for i in 0..3 {
            a.data[i * 3 + i] += 1.0;
        }
        let chol = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a.at(i, j) * x_true[j];
            }
        }
        let x = chol.solve_vec(&b);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn ridge_lstsq_recovers_exact_solution() {
        // Overdetermined consistent system.
        let z = Mat::from_rows(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]);
        let x_true = Mat::from_rows(2, 1, vec![3.0, -1.0]);
        let rhs = z.matmul(&x_true);
        let x = ridge_lstsq(&z, &rhs, 1e-12).unwrap();
        assert!((x.at(0, 0) - 3.0).abs() < 1e-6);
        assert!((x.at(1, 0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let z = Mat::from_rows(2, 1, vec![1.0, 1.0]);
        let rhs = Mat::from_rows(2, 1, vec![1.0, 1.0]);
        let x_small = ridge_lstsq(&z, &rhs, 1e-9).unwrap().at(0, 0);
        let x_big = ridge_lstsq(&z, &rhs, 10.0).unwrap().at(0, 0);
        assert!(x_small > 0.99);
        assert!(x_big < 0.2);
    }
}
