//! Alternating least squares on the matrix multiplication tensor.
//!
//! Each sweep solves three regularized linear least-squares problems: with
//! `V, W` fixed, the optimal `U` minimizes
//! `||T_(1) - U·(V ⊙ W)ᵀ||_F² + ridge·||U||²` (`⊙` = Khatri–Rao, columnwise
//! Kronecker), and cyclically for `V` and `W`. This is the workhorse
//! Benson–Ballard used to find the algorithm family the paper benchmarks.

use crate::linalg::{ridge_lstsq, Mat};
use crate::tensor::MatMulTensor;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A (possibly approximate) rank-`r` factor triple; row-major factors.
#[derive(Clone, Debug)]
pub struct Factors {
    /// `(m̃k̃) x R`.
    pub u: Mat,
    /// `(k̃ñ) x R`.
    pub v: Mat,
    /// `(m̃ñ) x R`.
    pub w: Mat,
}

impl Factors {
    /// Random initialization with entries in `[-1, 1]`.
    pub fn random(t: &MatMulTensor, r: usize, seed: u64) -> Self {
        let (da, db, dc) = t.mode_sizes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = |rows: usize| {
            Mat::from_rows(rows, r, (0..rows * r).map(|_| rng.gen_range(-1.0..1.0)).collect())
        };
        Self { u: gen(da), v: gen(db), w: gen(dc) }
    }

    /// Rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.u.cols
    }

    /// Squared Frobenius residual against `t`.
    pub fn residual_sq(&self, t: &MatMulTensor) -> f64 {
        t.residual_sq(&self.u.data, &self.v.data, &self.w.data, self.rank())
    }
}

/// Khatri–Rao product: column `r` of the result is `x[:,r] ⊗ y[:,r]`
/// (shape `(x.rows*y.rows) x R`).
pub fn khatri_rao(x: &Mat, y: &Mat) -> Mat {
    assert_eq!(x.cols, y.cols, "khatri_rao: rank mismatch");
    let r = x.cols;
    let mut out = Mat::zeros(x.rows * y.rows, r);
    for i in 0..x.rows {
        for j in 0..y.rows {
            let row = i * y.rows + j;
            for rr in 0..r {
                out.data[row * r + rr] = x.at(i, rr) * y.at(j, rr);
            }
        }
    }
    out
}

/// ALS hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AlsOptions {
    /// Ridge regularization added to every normal-equation solve.
    pub ridge: f64,
    /// Clamp factor entries to `[-limit, limit]` after each sweep
    /// (discourages the wild coefficients that never round to dyadics).
    pub clamp: f64,
}

impl Default for AlsOptions {
    fn default() -> Self {
        Self { ridge: 1e-4, clamp: 4.0 }
    }
}

/// One ALS sweep (update `U`, then `V`, then `W`) in place.
/// Returns `false` if a solve failed (singular Gram matrix).
pub fn sweep(t: &MatMulTensor, f: &mut Factors, opts: &AlsOptions) -> bool {
    sweep_discrete(t, f, opts, 0.0, &[])
}

/// One quantization-regularized sweep: each factor update carries a
/// proximal pull of weight `mu` toward the entrywise snap of the current
/// factor onto `grid` (no pull when `mu == 0`).
pub fn sweep_discrete(
    t: &MatMulTensor,
    f: &mut Factors,
    opts: &AlsOptions,
    mu: f64,
    grid: &[f64],
) -> bool {
    let (da, db, dc) = t.mode_sizes();
    let solve = |z: &Mat, rhs: &Mat, cur: &Mat| -> Option<Mat> {
        if mu > 0.0 {
            let mut prior = cur.t();
            crate::rounding::snap_all(&mut prior.data, grid);
            crate::linalg::ridge_lstsq_with_prior(z, rhs, opts.ridge, mu, &prior)
        } else {
            ridge_lstsq(z, rhs, opts.ridge)
        }
    };
    // Mode 1: rows of T1 are indexed by a; columns by (b, c).
    // T1ᵀ has shape (db*dc) x da; Z = V ⊙ W matches its rows.
    let t1t = transpose_unfold(&t.unfold_1(), da, db * dc);
    let z1 = khatri_rao(&f.v, &f.w);
    let Some(u_new) = solve(&z1, &t1t, &f.u) else { return false };
    f.u = clamp(u_new.t(), opts.clamp);

    let t2t = transpose_unfold(&t.unfold_2(), db, da * dc);
    let z2 = khatri_rao(&f.u, &f.w);
    let Some(v_new) = solve(&z2, &t2t, &f.v) else { return false };
    f.v = clamp(v_new.t(), opts.clamp);

    let t3t = transpose_unfold(&t.unfold_3(), dc, da * db);
    let z3 = khatri_rao(&f.u, &f.v);
    let Some(w_new) = solve(&z3, &t3t, &f.w) else { return false };
    f.w = clamp(w_new.t(), opts.clamp);
    true
}

/// Largest distance of any factor entry to the grid — 0 when the triple is
/// fully discrete.
pub fn discreteness(f: &Factors, grid: &[f64]) -> f64 {
    let mut worst = 0.0_f64;
    for m in [&f.u, &f.v, &f.w] {
        for &x in &m.data {
            worst = worst.max((x - crate::rounding::snap(x, grid)).abs());
        }
    }
    worst
}

/// Run up to `max_sweeps` sweeps, stopping early below `target_residual`.
/// Returns the final squared residual.
pub fn run(
    t: &MatMulTensor,
    f: &mut Factors,
    opts: &AlsOptions,
    max_sweeps: usize,
    target_residual: f64,
) -> f64 {
    let mut res = f.residual_sq(t);
    for _ in 0..max_sweeps {
        if res <= target_residual {
            break;
        }
        if !sweep(t, f, opts) {
            break;
        }
        res = f.residual_sq(t);
    }
    res
}

fn transpose_unfold(unfolded: &[f64], rows: usize, cols: usize) -> Mat {
    let m = Mat::from_rows(rows, cols, unfolded.to_vec());
    m.t()
}

fn clamp(mut m: Mat, limit: f64) -> Mat {
    for x in &mut m.data {
        *x = x.clamp(-limit, limit);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn khatri_rao_columns_are_kron() {
        let x = Mat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = Mat::from_rows(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0]);
        let z = khatri_rao(&x, &y);
        assert_eq!(z.rows, 6);
        // Column 0: x[:,0] ⊗ y[:,0] = [1,0,2, 3,0,6].
        let col0: Vec<f64> = (0..6).map(|i| z.at(i, 0)).collect();
        assert_eq!(col0, vec![1.0, 0.0, 2.0, 3.0, 0.0, 6.0]);
    }

    #[test]
    fn als_at_full_rank_converges_fast() {
        // <2,2,2> at rank 8 (classical rank): ALS must reach a residual on
        // the order of the ridge floor.
        let t = MatMulTensor::new(2, 2, 2);
        let mut f = Factors::random(&t, 8, 42);
        let res = run(&t, &mut f, &AlsOptions { ridge: 1e-7, clamp: 8.0 }, 200, 1e-8);
        assert!(res < 1e-3, "residual {res}");
    }

    #[test]
    fn als_monotonically_decreases_residual_mostly() {
        let t = MatMulTensor::new(2, 2, 2);
        let mut f = Factors::random(&t, 7, 7);
        let opts = AlsOptions::default();
        let r0 = f.residual_sq(&t);
        sweep(&t, &mut f, &opts);
        let r1 = f.residual_sq(&t);
        assert!(r1 < r0, "first sweep must improve: {r0} -> {r1}");
    }

    #[test]
    fn exact_factors_stay_fixed() {
        // Feed Strassen's exact factors: residual 0 and a sweep keeps it ~0.
        let t = MatMulTensor::new(2, 2, 2);
        let s = fmm_core::registry::strassen();
        let conv = |m: &fmm_core::CoeffMatrix| {
            let mut data = Vec::new();
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    data.push(m.at(i, j));
                }
            }
            Mat::from_rows(m.rows(), m.cols(), data)
        };
        let mut f = Factors { u: conv(s.u()), v: conv(s.v()), w: conv(s.w()) };
        assert_eq!(f.residual_sq(&t), 0.0);
        sweep(&t, &mut f, &AlsOptions { ridge: 1e-10, clamp: 4.0 });
        assert!(f.residual_sq(&t) < 1e-12);
    }
}
