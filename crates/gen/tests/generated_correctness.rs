//! The pre-generated (checked-in) modules must compute the same product as
//! the interpreted executor and the reference GEMM.

use fmm_dense::{fill, norms, Matrix};
use fmm_gemm::{BlockingParams, GemmWorkspace};
use fmm_gen::generated::{strassen_1l, strassen_2l};

fn check(
    run: impl Fn(
        fmm_dense::MatMut<'_>,
        fmm_dense::MatRef<'_>,
        fmm_dense::MatRef<'_>,
        &BlockingParams,
        &mut GemmWorkspace,
    ),
    m: usize,
    k: usize,
    n: usize,
    levels: usize,
) {
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut c = fill::bench_workload(m, n, 3);
    let mut c_ref = c.clone();
    let params = BlockingParams::tiny();
    let mut ws = GemmWorkspace::for_params(&params);
    run(c.as_mut(), a.as_ref(), b.as_ref(), &params, &mut ws);
    fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
    let err = norms::max_abs_diff(c.as_ref(), c_ref.as_ref());
    let tol = norms::fmm_tolerance(k, levels);
    assert!(err < tol, "m={m} k={k} n={n}: err={err} tol={tol}");
}

#[test]
fn generated_one_level_strassen_is_correct() {
    for (m, k, n) in [(16, 16, 16), (32, 18, 26), (2, 2, 2), (64, 10, 40)] {
        check(strassen_1l::strassen_1l_abc, m, k, n, 1);
    }
}

#[test]
fn generated_two_level_strassen_is_correct() {
    for (m, k, n) in [(16, 16, 16), (32, 20, 28), (4, 4, 4)] {
        check(strassen_2l::strassen_2l_abc, m, k, n, 2);
    }
}

#[test]
fn generated_matches_interpreted_executor_exactly() {
    // Same plan, same blocking, same kernel: the generated module and the
    // interpreted ABC executor perform identical arithmetic.
    use fmm_core::prelude::*;
    let (m, k, n) = (24, 16, 32);
    let a = fill::bench_workload(m, k, 7);
    let b = fill::bench_workload(k, n, 8);
    let params = BlockingParams::tiny();

    let mut c_gen = Matrix::zeros(m, n);
    let mut ws = GemmWorkspace::for_params(&params);
    strassen_1l::strassen_1l_abc(c_gen.as_mut(), a.as_ref(), b.as_ref(), &params, &mut ws);

    let mut c_int = Matrix::zeros(m, n);
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let mut ctx = FmmContext::new(params);
    fmm_execute(c_int.as_mut(), a.as_ref(), b.as_ref(), &plan, Variant::Abc, &mut ctx);

    assert_eq!(c_gen, c_int, "generated and interpreted paths must agree exactly");
}

#[test]
#[should_panic(expected = "multiple of 2")]
fn generated_module_rejects_indivisible_sizes() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(4, 4);
    let mut c = Matrix::zeros(3, 4);
    let params = BlockingParams::tiny();
    let mut ws = GemmWorkspace::for_params(&params);
    strassen_1l::strassen_1l_abc(c.as_mut(), a.as_ref(), b.as_ref(), &params, &mut ws);
}
