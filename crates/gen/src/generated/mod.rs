//! Pre-generated modules, checked in both as golden files for the emitter
//! and as compiled, testable artifacts of the code-generation path.

pub mod strassen_1l;
pub mod strassen_2l;
