//! Pre-generated modules, checked in both as golden files for the emitter
//! and as compiled, testable artifacts of the code-generation path.
//!
//! The skip attributes keep `cargo fmt` from rewriting the files: their
//! byte-exact layout is the emitter's contract (golden-file tested), so
//! they must stay exactly as `cargo run -p fmm-gen --bin regen` wrote them.

#[rustfmt::skip]
pub mod strassen_1l;
#[rustfmt::skip]
pub mod strassen_2l;
