//! Source-code generator for specialized FMM implementations (paper §4.1).
//!
//! The runtime executors in `fmm-core` interpret `[[U,V,W]]` coefficients.
//! This crate emits the artifact the paper's code generator produces: a
//! standalone, human-readable Rust module for a *fixed* plan and variant,
//! with the coefficient loops fully unrolled —
//!
//! * one packing routine per product `r` that packs
//!   `Σ U[i,r]·A_i` / `Σ V[j,r]·B_j` with the term list baked in;
//! * one epilogue per product listing its `C_p += W[p,r]·M_r` updates;
//! * a driver that sequences the `R_L` products.
//!
//! Generated modules depend only on `fmm-dense` and `fmm-gemm` and are
//! verified two ways: a golden-file test pins the generated Strassen module
//! byte-for-byte, and an integration test compiles-and-runs a generated
//! module against the interpreted executor (see `tests/` at the workspace
//! root and the pre-generated copy under `src/generated/`).

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod emit;
pub mod generated;

pub use emit::{generate_module, GenSpec};
