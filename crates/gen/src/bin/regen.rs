//! Regenerates the checked-in modules under `src/generated/`.
//! Run from the workspace root: `cargo run -p fmm-gen --bin regen`.

use fmm_core::{registry, FmmPlan};
use fmm_gen::emit::{generate_module, GenSpec};

fn main() {
    let targets = [
        ("strassen_1l_abc", FmmPlan::new(vec![registry::strassen()]), "strassen_1l.rs"),
        ("strassen_2l_abc", FmmPlan::uniform(registry::strassen(), 2), "strassen_2l.rs"),
    ];
    for (fn_name, plan, file) in targets {
        let src = generate_module(&GenSpec::new(fn_name, plan));
        let path = std::path::Path::new("crates/gen/src/generated").join(file);
        std::fs::write(&path, src).unwrap();
        println!("wrote {}", path.display());
    }
}
