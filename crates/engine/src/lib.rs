//! `fmm-engine` — a long-lived, cached, model-routed FMM execution engine.
//!
//! [`fmm_core`] executes one `(plan, variant)`; [`fmm_model`] ranks
//! candidates for a problem shape. This crate glues them into the object a
//! service actually wants: an [`FmmEngine`] that is created once and then
//! serves `C += A·B` traffic with
//!
//! * a **decision cache** — the model ranking (the paper's §4.4
//!   poly-algorithm) runs once per `(m, k, n)` shape and is remembered in
//!   a shape-keyed LRU;
//! * a **plan cache** — `FmmPlan` Kronecker composition runs once per
//!   `(algorithm, levels)` pair, shared via `Arc` by every decision that
//!   routes to it;
//! * a **context pool** — per-caller [`FmmContext`]s (preplanned workspace
//!   arena + packing buffers) are recycled, so a warm engine performs no
//!   heap allocation for FMM temporaries;
//! * built-in **counters** ([`EngineStats`]) that make all three claims
//!   testable rather than aspirational.
//!
//! `FmmEngine::multiply` takes `&self` and is safe to call from many
//! threads at once; each call checks out its own context.
//!
//! # Example
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//! use fmm_engine::FmmEngine;
//!
//! let engine = FmmEngine::with_defaults();
//! let a = fill::bench_workload(96, 64, 1);
//! let b = fill::bench_workload(64, 80, 2);
//! let mut c = Matrix::zeros(96, 80);
//! engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
//! engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
//! assert_eq!(engine.stats().decision_hits, 1); // second call reused the routing
//! ```

mod lru;

pub use lru::LruCache;

use fmm_core::executor::ArenaLayout;
use fmm_core::registry::Registry;
use fmm_core::{fmm_execute, fmm_execute_parallel, FmmContext, FmmPlan, Variant};
use fmm_dense::{MatMut, MatRef};
use fmm_gemm::BlockingParams;
use fmm_model::{rank_candidates, ArchParams, Impl};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the engine chooses a `(plan, variant)` per shape.
#[derive(Clone, Debug)]
pub enum Routing {
    /// The paper's §4.4 poly-algorithm: rank every registry `(plan,
    /// variant)` candidate plus plain GEMM with the performance model and
    /// run the best prediction.
    Model,
    /// Always run `levels` nested applications of the registry algorithm
    /// with partition dims `dims`, as `variant`. For workloads with known
    /// structure, and for tests that need a deterministic FMM route.
    Pinned {
        /// Partition dims of the registry algorithm, e.g. `(2, 2, 2)`.
        dims: (usize, usize, usize),
        /// Nesting depth (1 or 2 are practical).
        levels: usize,
        /// Implementation strategy.
        variant: Variant,
    },
}

/// Construction-time configuration of an [`FmmEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Architecture parameters for model-guided routing.
    pub arch: ArchParams,
    /// GEMM blocking parameters for every execution.
    pub params: BlockingParams,
    /// Use the rayon-parallel executors.
    pub parallel: bool,
    /// Maximum plan levels the model considers (1 or 2 are practical).
    pub max_levels: usize,
    /// Routing policy.
    pub routing: Routing,
    /// Capacity of the shape-keyed decision LRU.
    pub decision_capacity: usize,
    /// Capacity of the composed-plan LRU.
    pub plan_capacity: usize,
    /// Idle contexts kept pooled (returns beyond this are dropped).
    pub max_pooled_contexts: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            arch: ArchParams::paper_machine(),
            params: BlockingParams::default(),
            parallel: false,
            max_levels: 2,
            routing: Routing::Model,
            decision_capacity: 4096,
            plan_capacity: 256,
            max_pooled_contexts: 64,
        }
    }
}

/// What the engine decided to run for one shape.
#[derive(Clone)]
enum Decision {
    Gemm,
    Fmm { plan: Arc<FmmPlan>, variant: Variant },
}

impl Decision {
    fn describe(&self) -> String {
        match self {
            Decision::Gemm => "GEMM".to_string(),
            Decision::Fmm { plan, variant } => {
                format!("{} {}", plan.describe(), variant.name())
            }
        }
    }
}

/// Monotonic counters exposing the engine's cache behavior.
///
/// All counts are cumulative since engine construction; take two snapshots
/// and difference them to assert warm-path properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `multiply` calls served.
    pub executions: u64,
    /// Decisions answered from the shape LRU.
    pub decision_hits: u64,
    /// Decisions that had to be computed.
    pub decision_misses: u64,
    /// Full model rankings run (at most one per decision miss).
    pub rankings: u64,
    /// Kronecker plan compositions performed (at most one per
    /// `(algorithm, levels)` pair while cached).
    pub plan_compositions: u64,
    /// Fresh `FmmContext` constructions (one per concurrently-active
    /// caller; flat once the pool is warm).
    pub context_allocations: u64,
    /// Workspace-arena reallocations across all pooled contexts (flat once
    /// every pooled context has seen the largest live shape).
    pub arena_grows: u64,
}

#[derive(Default)]
struct Counters {
    executions: AtomicU64,
    decision_hits: AtomicU64,
    decision_misses: AtomicU64,
    rankings: AtomicU64,
    plan_compositions: AtomicU64,
    context_allocations: AtomicU64,
    arena_grows: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            executions: self.executions.load(Ordering::Relaxed),
            decision_hits: self.decision_hits.load(Ordering::Relaxed),
            decision_misses: self.decision_misses.load(Ordering::Relaxed),
            rankings: self.rankings.load(Ordering::Relaxed),
            plan_compositions: self.plan_compositions.load(Ordering::Relaxed),
            context_allocations: self.context_allocations.load(Ordering::Relaxed),
            arena_grows: self.arena_grows.load(Ordering::Relaxed),
        }
    }
}

/// Cache key for composed plans: the registry algorithm's partition dims
/// plus the nesting depth.
type PlanKey = ((usize, usize, usize), usize);

/// A long-lived, thread-safe FMM execution engine. See the crate docs.
pub struct FmmEngine {
    config: EngineConfig,
    registry: Arc<Registry>,
    decisions: Mutex<LruCache<(usize, usize, usize), Decision>>,
    plans: Mutex<LruCache<PlanKey, Arc<FmmPlan>>>,
    contexts: Mutex<Vec<FmmContext>>,
    counters: Counters,
}

impl FmmEngine {
    /// Engine over the standard registry with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// Engine over the standard registry.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_registry(config, Registry::shared())
    }

    /// Engine over an explicit algorithm registry.
    pub fn with_registry(config: EngineConfig, registry: Arc<Registry>) -> Self {
        assert!(config.max_levels >= 1, "max_levels must be at least 1");
        let decisions = Mutex::new(LruCache::new(config.decision_capacity));
        let plans = Mutex::new(LruCache::new(config.plan_capacity));
        Self {
            config,
            registry,
            decisions,
            plans,
            contexts: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The registry the engine routes over.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot of the cumulative cache/allocation counters.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    /// `C += A·B`, routed through the decision cache. Thread-safe.
    pub fn multiply(&self, c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        assert_eq!(b.rows(), k, "A/B inner dimension mismatch");
        assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");
        self.counters.executions.fetch_add(1, Ordering::Relaxed);

        match self.route(m, k, n) {
            Decision::Gemm => self.run_gemm(c, a, b),
            Decision::Fmm { plan, variant } => {
                self.run_fmm(c, a, b, &plan, variant);
            }
        }
    }

    /// `C += A·B` with an explicit `(plan, variant)`, using the engine's
    /// pooled contexts (the paper's protocol for measuring top-2 candidates
    /// empirically). Returns the number of workspace-arena elements the
    /// execution occupied — equal to [`Variant::workspace_elements`].
    pub fn multiply_with_plan(
        &self,
        c: MatMut<'_>,
        a: MatRef<'_>,
        b: MatRef<'_>,
        plan: &FmmPlan,
        variant: Variant,
    ) -> usize {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        self.run_fmm(c, a, b, plan, variant)
    }

    /// Resolve (and cache) the routing decision for a shape without
    /// executing anything, then preplan one pooled context for it — after
    /// this, the first `multiply` of the shape is already on the warm path.
    pub fn prepare(&self, m: usize, k: usize, n: usize) {
        let decision = self.route(m, k, n);
        if let Decision::Fmm { plan, variant } = decision {
            let mut ctx = self.acquire_context();
            let grows_before = ctx.arena_grow_count();
            ctx.preplan(&plan, variant, m, k, n);
            self.counters
                .arena_grows
                .fetch_add(ctx.arena_grow_count() - grows_before, Ordering::Relaxed);
            self.release_context(ctx);
        }
    }

    /// Human-readable routing decision for a shape, e.g.
    /// `"<2,2,2>+<2,2,2> ABC"` or `"GEMM"`. Computes and caches the
    /// decision if the shape has not been seen.
    pub fn decision_label(&self, m: usize, k: usize, n: usize) -> String {
        self.route(m, k, n).describe()
    }

    fn route(&self, m: usize, k: usize, n: usize) -> Decision {
        if let Some(hit) = self.decisions.lock().get(&(m, k, n)) {
            self.counters.decision_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.counters.decision_misses.fetch_add(1, Ordering::Relaxed);
        let decision = self.compute_decision(m, k, n);
        self.decisions.lock().insert((m, k, n), decision.clone());
        decision
    }

    fn compute_decision(&self, m: usize, k: usize, n: usize) -> Decision {
        match &self.config.routing {
            Routing::Pinned { dims, levels, variant } => {
                let algo = self.registry.get(*dims).unwrap_or_else(|| {
                    panic!("pinned routing: no registry algorithm for {dims:?}")
                });
                Decision::Fmm { plan: self.plan_for(&algo, *levels), variant: *variant }
            }
            Routing::Model => {
                let plans = self.candidate_plans();
                self.counters.rankings.fetch_add(1, Ordering::Relaxed);
                let ranked =
                    rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, &self.config.arch, true);
                let best = &ranked[0];
                match (&best.plan, best.impl_.to_variant()) {
                    (Some(plan), Some(variant)) => Decision::Fmm { plan: plan.clone(), variant },
                    _ => Decision::Gemm,
                }
            }
        }
    }

    /// The candidate plan set model routing ranks over: every registry
    /// algorithm at 1..=`max_levels` nesting depths, served from the plan
    /// cache (composed at most once each while cached). Callers that want
    /// the model's view of a shape (e.g. predicted-vs-measured harnesses)
    /// should rank over this same set.
    pub fn candidate_plans(&self) -> Vec<Arc<FmmPlan>> {
        let mut plans = Vec::new();
        for (_, algo) in self.registry.paper_rows() {
            for levels in 1..=self.config.max_levels {
                plans.push(self.plan_for(&algo, levels));
            }
        }
        plans
    }

    /// Fetch the composed plan for `levels` nested applications of `algo`,
    /// composing at most once per `(dims, levels)` while cached.
    fn plan_for(&self, algo: &Arc<fmm_core::FmmAlgorithm>, levels: usize) -> Arc<FmmPlan> {
        let key = (algo.dims(), levels);
        if let Some(plan) = self.plans.lock().get(&key) {
            return plan;
        }
        self.counters.plan_compositions.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(FmmPlan::from_arcs(vec![algo.clone(); levels]));
        self.plans.lock().insert(key, plan.clone());
        plan
    }

    fn run_gemm(&self, c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
        // Plain GEMM packing buffers come from fmm-gemm's global pool.
        if self.config.parallel {
            fmm_gemm::gemm_parallel(c, a, b);
        } else {
            fmm_gemm::gemm(c, a, b);
        }
    }

    fn run_fmm(
        &self,
        c: MatMut<'_>,
        a: MatRef<'_>,
        b: MatRef<'_>,
        plan: &FmmPlan,
        variant: Variant,
    ) -> usize {
        let mut ctx = self.acquire_context();
        let grows_before = ctx.arena_grow_count();
        if self.config.parallel {
            fmm_execute_parallel(c, a, b, plan, variant, &mut ctx);
        } else {
            fmm_execute(c, a, b, plan, variant, &mut ctx);
        }
        self.counters
            .arena_grows
            .fetch_add(ctx.arena_grow_count() - grows_before, Ordering::Relaxed);
        let occupied = ctx.last_layout().map_or(0, ArenaLayout::total_elements);
        self.release_context(ctx);
        occupied
    }

    fn acquire_context(&self) -> FmmContext {
        if let Some(ctx) = self.contexts.lock().pop() {
            return ctx;
        }
        self.counters.context_allocations.fetch_add(1, Ordering::Relaxed);
        FmmContext::new(self.config.params)
    }

    fn release_context(&self, ctx: FmmContext) {
        let mut pool = self.contexts.lock();
        if pool.len() < self.config.max_pooled_contexts {
            pool.push(ctx);
        }
    }
}

impl std::fmt::Debug for FmmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FmmEngine(decisions={}, plans={}, pooled_contexts={}, stats={:?})",
            self.decisions.lock().len(),
            self.plans.lock().len(),
            self.contexts.lock().len(),
            self.stats()
        )
    }
}

// The engine is shared across threads (`multiply(&self, ..)`); both auto
// traits must hold for a process-global engine.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FmmEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, norms, Matrix};

    fn tiny_config(routing: Routing) -> EngineConfig {
        EngineConfig { params: BlockingParams::tiny(), routing, ..EngineConfig::default() }
    }

    #[test]
    fn multiply_matches_reference_via_model_routing() {
        let engine = FmmEngine::new(tiny_config(Routing::Model));
        for (m, k, n) in [(37, 29, 41), (64, 64, 64), (5, 120, 5)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn decision_cache_hits_skip_ranking() {
        let engine = FmmEngine::new(tiny_config(Routing::Model));
        let a = fill::bench_workload(48, 32, 1);
        let b = fill::bench_workload(32, 40, 2);
        let mut c = Matrix::zeros(48, 40);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let cold = engine.stats();
        assert_eq!(cold.decision_misses, 1);
        assert_eq!(cold.rankings, 1);
        for _ in 0..5 {
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let warm = engine.stats();
        assert_eq!(warm.rankings, cold.rankings, "no re-ranking on cache hits");
        assert_eq!(warm.plan_compositions, cold.plan_compositions);
        assert_eq!(warm.decision_hits, cold.decision_hits + 5);
    }

    #[test]
    fn pinned_routing_runs_the_requested_plan() {
        let engine = FmmEngine::new(tiny_config(Routing::Pinned {
            dims: (2, 2, 2),
            levels: 1,
            variant: Variant::Abc,
        }));
        assert_eq!(engine.decision_label(32, 32, 32), "<2,2,2> ABC");
        let a = fill::bench_workload(32, 32, 3);
        let b = fill::bench_workload(32, 32, 4);
        let mut c = Matrix::zeros(32, 32);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }

    #[test]
    fn prepare_makes_the_first_call_warm() {
        let engine = FmmEngine::new(tiny_config(Routing::Pinned {
            dims: (2, 2, 2),
            levels: 2,
            variant: Variant::Naive,
        }));
        engine.prepare(36, 36, 36);
        let prepared = engine.stats();
        assert_eq!(prepared.decision_misses, 1);
        let a = fill::bench_workload(36, 36, 5);
        let b = fill::bench_workload(36, 36, 6);
        let mut c = Matrix::zeros(36, 36);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let after = engine.stats();
        assert_eq!(after.arena_grows, prepared.arena_grows, "arena was preplanned");
        assert_eq!(after.context_allocations, prepared.context_allocations);
        assert_eq!(after.plan_compositions, prepared.plan_compositions);
    }
}
