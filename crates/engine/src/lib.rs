//! `fmm-engine` — a long-lived, cached, model-routed FMM execution engine.
//!
//! [`fmm_core`] executes one `(plan, variant)`; [`fmm_model`] ranks
//! candidates for a problem shape. This crate glues them into the object a
//! service actually wants: an [`FmmEngine`] that is created once and then
//! serves `C += A·B` traffic with
//!
//! * a **decision cache** — the model ranking (the paper's §4.4
//!   poly-algorithm) runs once per `(m, k, n)` shape and is remembered in
//!   a shape-keyed LRU;
//! * a **plan cache** — `FmmPlan` Kronecker composition runs once per
//!   `(algorithm, levels)` pair, shared via `Arc` by every decision that
//!   routes to it;
//! * a **context pool** — per-caller [`SchedContext`]s (preplanned
//!   workspace arenas, packing buffers, per-task regions) are recycled, so
//!   a warm engine performs no heap allocation for FMM temporaries;
//! * built-in **counters** ([`EngineStats`]) that make all three claims
//!   testable rather than aspirational.
//!
//! Parallel engines (`EngineConfig::parallel`) execute through the
//! `fmm-sched` BFS/DFS/hybrid scheduler: the model ranks `(plan, variant,
//! strategy)` triples per shape, and [`FmmEngine::multiply_batch`] runs
//! many independent problems at once with inter-problem parallelism.
//!
//! The model itself is grounded in this machine, twice over: engines
//! default to **host-calibrated** [`ArchParams`]
//! ([`ArchSource::Calibrated`] — measured once per machine via
//! `fmm-tune`, persisted, paper constants only on request), and
//! [`Routing::Tuned`] consults a persistent [`TuneStore`] of empirically
//! measured winners before falling back to model ranking
//! ([`EngineStats::tuned_hits`]/[`EngineStats::tuned_misses`]).
//!
//! The engine is generic over the execution scalar: `FmmEngine<f64>` (the
//! default) and `FmmEngine<f32>` run the same plans and routing logic over
//! dtype-specific kernels, contexts, and workspace pools. Every cache —
//! decisions, composed plans, pooled contexts — lives inside the engine
//! value, so caches are per-dtype by construction; the performance model
//! stays `f64` but its memory terms are scaled by the engine's element
//! width (`ArchParams::with_elem_bytes`), which is what lets `f32` ranking
//! reflect its halved bandwidth cost.
//!
//! `FmmEngine::multiply` takes `&self` and is safe to call from many
//! threads at once; each call checks out its own context.
//!
//! # Example
//!
//! ```
//! use fmm_dense::{fill, Matrix};
//! use fmm_engine::FmmEngine;
//!
//! let engine = FmmEngine::with_defaults();
//! let a = fill::bench_workload(96, 64, 1);
//! let b = fill::bench_workload(64, 80, 2);
//! let mut c = Matrix::zeros(96, 80);
//! engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
//! engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
//! assert_eq!(engine.stats().decision_hits, 1); // second call reused the routing
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

mod lru;

pub use lru::LruCache;

use fmm_core::executor::ArenaLayout;
use fmm_core::registry::Registry;
pub use fmm_core::Strategy;
// `Routing::Pinned` and `multiply_with_plan` take a `Variant`; re-export
// it so engine consumers need no direct fmm-core dependency for routing.
pub use fmm_core::Variant;
pub use fmm_sched::SchedContext;
pub use fmm_tune::{kernel_fingerprint, ShapeClass, TuneStore, TunedChoice, TunedDecision};

use fmm_core::{fmm_execute, FmmPlan};
use fmm_dense::{MatMut, MatRef};
use fmm_gemm::{BlockingParams, GemmScalar};
use fmm_model::{
    predict_gemm_parallel, predict_scheduled, rank_candidates, rank_scheduled, ArchParams, Impl,
};
use fmm_obs::audit::{AuditDtype, AuditSample, AuditSource};
use fmm_sched::fan_out;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the engine chooses a `(plan, variant)` per shape.
#[derive(Clone, Debug)]
pub enum Routing {
    /// The paper's §4.4 poly-algorithm: rank every registry `(plan,
    /// variant)` candidate plus plain GEMM with the performance model and
    /// run the best prediction. Parallel engines rank `(plan, variant,
    /// strategy)` triples with the parallel-time model instead.
    Model,
    /// Always run `levels` nested applications of the registry algorithm
    /// with partition dims `dims`, as `variant`. For workloads with known
    /// structure, and for tests that need a deterministic FMM route.
    Pinned {
        /// Partition dims of the registry algorithm, e.g. `(2, 2, 2)`.
        dims: (usize, usize, usize),
        /// Nesting depth (1 or 2 are practical).
        levels: usize,
        /// Implementation strategy.
        variant: Variant,
    },
    /// Empirical decisions first, model fallback: the [`TuneStore`] is
    /// consulted per shape class (dtype, worker count, and micro-kernel
    /// fingerprint must all match); a hit routes with **zero model
    /// re-ranking** ([`EngineStats::tuned_hits`]), a miss — including a
    /// stale entry whose algorithm left the registry — falls back to
    /// [`Routing::Model`] ([`EngineStats::tuned_misses`]). Build the store
    /// with `fmm-tune`'s `Tuner` or the `fmm_tune` CLI.
    Tuned {
        /// The (typically loaded-from-disk) tuned decision store.
        store: Arc<TuneStore>,
    },
}

/// Where an engine's [`ArchParams`] come from.
///
/// The default is [`ArchSource::Calibrated`]: on first use the host is
/// measured (`fmm_tune::host_arch`, cached process-wide and persisted in
/// the tune store) instead of assuming the paper's 2017 experiment
/// machine. Pass [`ArchSource::Fixed`] to reproduce published rankings or
/// pin tests.
#[derive(Clone, Debug, Default)]
pub enum ArchSource {
    /// Measure (once) and use this host's calibrated parameters.
    #[default]
    Calibrated,
    /// Use exactly these parameters.
    Fixed(ArchParams),
}

impl From<ArchParams> for ArchSource {
    fn from(arch: ArchParams) -> Self {
        ArchSource::Fixed(arch)
    }
}

/// Construction-time configuration of an [`FmmEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Architecture parameters for model-guided routing: host-calibrated
    /// by default, or pinned via [`ArchSource::Fixed`] /
    /// `ArchParams::into()`.
    pub arch: ArchSource,
    /// GEMM blocking parameters for every execution.
    pub params: BlockingParams,
    /// Use the parallel execution paths (the `fmm-sched` scheduler for
    /// FMM, loop-3 data parallelism for plain GEMM).
    pub parallel: bool,
    /// Worker count for parallel execution and parallel-model routing;
    /// `0` means the rayon pool width, and explicit values are clamped to
    /// it (the pool bounds the parallelism every execution path can
    /// realize, so ranking beyond it would model speedups that cannot
    /// happen). Ignored when `parallel` is false.
    pub workers: usize,
    /// Force every FMM execution onto one schedule instead of letting the
    /// model pick per shape. Ignored when `parallel` is false (sequential
    /// engines always run depth-first).
    pub strategy: Option<Strategy>,
    /// Maximum plan levels the model considers (1 or 2 are practical).
    pub max_levels: usize,
    /// Routing policy.
    pub routing: Routing,
    /// Capacity of the shape-keyed decision LRU.
    pub decision_capacity: usize,
    /// Capacity of the composed-plan LRU.
    pub plan_capacity: usize,
    /// Idle contexts kept pooled (returns beyond this are dropped).
    pub max_pooled_contexts: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            arch: ArchSource::Calibrated,
            params: BlockingParams::default(),
            parallel: false,
            workers: 0,
            strategy: None,
            max_levels: 2,
            routing: Routing::Model,
            decision_capacity: 4096,
            plan_capacity: 256,
            max_pooled_contexts: 64,
        }
    }
}

/// What the engine decided to run for one shape, plus the audit
/// attribution that travels with it: where the decision came from and
/// what the router predicted it would cost. Cached whole in the
/// decision LRU so the warm path re-derives nothing.
#[derive(Clone)]
struct Decision {
    choice: Choice,
    /// Routing source for audit attribution. `Fallback` marks decisions
    /// the configured route could not serve (pinned registry miss,
    /// tuned-store miss) even when a model ranking picked the fallback.
    source: AuditSource,
    /// Predicted cost of one multiply of this shape, in nanoseconds
    /// (model total, or re-derived from the tuned store's measured
    /// GFLOP/s). 0 = unknown. When a strategy override rewrites the
    /// schedule, the prediction still describes the ranked schedule.
    predicted_nanos: u64,
}

#[derive(Clone)]
enum Choice {
    Gemm,
    Fmm { plan: Arc<FmmPlan>, variant: Variant, strategy: Strategy },
}

impl Decision {
    fn describe(&self) -> String {
        match &self.choice {
            Choice::Gemm => "GEMM".to_string(),
            Choice::Fmm { plan, variant, strategy: Strategy::Dfs } => {
                format!("{} {}", plan.describe(), variant.name())
            }
            Choice::Fmm { plan, variant, strategy } => {
                format!("{} {} {}", plan.describe(), variant.name(), strategy.name())
            }
        }
    }
}

/// Monotonic counters exposing the engine's cache behavior.
///
/// All counts are cumulative since engine construction; take two snapshots
/// and difference them to assert warm-path properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `multiply` calls served.
    pub executions: u64,
    /// Decisions answered from the shape LRU.
    pub decision_hits: u64,
    /// Decisions that had to be computed.
    pub decision_misses: u64,
    /// Full model rankings run (at most one per decision miss).
    pub rankings: u64,
    /// Kronecker plan compositions performed (at most one per
    /// `(algorithm, levels)` pair while cached).
    pub plan_compositions: u64,
    /// Fresh `SchedContext` constructions (one per concurrently-active
    /// caller; flat once the pool is warm).
    pub context_allocations: u64,
    /// Workspace allocations across all pooled contexts — the DFS arena,
    /// the per-task BFS/hybrid arena, per-task packing buffers, and hybrid
    /// inner contexts (flat once every pooled context has seen the largest
    /// live shape).
    pub arena_grows: u64,
    /// `multiply_batch` calls served.
    pub batches: u64,
    /// Problems executed through `multiply_batch` (also counted in
    /// `executions`).
    pub batch_items: u64,
    /// `Routing::Pinned` decisions that fell back to GEMM because the
    /// registry holds no algorithm for the pinned dims (one per decision
    /// miss of such a shape, not per call).
    pub pinned_fallbacks: u64,
    /// `Routing::Tuned` decisions answered by the tune store — shape
    /// classes that routed with zero model re-ranking (one per decision
    /// miss of such a shape, not per call).
    pub tuned_hits: u64,
    /// `Routing::Tuned` decisions the store could not answer (absent
    /// class, kernel-fingerprint mismatch, or an algorithm no longer in
    /// the registry) that fell back to model ranking.
    pub tuned_misses: u64,
    /// Executed multiplies whose predicted-vs-measured sample landed in
    /// the decision-audit table (`fmm_obs::audit`).
    pub audit_samples: u64,
    /// Audit samples dropped because the process-wide class table was
    /// full (unseen (shape-class, dtype) beyond its capacity).
    pub audit_drops: u64,
}

impl EngineStats {
    /// Every counter as a `(name, value)` row, in declaration order.
    /// This is the reflection surface consumers like `fmm-serve`'s stats
    /// channel and the smoke benchmarks render from, so a new counter
    /// shows up everywhere by being added here once. Length-agnostic by
    /// design: callers must iterate, never assume a fixed arity, so a
    /// new counter cannot silently truncate the mirror.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("executions", self.executions),
            ("decision_hits", self.decision_hits),
            ("decision_misses", self.decision_misses),
            ("rankings", self.rankings),
            ("plan_compositions", self.plan_compositions),
            ("context_allocations", self.context_allocations),
            ("arena_grows", self.arena_grows),
            ("batches", self.batches),
            ("batch_items", self.batch_items),
            ("pinned_fallbacks", self.pinned_fallbacks),
            ("tuned_hits", self.tuned_hits),
            ("tuned_misses", self.tuned_misses),
            ("audit_samples", self.audit_samples),
            ("audit_drops", self.audit_drops),
        ]
    }
}

/// One line of `name=value` pairs in [`EngineStats::fields`] order — the
/// rendering the serve daemon's stats frame and log lines use.
impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct Counters {
    executions: AtomicU64,
    decision_hits: AtomicU64,
    decision_misses: AtomicU64,
    rankings: AtomicU64,
    plan_compositions: AtomicU64,
    context_allocations: AtomicU64,
    arena_grows: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    pinned_fallbacks: AtomicU64,
    tuned_hits: AtomicU64,
    tuned_misses: AtomicU64,
    audit_samples: AtomicU64,
    audit_drops: AtomicU64,
}

impl Counters {
    fn reset(&self) {
        // Relaxed is enough: reset is a test/bench affordance, not a
        // synchronization point — concurrent increments may land on
        // either side of it, exactly like two racing `snapshot`s.
        self.executions.store(0, Ordering::Relaxed);
        self.decision_hits.store(0, Ordering::Relaxed);
        self.decision_misses.store(0, Ordering::Relaxed);
        self.rankings.store(0, Ordering::Relaxed);
        self.plan_compositions.store(0, Ordering::Relaxed);
        self.context_allocations.store(0, Ordering::Relaxed);
        self.arena_grows.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_items.store(0, Ordering::Relaxed);
        self.pinned_fallbacks.store(0, Ordering::Relaxed);
        self.tuned_hits.store(0, Ordering::Relaxed);
        self.tuned_misses.store(0, Ordering::Relaxed);
        self.audit_samples.store(0, Ordering::Relaxed);
        self.audit_drops.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EngineStats {
        EngineStats {
            executions: self.executions.load(Ordering::Relaxed),
            decision_hits: self.decision_hits.load(Ordering::Relaxed),
            decision_misses: self.decision_misses.load(Ordering::Relaxed),
            rankings: self.rankings.load(Ordering::Relaxed),
            plan_compositions: self.plan_compositions.load(Ordering::Relaxed),
            context_allocations: self.context_allocations.load(Ordering::Relaxed),
            arena_grows: self.arena_grows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_items: self.batch_items.load(Ordering::Relaxed),
            pinned_fallbacks: self.pinned_fallbacks.load(Ordering::Relaxed),
            tuned_hits: self.tuned_hits.load(Ordering::Relaxed),
            tuned_misses: self.tuned_misses.load(Ordering::Relaxed),
            audit_samples: self.audit_samples.load(Ordering::Relaxed),
            audit_drops: self.audit_drops.load(Ordering::Relaxed),
        }
    }
}

/// Cache key for composed plans: the registry algorithm's partition dims
/// plus the nesting depth.
type PlanKey = ((usize, usize, usize), usize);

/// One independent `C += A·B` problem of a [`FmmEngine::multiply_batch`]
/// call. The borrows guarantee the destinations are pairwise disjoint.
pub struct BatchItem<'a, T = f64> {
    /// Accumulation destination.
    pub c: MatMut<'a, T>,
    /// Left operand.
    pub a: MatRef<'a, T>,
    /// Right operand.
    pub b: MatRef<'a, T>,
    /// Caller-chosen tag carried into tracing spans (the serving layer
    /// passes the wire request id; 0 = untagged).
    pub tag: u64,
}

impl<'a, T: GemmScalar> BatchItem<'a, T> {
    /// Package one problem.
    pub fn new(c: MatMut<'a, T>, a: MatRef<'a, T>, b: MatRef<'a, T>) -> Self {
        Self { c, a, b, tag: 0 }
    }

    /// Tag this item so spans recorded while it executes (scheduler
    /// tasks, GEMM pack/kernel phases) carry `tag` as their request id.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// A long-lived, thread-safe FMM execution engine, generic over the
/// execution scalar (default `f64`). See the crate docs.
pub struct FmmEngine<T: GemmScalar = f64> {
    config: EngineConfig,
    /// Resolved, validated architecture parameters (from
    /// [`EngineConfig::arch`]), memory terms charged at `T`'s width.
    arch: ArchParams,
    registry: Arc<Registry>,
    decisions: Mutex<LruCache<(usize, usize, usize), Decision>>,
    plans: Mutex<LruCache<PlanKey, Arc<FmmPlan>>>,
    contexts: Mutex<Vec<SchedContext<T>>>,
    counters: Counters,
}

/// A checked-out pooled context; returns itself to the engine on drop.
struct CtxGuard<'a, T: GemmScalar> {
    engine: &'a FmmEngine<T>,
    ctx: Option<SchedContext<T>>,
}

impl<T: GemmScalar> CtxGuard<'_, T> {
    fn ctx(&mut self) -> &mut SchedContext<T> {
        self.ctx.as_mut().expect("present until drop")
    }
}

impl<T: GemmScalar> Drop for CtxGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.engine.release_context(ctx);
        }
    }
}

impl<T: GemmScalar> FmmEngine<T> {
    /// Engine over the standard registry with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// Engine over the standard registry.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_registry(config, Registry::shared())
    }

    /// Engine over an explicit algorithm registry.
    ///
    /// # Panics
    /// On contradictory configuration: `workers > 0` with `parallel:
    /// false` would silently run sequentially (the worker count is only
    /// meaningful to parallel execution and routing), so it is rejected
    /// here, at construction, instead of surprising a misconfigured
    /// service at traffic time. Likewise on invalid [`ArchSource::Fixed`]
    /// parameters (`ArchParams::validate`): a zero or negative bandwidth
    /// would silently poison every ranking the engine ever makes.
    pub fn with_registry(config: EngineConfig, registry: Arc<Registry>) -> Self {
        assert!(config.max_levels >= 1, "max_levels must be at least 1");
        assert!(
            config.parallel || config.workers == 0,
            "EngineConfig {{ workers: {}, parallel: false }} is contradictory: \
             workers only applies to parallel engines (set parallel: true, or workers: 0)",
            config.workers
        );
        let resolved = match &config.arch {
            ArchSource::Fixed(arch) => *arch,
            // Host-measured, process-cached, store-persisted; always
            // validates by construction.
            ArchSource::Calibrated => fmm_tune::host_arch::<T>(),
        };
        // The model's memory terms are charged at this engine's element
        // width; rankings (and their cache) are per-dtype anyway.
        let arch = resolved.with_elem_bytes(std::mem::size_of::<T>());
        if let Err(e) = arch.validate() {
            panic!("EngineConfig.arch is invalid ({e}); refusing to rank with poisoned constants");
        }
        let decisions = Mutex::new(LruCache::new(config.decision_capacity));
        let plans = Mutex::new(LruCache::new(config.plan_capacity));
        Self {
            config,
            arch,
            registry,
            decisions,
            plans,
            contexts: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The resolved architecture parameters the engine ranks with.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The registry the engine routes over.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot of the cumulative cache/allocation counters.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    /// Zero every counter. For tests and benchmarks that want absolute
    /// assertions against a shared (e.g. process-global) engine without
    /// bookkeeping a baseline snapshot; caches and pooled contexts are
    /// untouched, so the engine stays warm.
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Worker count parallel executions and parallel-model routing use:
    /// the configured count clamped to the rayon pool width, so the model
    /// never ranks with parallelism the machine cannot deliver.
    fn effective_workers(&self) -> usize {
        if !self.config.parallel {
            return 1;
        }
        let pool = rayon::current_num_threads();
        if self.config.workers > 0 {
            self.config.workers.min(pool).max(1)
        } else {
            pool
        }
    }

    /// `C += A·B`, routed through the decision cache. Thread-safe.
    pub fn multiply(&self, c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        assert_eq!(b.rows(), k, "A/B inner dimension mismatch");
        assert_eq!((c.rows(), c.cols()), (m, n), "C shape mismatch");
        self.counters.executions.fetch_add(1, Ordering::Relaxed);

        let decision = self.route(m, k, n);
        let start = Instant::now();
        match &decision.choice {
            Choice::Gemm => self.run_gemm(c, a, b),
            Choice::Fmm { plan, variant, strategy } => {
                self.run_fmm(c, a, b, plan, *variant, *strategy);
            }
        }
        self.audit(m, k, n, &decision, start.elapsed());
    }

    /// Execute many independent problems through the scheduler at once:
    /// each item runs sequentially on its own pooled context while the
    /// items themselves fan out over the worker pool. For small problems —
    /// where even BFS tasks cannot fill the machine — this inter-problem
    /// parallelism is what keeps every core busy.
    ///
    /// Routing (and its cache) is identical to per-call [`FmmEngine::multiply`];
    /// a batch of one known shape costs one decision lookup per item and
    /// no ranking once warm. On a sequential engine (`parallel: false`)
    /// the items simply run in order.
    pub fn multiply_batch(&self, items: &mut [BatchItem<'_, T>]) {
        // Validate every item before touching any counter: a shape
        // mismatch must leave `EngineStats` exactly as it found it, not
        // count a batch that never executed.
        for item in items.iter() {
            let (m, k) = (item.a.rows(), item.a.cols());
            let n = item.b.cols();
            assert_eq!(item.b.rows(), k, "A/B inner dimension mismatch");
            assert_eq!((item.c.rows(), item.c.cols()), (m, n), "C shape mismatch");
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.batch_items.fetch_add(items.len() as u64, Ordering::Relaxed);
        self.counters.executions.fetch_add(items.len() as u64, Ordering::Relaxed);
        // Resolve every routing decision up-front (cheap cache hits when
        // warm) so workers never contend on the decision cache.
        let decisions: Vec<Decision> = items
            .iter()
            .map(|item| self.route(item.a.rows(), item.a.cols(), item.b.cols()))
            .collect();

        let items_ptr = BatchItemsPtr(items.as_mut_ptr());
        let workers = self.effective_workers().clamp(1, items.len().max(1));
        // Up to `workers` items execute co-resident, each packing its own
        // buffers — shrink the shared-cache panels accordingly (the same
        // discipline the BFS scheduler applies to its tasks).
        let batch_params = self.config.params.for_workers(workers);
        fan_out(
            items.len(),
            workers,
            || {
                let mut guard = self.checkout();
                guard.ctx().set_params(batch_params);
                guard
            },
            |guard, i| {
                // SAFETY: `fan_out` hands each index to exactly one worker,
                // so every `BatchItem` is mutably borrowed by at most one
                // thread, and the borrow in `items` outlives the fan-out.
                let item = unsafe { items_ptr.item(i) };
                // Lower layers (sched tasks, gemm pack/kernel) stamp their
                // spans with this thread's current request id.
                let prev_tag = fmm_obs::trace::set_current_request(item.tag);
                let (m, k, n) = (item.a.rows(), item.a.cols(), item.b.cols());
                let start = Instant::now();
                match &decisions[i].choice {
                    Choice::Gemm => {
                        fmm_gemm::gemm_with_params(
                            item.c.reborrow(),
                            item.a,
                            item.b,
                            &batch_params,
                        );
                    }
                    Choice::Fmm { plan, variant, .. } => {
                        let ctx = guard.ctx();
                        let grows_before = ctx.grow_count();
                        // Within a batch each problem runs depth-first and
                        // sequential; parallelism comes from the items.
                        fmm_execute(
                            item.c.reborrow(),
                            item.a,
                            item.b,
                            plan,
                            *variant,
                            ctx.fmm_context(),
                        );
                        self.counters
                            .arena_grows
                            .fetch_add(ctx.grow_count() - grows_before, Ordering::Relaxed);
                    }
                }
                self.audit(m, k, n, &decisions[i], start.elapsed());
                fmm_obs::trace::set_current_request(prev_tag);
            },
        );
    }

    /// Report one executed multiply to the process-wide decision audit
    /// (`fmm_obs::audit`): predicted vs measured cost, attributed to the
    /// shape's power-of-two class and this engine's dtype. The tuner's
    /// `multiply_with_plan` measurement path deliberately skips this —
    /// those runs execute candidates the router did not choose.
    fn audit(&self, m: usize, k: usize, n: usize, decision: &Decision, elapsed: Duration) {
        let class = ShapeClass::of(m, k, n);
        let sample = AuditSample {
            class_m: class.m as u64,
            class_k: class.k as u64,
            class_n: class.n as u64,
            dtype: AuditDtype::from_name(T::NAME),
            source: decision.source,
            predicted_nanos: decision.predicted_nanos,
            measured_nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            flops: u64::try_from(2u128 * m as u128 * k as u128 * n as u128).unwrap_or(u64::MAX),
        };
        if fmm_obs::audit::record(&sample) {
            self.counters.audit_samples.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.audit_drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `C += A·B` with an explicit `(plan, variant)`, using the engine's
    /// pooled contexts (the paper's protocol for measuring top-2 candidates
    /// empirically). Runs depth-first (data-parallel block products on a
    /// parallel engine). Returns the number of workspace-arena elements
    /// the execution occupied — equal to [`Variant::workspace_elements`].
    pub fn multiply_with_plan(
        &self,
        c: MatMut<'_, T>,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        plan: &FmmPlan,
        variant: Variant,
    ) -> usize {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        self.run_fmm(c, a, b, plan, variant, Strategy::Dfs)
    }

    /// Resolve (and cache) the routing decision for a shape without
    /// executing anything, then preplan one pooled context for it — after
    /// this, the first `multiply` of the shape is already on the warm path.
    pub fn prepare(&self, m: usize, k: usize, n: usize) {
        let decision = self.route(m, k, n);
        if let Choice::Fmm { plan, variant, strategy } = decision.choice {
            let workers = self.effective_workers();
            let mut guard = self.checkout();
            let ctx = guard.ctx();
            let grows_before = ctx.grow_count();
            if self.config.parallel {
                ctx.preplan(&plan, variant, strategy, workers, m, k, n);
            } else {
                ctx.fmm_context().preplan(&plan, variant, m, k, n);
            }
            self.counters.arena_grows.fetch_add(ctx.grow_count() - grows_before, Ordering::Relaxed);
        }
    }

    /// Human-readable routing decision for a shape, e.g.
    /// `"<2,2,2>+<2,2,2> ABC"` or `"GEMM"`. Computes and caches the
    /// decision if the shape has not been seen.
    pub fn decision_label(&self, m: usize, k: usize, n: usize) -> String {
        self.route(m, k, n).describe()
    }

    fn route(&self, m: usize, k: usize, n: usize) -> Decision {
        if let Some(hit) = self.decisions.lock().get(&(m, k, n)) {
            self.counters.decision_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.counters.decision_misses.fetch_add(1, Ordering::Relaxed);
        let span = fmm_obs::trace::start();
        let decision = self.compute_decision(m, k, n);
        fmm_obs::trace::finish(
            fmm_obs::SpanKind::EngineDecision,
            fmm_obs::trace::current_request(),
            span,
        );
        // Cold side of the audit: label the shape's class with what the
        // router just chose (one decision per class is representative —
        // classes exist precisely because members route alike).
        let class = ShapeClass::of(m, k, n);
        fmm_obs::audit::note_decision(
            class.m as u64,
            class.k as u64,
            class.n as u64,
            AuditDtype::from_name(T::NAME),
            &decision.describe(),
        );
        self.decisions.lock().insert((m, k, n), decision.clone());
        decision
    }

    fn compute_decision(&self, m: usize, k: usize, n: usize) -> Decision {
        let decision = match &self.config.routing {
            Routing::Pinned { dims, levels, variant } => match self.registry.get(*dims) {
                Some(algo) => {
                    let plan = self.plan_for(&algo, *levels);
                    // Predict the pinned plan itself so the audit compares
                    // reality against what the model believes about *this*
                    // choice (workers == 1 + DFS reduces to the
                    // sequential model).
                    let predicted = predict_scheduled(
                        Impl::from_variant(*variant),
                        &plan,
                        m,
                        k,
                        n,
                        &self.arch,
                        self.effective_workers(),
                        Strategy::Dfs,
                    );
                    Decision {
                        choice: Choice::Fmm { plan, variant: *variant, strategy: Strategy::Dfs },
                        source: AuditSource::Pinned,
                        predicted_nanos: predicted.total_nanos(),
                    }
                }
                // No algorithm for the pinned dims: fall back to the GEMM
                // decision (counted, cached like any other decision) rather
                // than killing the process over a routing hint.
                None => {
                    self.counters.pinned_fallbacks.fetch_add(1, Ordering::Relaxed);
                    fmm_obs::flight::record(fmm_obs::FlightEvent::EngineFallback {
                        reason: fmm_obs::flight::FallbackReason::PinnedMiss,
                        m: m as u64,
                        k: k as u64,
                        n: n as u64,
                    });
                    let predicted =
                        predict_gemm_parallel(m, k, n, &self.arch, self.effective_workers());
                    Decision {
                        choice: Choice::Gemm,
                        source: AuditSource::Fallback,
                        predicted_nanos: predicted.total_nanos(),
                    }
                }
            },
            Routing::Tuned { store } => match self.tuned_decision(store, m, k, n) {
                Some(decision) => {
                    self.counters.tuned_hits.fetch_add(1, Ordering::Relaxed);
                    decision
                }
                // Store miss (or a stale entry naming an algorithm this
                // registry no longer has): fall back to model routing,
                // attributed as a fallback so the audit can separate
                // store coverage from store quality.
                None => {
                    self.counters.tuned_misses.fetch_add(1, Ordering::Relaxed);
                    fmm_obs::flight::record(fmm_obs::FlightEvent::EngineFallback {
                        reason: fmm_obs::flight::FallbackReason::TunedMiss,
                        m: m as u64,
                        k: k as u64,
                        n: n as u64,
                    });
                    Decision { source: AuditSource::Fallback, ..self.model_decision(m, k, n) }
                }
            },
            Routing::Model => self.model_decision(m, k, n),
        };
        // The strategy override replaces whatever routing picked (it only
        // takes effect on parallel engines; sequential execution is always
        // depth-first).
        match (decision, self.config.strategy) {
            (
                Decision { choice: Choice::Fmm { plan, variant, .. }, source, predicted_nanos },
                Some(strategy),
            ) if self.config.parallel => Decision {
                choice: Choice::Fmm { plan, variant, strategy },
                source,
                predicted_nanos,
            },
            (decision, _) => decision,
        }
    }

    /// One full model ranking (the paper's §4.4 poly-algorithm), counted
    /// in [`EngineStats::rankings`]: scheduled triples for parallel
    /// engines, sequential pairs otherwise.
    fn model_decision(&self, m: usize, k: usize, n: usize) -> Decision {
        let plans = self.candidate_plans();
        self.counters.rankings.fetch_add(1, Ordering::Relaxed);
        if self.config.parallel {
            let ranked = rank_scheduled(
                m,
                k,
                n,
                &plans,
                &Impl::FMM_VARIANTS,
                &self.arch,
                self.effective_workers(),
                true,
            );
            let best = &ranked[0];
            let choice = match (&best.plan, best.impl_.to_variant()) {
                (Some(plan), Some(variant)) => {
                    Choice::Fmm { plan: plan.clone(), variant, strategy: best.strategy }
                }
                _ => Choice::Gemm,
            };
            Decision {
                choice,
                source: AuditSource::Model,
                predicted_nanos: best.prediction.total_nanos(),
            }
        } else {
            let ranked = rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, &self.arch, true);
            let best = &ranked[0];
            let choice = match (&best.plan, best.impl_.to_variant()) {
                (Some(plan), Some(variant)) => {
                    Choice::Fmm { plan: plan.clone(), variant, strategy: Strategy::Dfs }
                }
                _ => Choice::Gemm,
            };
            Decision {
                choice,
                source: AuditSource::Model,
                predicted_nanos: best.prediction.total_nanos(),
            }
        }
    }

    /// Resolve a stored tuned decision for this shape's class, or `None`
    /// when the store cannot answer (absent class, kernel-fingerprint
    /// mismatch via `TuneStore::decision`, or a stored algorithm this
    /// registry no longer holds). Performs **no model ranking**.
    fn tuned_decision(&self, store: &TuneStore, m: usize, k: usize, n: usize) -> Option<Decision> {
        let class = ShapeClass::of(m, k, n);
        let fingerprint = fmm_tune::kernel_fingerprint::<T>();
        let tuned = store.decision(class, T::NAME, self.effective_workers(), &fingerprint)?;
        // The store records the *measured* GFLOP/s of its winning choice;
        // re-derive a per-multiply time prediction for this exact shape
        // from it (flops / GFLOP/s ≡ nanoseconds). 0 = unknown.
        let predicted_nanos = if tuned.gflops > 0.0 {
            let flops = 2.0 * m as f64 * k as f64 * n as f64;
            let nanos = flops / tuned.gflops;
            if nanos.is_finite() && nanos >= 0.0 {
                nanos as u64
            } else {
                0
            }
        } else {
            0
        };
        let choice = match &tuned.choice {
            TunedChoice::Gemm => Choice::Gemm,
            TunedChoice::Fmm { dims, levels, variant, strategy } => {
                // `levels == 0` would panic plan composition; a store
                // built programmatically could hold it (the JSON load
                // path rejects it), so treat it as a miss here too.
                if *levels == 0 {
                    return None;
                }
                let algo = self.registry.get(*dims)?;
                // Sequential engines always run depth-first; a strategy
                // tuned on a parallel configuration is not replayed here.
                let strategy = if self.config.parallel { *strategy } else { Strategy::Dfs };
                Choice::Fmm { plan: self.plan_for(&algo, *levels), variant: *variant, strategy }
            }
        };
        Some(Decision { choice, source: AuditSource::Tuned, predicted_nanos })
    }

    /// The candidate plan set model routing ranks over: every registry
    /// algorithm at 1..=`max_levels` nesting depths, served from the plan
    /// cache (composed at most once each while cached). Callers that want
    /// the model's view of a shape (e.g. predicted-vs-measured harnesses)
    /// should rank over this same set.
    pub fn candidate_plans(&self) -> Vec<Arc<FmmPlan>> {
        let mut plans = Vec::new();
        for (_, algo) in self.registry.paper_rows() {
            for levels in 1..=self.config.max_levels {
                plans.push(self.plan_for(&algo, levels));
            }
        }
        plans
    }

    /// Fetch the composed plan for `levels` nested applications of `algo`,
    /// composing at most once per `(dims, levels)` while cached.
    fn plan_for(&self, algo: &Arc<fmm_core::FmmAlgorithm>, levels: usize) -> Arc<FmmPlan> {
        let key = (algo.dims(), levels);
        if let Some(plan) = self.plans.lock().get(&key) {
            return plan;
        }
        self.counters.plan_compositions.fetch_add(1, Ordering::Relaxed);
        let span = fmm_obs::trace::start();
        let plan = Arc::new(FmmPlan::from_arcs(vec![algo.clone(); levels]));
        fmm_obs::trace::finish(
            fmm_obs::SpanKind::PlanCompose,
            fmm_obs::trace::current_request(),
            span,
        );
        self.plans.lock().insert(key, plan.clone());
        plan
    }

    fn run_gemm(&self, c: MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
        // Plain GEMM packing buffers come from fmm-gemm's global pool.
        if self.config.parallel {
            fmm_gemm::gemm_parallel(c, a, b);
        } else {
            fmm_gemm::gemm(c, a, b);
        }
    }

    fn run_fmm(
        &self,
        c: MatMut<'_, T>,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        plan: &FmmPlan,
        variant: Variant,
        strategy: Strategy,
    ) -> usize {
        let mut guard = self.checkout();
        let ctx = guard.ctx();
        let grows_before = ctx.grow_count();
        let occupied = if self.config.parallel {
            let task_ws =
                fmm_sched::execute(c, a, b, plan, variant, strategy, ctx, self.config.workers);
            if matches!(strategy, Strategy::Dfs) {
                ctx.fmm_context().last_layout().map_or(0, ArenaLayout::total_elements)
            } else {
                task_ws
            }
        } else {
            let fmm = ctx.fmm_context();
            fmm_execute(c, a, b, plan, variant, fmm);
            fmm.last_layout().map_or(0, ArenaLayout::total_elements)
        };
        self.counters.arena_grows.fetch_add(ctx.grow_count() - grows_before, Ordering::Relaxed);
        occupied
    }

    fn checkout(&self) -> CtxGuard<'_, T> {
        let ctx = match self.contexts.lock().pop() {
            Some(mut ctx) => {
                // A previous checkout (e.g. a batch) may have installed
                // worker-shrunk parameters; restore the configured set.
                ctx.set_params(self.config.params);
                ctx
            }
            None => {
                self.counters.context_allocations.fetch_add(1, Ordering::Relaxed);
                SchedContext::new(self.config.params)
            }
        };
        CtxGuard { engine: self, ctx: Some(ctx) }
    }

    fn release_context(&self, ctx: SchedContext<T>) {
        let mut pool = self.contexts.lock();
        if pool.len() < self.config.max_pooled_contexts {
            pool.push(ctx);
        }
    }
}

/// Raw pointer to a batch's items, shared across the fan-out workers.
/// Safety rests on the fan-out's each-index-exactly-once guarantee; see
/// the comment at the use site.
struct BatchItemsPtr<'a, T>(*mut BatchItem<'a, T>);

impl<'a, T: GemmScalar> BatchItemsPtr<'a, T> {
    /// Mutable access to item `i`.
    ///
    /// # Safety
    /// At most one live borrow per index, and the parent slice must
    /// outlive it — both upheld by the fan-out index protocol.
    #[allow(clippy::mut_from_ref)]
    unsafe fn item(&self, i: usize) -> &mut BatchItem<'a, T> {
        // SAFETY: `i` indexes into the parent slice and no other borrow of
        // it is live, per the caller's contract.
        unsafe { &mut *self.0.add(i) }
    }
}

// SAFETY: dereferencing is `unsafe` at the use site, with disjointness
// guaranteed by the fan-out index protocol.
unsafe impl<T: GemmScalar> Send for BatchItemsPtr<'_, T> {}
unsafe impl<T: GemmScalar> Sync for BatchItemsPtr<'_, T> {}

impl<T: GemmScalar> std::fmt::Debug for FmmEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FmmEngine(decisions={}, plans={}, pooled_contexts={}, stats={:?})",
            self.decisions.lock().len(),
            self.plans.lock().len(),
            self.contexts.lock().len(),
            self.stats()
        )
    }
}

// The engine is shared across threads (`multiply(&self, ..)`); both auto
// traits must hold for a process-global engine.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FmmEngine<f64>>();
    assert_send_sync::<FmmEngine<f32>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_dense::{fill, norms, Matrix};

    fn tiny_config(routing: Routing) -> EngineConfig {
        EngineConfig { params: BlockingParams::tiny(), routing, ..EngineConfig::default() }
    }

    #[test]
    fn multiply_matches_reference_via_model_routing() {
        let engine = FmmEngine::new(tiny_config(Routing::Model));
        for (m, k, n) in [(37, 29, 41), (64, 64, 64), (5, 120, 5)] {
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let mut c = Matrix::zeros(m, n);
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn decision_cache_hits_skip_ranking() {
        let engine = FmmEngine::new(tiny_config(Routing::Model));
        let a = fill::bench_workload(48, 32, 1);
        let b = fill::bench_workload(32, 40, 2);
        let mut c = Matrix::zeros(48, 40);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let cold = engine.stats();
        assert_eq!(cold.decision_misses, 1);
        assert_eq!(cold.rankings, 1);
        for _ in 0..5 {
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let warm = engine.stats();
        assert_eq!(warm.rankings, cold.rankings, "no re-ranking on cache hits");
        assert_eq!(warm.plan_compositions, cold.plan_compositions);
        assert_eq!(warm.decision_hits, cold.decision_hits + 5);
    }

    #[test]
    fn pinned_routing_runs_the_requested_plan() {
        let engine = FmmEngine::new(tiny_config(Routing::Pinned {
            dims: (2, 2, 2),
            levels: 1,
            variant: Variant::Abc,
        }));
        assert_eq!(engine.decision_label(32, 32, 32), "<2,2,2> ABC");
        let a = fill::bench_workload(32, 32, 3);
        let b = fill::bench_workload(32, 32, 4);
        let mut c = Matrix::zeros(32, 32);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }

    #[test]
    fn stats_fields_display_and_reset_are_coherent() {
        let engine = FmmEngine::new(tiny_config(Routing::Model));
        let a = fill::bench_workload(48, 32, 1);
        let b = fill::bench_workload(32, 40, 2);
        let mut c = Matrix::zeros(48, 40);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());

        let stats = engine.stats();
        let fields = stats.fields();
        // The reflection surface must cover every public counter.
        assert_eq!(
            fields.iter().map(|(_, v)| *v).sum::<u64>(),
            stats.executions
                + stats.decision_hits
                + stats.decision_misses
                + stats.rankings
                + stats.plan_compositions
                + stats.context_allocations
                + stats.arena_grows
                + stats.batches
                + stats.batch_items
                + stats.pinned_fallbacks
                + stats.tuned_hits
                + stats.tuned_misses
                + stats.audit_samples
                + stats.audit_drops,
        );
        // Every field name is unique (duplicates would silently collide
        // in the serve-side registry mirror).
        let names: std::collections::BTreeSet<&str> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), fields.len(), "duplicate field names in {fields:?}");
        // An executed multiply must have produced an audit sample (or a
        // counted drop if another test filled the process-wide table).
        assert_eq!(stats.audit_samples + stats.audit_drops, 1, "multiply must audit");
        let rendered = stats.to_string();
        assert!(rendered.contains("executions=1"), "{rendered}");
        assert!(rendered.contains("rankings=1"), "{rendered}");
        assert!(rendered.contains("audit_samples="), "{rendered}");

        engine.reset_stats();
        assert_eq!(engine.stats(), EngineStats::default());
        // Caches survive a reset: the next call is a decision hit.
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let warm = engine.stats();
        assert_eq!(warm.executions, 1);
        assert_eq!(warm.decision_hits, 1);
        assert_eq!(warm.rankings, 0);
    }

    #[test]
    fn prepare_makes_the_first_call_warm() {
        let engine = FmmEngine::new(tiny_config(Routing::Pinned {
            dims: (2, 2, 2),
            levels: 2,
            variant: Variant::Naive,
        }));
        engine.prepare(36, 36, 36);
        let prepared = engine.stats();
        assert_eq!(prepared.decision_misses, 1);
        let a = fill::bench_workload(36, 36, 5);
        let b = fill::bench_workload(36, 36, 6);
        let mut c = Matrix::zeros(36, 36);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let after = engine.stats();
        assert_eq!(after.arena_grows, prepared.arena_grows, "arena was preplanned");
        assert_eq!(after.context_allocations, prepared.context_allocations);
        assert_eq!(after.plan_compositions, prepared.plan_compositions);
    }
}
