//! A small least-recently-used cache.
//!
//! Capacity-bounded map with access-stamped entries; eviction scans for the
//! oldest stamp. O(capacity) eviction is deliberate: the engine's caches
//! hold at most a few thousand entries, the scan touches one compact
//! `HashMap`, and the no-dependency implementation keeps the vendored
//! surface minimal. Swap in a doubly-linked-list LRU if decision traffic
//! ever makes this measurable.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used cache from `K` to `V`.
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Cache holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, tick: 0, map: HashMap::with_capacity(capacity.min(1024)) }
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry
    /// when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_inserted_values() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), Some(2));
        assert_eq!(c.get(&"c"), None);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh "a"; "b" is now oldest
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh, not a new entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = LruCache::new(0);
        c.insert(1, "x");
        assert_eq!(c.get(&1), Some("x"));
        c.insert(2, "y");
        assert_eq!(c.len(), 1);
    }
}
