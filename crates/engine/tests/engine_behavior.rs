//! Engine-level behavioral guarantees: the warm-path contract, concurrent
//! correctness, and arena sizing.

use fmm_core::{FmmPlan, Strategy, Variant};
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{BatchItem, EngineConfig, FmmEngine, Routing};
use fmm_gemm::BlockingParams;

fn tiny_config(routing: Routing) -> EngineConfig {
    EngineConfig { params: BlockingParams::tiny(), routing, ..EngineConfig::default() }
}

/// The PR's headline guarantee: after the first call for a given
/// `(m, k, n)` (and its variant), subsequent `multiply` calls perform no
/// plan composition, no candidate re-ranking, and no heap allocation for
/// FMM temporaries — the plan cache, decision cache, context pool, and
/// preplanned arena absorb everything.
#[test]
fn warm_path_does_no_composition_ranking_or_allocation() {
    // Pinned FMM routing keeps the executed path an actual FMM (model
    // routing would pick GEMM at test-friendly sizes), exercising the
    // arena; every cache layer behaves identically under model routing.
    for variant in Variant::ALL {
        let engine =
            FmmEngine::new(tiny_config(Routing::Pinned { dims: (2, 2, 2), levels: 1, variant }));
        let (m, k, n) = (33, 29, 41); // fringes included
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let cold = engine.stats();
        assert_eq!(cold.decision_misses, 1, "{}", variant.name());
        assert_eq!(cold.context_allocations, 1, "{}", variant.name());

        for _ in 0..8 {
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let warm = engine.stats();
        assert_eq!(
            warm.plan_compositions,
            cold.plan_compositions,
            "{}: no recomposition",
            variant.name()
        );
        assert_eq!(warm.rankings, cold.rankings, "{}: no re-ranking", variant.name());
        assert_eq!(
            warm.arena_grows,
            cold.arena_grows,
            "{}: no workspace allocation",
            variant.name()
        );
        assert_eq!(
            warm.context_allocations,
            cold.context_allocations,
            "{}: context pool reused",
            variant.name()
        );
        assert_eq!(warm.decision_hits, cold.decision_hits + 8, "{}", variant.name());
    }
}

/// Model routing has the same warm-path property for the decision layer.
#[test]
fn model_routing_ranks_once_per_shape() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    let shapes = [(48usize, 32usize, 40usize), (37, 29, 41), (64, 64, 64)];
    for &(m, k, n) in &shapes {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    }
    let cold = engine.stats();
    assert_eq!(cold.rankings, shapes.len() as u64, "one ranking per distinct shape");
    let compositions = cold.plan_compositions;
    assert!(compositions > 0, "the candidate plans were composed");

    for &(m, k, n) in &shapes {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    }
    let warm = engine.stats();
    assert_eq!(warm.rankings, cold.rankings);
    assert_eq!(warm.plan_compositions, compositions, "plans composed exactly once");
}

/// Concurrent `multiply` calls from many threads produce results matching
/// the reference GEMM — the engine shares safely via `&self`.
#[test]
fn concurrent_multiply_matches_reference() {
    for routing in
        [Routing::Model, Routing::Pinned { dims: (2, 2, 2), levels: 1, variant: Variant::Abc }]
    {
        let engine = FmmEngine::new(tiny_config(routing.clone()));
        let threads = 8;
        let iterations = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = &engine;
                s.spawn(move || {
                    // Distinct shapes per thread exercise decision-cache
                    // writes under contention; repeats exercise hits.
                    let (m, k, n) = (24 + 2 * t, 18 + t, 30 + 3 * t);
                    let a = fill::bench_workload(m, k, t as u64 + 1);
                    let b = fill::bench_workload(k, n, t as u64 + 100);
                    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                    for _ in 0..iterations {
                        let mut c = Matrix::zeros(m, n);
                        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
                        assert!(
                            norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                            "thread {t}: m={m} k={k} n={n}"
                        );
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.executions, (threads * iterations) as u64);
        assert!(
            stats.context_allocations <= threads as u64,
            "at most one context per concurrent caller, got {}",
            stats.context_allocations
        );
    }
}

/// Arena sizing matches `Variant::workspace_elements` for all three
/// variants (migrated from the executor's
/// `workspace_requirements_match_allocations` unit test, now asserted
/// through the engine's pooled execution path).
#[test]
fn arena_sizing_matches_workspace_elements() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let (m, k, n) = (16, 12, 20);
    assert_eq!(Variant::Abc.workspace_elements(&plan, m, k, n), 0);
    assert_eq!(Variant::Ab.workspace_elements(&plan, m, k, n), 8 * 10);
    assert_eq!(Variant::Naive.workspace_elements(&plan, m, k, n), 8 * 10 + 8 * 6 + 6 * 10);
    for variant in Variant::ALL {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = fill::bench_workload(m, n, 3);
        let occupied =
            engine.multiply_with_plan(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant);
        assert_eq!(
            occupied,
            variant.workspace_elements(&plan, m, k, n),
            "variant {}",
            variant.name()
        );
        // And the result is correct.
        let mut c_ref = fill::bench_workload(m, n, 3);
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }
}

/// The scheduler strategies route through the same cache layers: after the
/// cold call, warm BFS/hybrid multiplies perform no re-ranking, no plan
/// recomposition, and no workspace allocation — the acceptance guarantee
/// for the task-parallel paths.
#[test]
fn warm_scheduled_paths_do_no_ranking_composition_or_allocation() {
    for strategy in [Strategy::Bfs, Strategy::Hybrid] {
        for variant in Variant::ALL {
            let engine = FmmEngine::new(EngineConfig {
                params: BlockingParams::tiny(),
                parallel: true,
                workers: 4,
                strategy: Some(strategy),
                routing: Routing::Pinned { dims: (2, 2, 2), levels: 2, variant },
                ..EngineConfig::default()
            });
            let (m, k, n) = (52, 44, 60); // fringes included
            let a = fill::bench_workload(m, k, 1);
            let b = fill::bench_workload(k, n, 2);
            let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
            let mut c = Matrix::zeros(m, n);
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
            let cold = engine.stats();
            assert_eq!(cold.decision_misses, 1);
            for _ in 0..6 {
                let mut c = Matrix::zeros(m, n);
                engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
                let tol = norms::fmm_tolerance(k, 2);
                assert!(
                    norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < tol,
                    "{} {}",
                    strategy.name(),
                    variant.name()
                );
            }
            let warm = engine.stats();
            let label = format!("{} {}", strategy.name(), variant.name());
            assert_eq!(warm.rankings, cold.rankings, "{label}: no re-ranking");
            assert_eq!(warm.plan_compositions, cold.plan_compositions, "{label}: no recomposition");
            assert_eq!(warm.arena_grows, cold.arena_grows, "{label}: no workspace allocation");
            assert_eq!(warm.context_allocations, cold.context_allocations, "{label}: pool reused");
            assert_eq!(warm.decision_hits, cold.decision_hits + 6, "{label}");
        }
    }
}

/// A parallel model-routed engine picks a strategy per shape and labels it.
#[test]
fn parallel_model_routing_selects_a_strategy() {
    // `workers` is clamped to the rayon pool width (the model must not
    // rank with parallelism the machine cannot deliver), so widen the
    // pool first — correctness of every other test is width-agnostic.
    rayon::ThreadPoolBuilder::new().num_threads(8).build_global().unwrap();
    // Pin the paper machine: the assertion below is about the parallel
    // model's *formula* at known constants, not about whatever constants
    // this CI host happens to calibrate to.
    let engine = FmmEngine::new(EngineConfig {
        arch: fmm_model::ArchParams::paper_machine().into(),
        parallel: true,
        workers: 8,
        ..EngineConfig::default()
    });
    // 256³: too small for DFS data parallelism to fill 8 workers — the
    // parallel model must route away from plain DFS (see
    // fmm_model::parallel tests for the formula-level assertion).
    let label = engine.decision_label(256, 256, 256);
    assert!(
        label.contains("BFS") || label.contains("Hybrid"),
        "expected a task-parallel schedule at 256^3 x 8 workers, got {label}"
    );
    let a = fill::bench_workload(256, 256, 1);
    let b = fill::bench_workload(256, 256, 2);
    let mut c = Matrix::zeros(256, 256);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
}

/// `multiply_batch`: every item matches the reference, the batch counters
/// advance, and a warm same-shape batch costs no rankings and no
/// allocations (inter-problem parallelism reuses pooled contexts).
#[test]
fn multiply_batch_is_correct_and_warm_after_first_batch() {
    let engine = FmmEngine::new(EngineConfig {
        params: BlockingParams::tiny(),
        parallel: true,
        workers: 4,
        routing: Routing::Pinned { dims: (2, 2, 2), levels: 1, variant: Variant::Abc },
        ..EngineConfig::default()
    });
    let items_n = 12;
    let (m, k, n) = (48, 40, 44);
    let a: Vec<Matrix> = (0..items_n).map(|i| fill::bench_workload(m, k, i as u64 + 1)).collect();
    let b: Vec<Matrix> = (0..items_n).map(|i| fill::bench_workload(k, n, i as u64 + 50)).collect();
    let refs: Vec<Matrix> =
        (0..items_n).map(|i| fmm_gemm::reference::matmul(a[i].as_ref(), b[i].as_ref())).collect();

    let run_batch = || {
        let mut cs: Vec<Matrix> = (0..items_n).map(|_| Matrix::zeros(m, n)).collect();
        {
            let mut items: Vec<BatchItem<'_>> = cs
                .iter_mut()
                .zip(a.iter().zip(b.iter()))
                .map(|(c, (a, b))| BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref()))
                .collect();
            engine.multiply_batch(&mut items);
        }
        for (i, c) in cs.iter().enumerate() {
            assert!(norms::rel_error(c.as_ref(), refs[i].as_ref()) < 1e-9, "item {i}");
        }
    };
    run_batch();
    let cold = engine.stats();
    assert_eq!(cold.batches, 1);
    assert_eq!(cold.batch_items, items_n as u64);
    assert_eq!(cold.executions, items_n as u64);
    assert_eq!(cold.decision_misses, 1, "one shape, one decision");

    run_batch();
    let warm = engine.stats();
    assert_eq!(warm.batches, 2);
    assert_eq!(warm.rankings, cold.rankings, "warm batch re-ranks nothing");
    assert_eq!(warm.plan_compositions, cold.plan_compositions);
    assert_eq!(warm.arena_grows, cold.arena_grows, "warm batch allocates no workspaces");
    assert_eq!(warm.context_allocations, cold.context_allocations, "contexts pooled");
}

/// A sequential engine accepts batches too (items just run in order).
#[test]
fn sequential_engine_runs_batches_in_order() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    let a = fill::bench_workload(33, 29, 1);
    let b = fill::bench_workload(29, 41, 2);
    let mut c0 = Matrix::zeros(33, 41);
    let mut c1 = Matrix::zeros(33, 41);
    {
        let mut items = vec![
            BatchItem::new(c0.as_mut(), a.as_ref(), b.as_ref()),
            BatchItem::new(c1.as_mut(), a.as_ref(), b.as_ref()),
        ];
        engine.multiply_batch(&mut items);
    }
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c0.as_ref(), c_ref.as_ref()) < 1e-9);
    assert_eq!(c0, c1, "identical problems yield identical results");
    assert_eq!(engine.stats().batch_items, 2);
}

/// Two-level plans and larger problems route through the same caches.
#[test]
fn two_level_pinned_execution_is_correct_and_cached() {
    let engine = FmmEngine::new(tiny_config(Routing::Pinned {
        dims: (2, 2, 2),
        levels: 2,
        variant: Variant::Ab,
    }));
    let (m, k, n) = (52, 44, 60);
    let a = fill::bench_workload(m, k, 7);
    let b = fill::bench_workload(k, n, 8);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    for _ in 0..3 {
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let tol = norms::fmm_tolerance(k, 2);
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < tol);
    }
    assert_eq!(engine.stats().plan_compositions, 1, "one 2-level composition total");
}
