//! Engine-level behavioral guarantees: the warm-path contract, concurrent
//! correctness, and arena sizing.

use fmm_core::{FmmPlan, Variant};
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{EngineConfig, FmmEngine, Routing};
use fmm_gemm::BlockingParams;

fn tiny_config(routing: Routing) -> EngineConfig {
    EngineConfig { params: BlockingParams::tiny(), routing, ..EngineConfig::default() }
}

/// The PR's headline guarantee: after the first call for a given
/// `(m, k, n)` (and its variant), subsequent `multiply` calls perform no
/// plan composition, no candidate re-ranking, and no heap allocation for
/// FMM temporaries — the plan cache, decision cache, context pool, and
/// preplanned arena absorb everything.
#[test]
fn warm_path_does_no_composition_ranking_or_allocation() {
    // Pinned FMM routing keeps the executed path an actual FMM (model
    // routing would pick GEMM at test-friendly sizes), exercising the
    // arena; every cache layer behaves identically under model routing.
    for variant in Variant::ALL {
        let engine =
            FmmEngine::new(tiny_config(Routing::Pinned { dims: (2, 2, 2), levels: 1, variant }));
        let (m, k, n) = (33, 29, 41); // fringes included
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let cold = engine.stats();
        assert_eq!(cold.decision_misses, 1, "{}", variant.name());
        assert_eq!(cold.context_allocations, 1, "{}", variant.name());

        for _ in 0..8 {
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        }
        let warm = engine.stats();
        assert_eq!(
            warm.plan_compositions,
            cold.plan_compositions,
            "{}: no recomposition",
            variant.name()
        );
        assert_eq!(warm.rankings, cold.rankings, "{}: no re-ranking", variant.name());
        assert_eq!(
            warm.arena_grows,
            cold.arena_grows,
            "{}: no workspace allocation",
            variant.name()
        );
        assert_eq!(
            warm.context_allocations,
            cold.context_allocations,
            "{}: context pool reused",
            variant.name()
        );
        assert_eq!(warm.decision_hits, cold.decision_hits + 8, "{}", variant.name());
    }
}

/// Model routing has the same warm-path property for the decision layer.
#[test]
fn model_routing_ranks_once_per_shape() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    let shapes = [(48usize, 32usize, 40usize), (37, 29, 41), (64, 64, 64)];
    for &(m, k, n) in &shapes {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    }
    let cold = engine.stats();
    assert_eq!(cold.rankings, shapes.len() as u64, "one ranking per distinct shape");
    let compositions = cold.plan_compositions;
    assert!(compositions > 0, "the candidate plans were composed");

    for &(m, k, n) in &shapes {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    }
    let warm = engine.stats();
    assert_eq!(warm.rankings, cold.rankings);
    assert_eq!(warm.plan_compositions, compositions, "plans composed exactly once");
}

/// Concurrent `multiply` calls from many threads produce results matching
/// the reference GEMM — the engine shares safely via `&self`.
#[test]
fn concurrent_multiply_matches_reference() {
    for routing in
        [Routing::Model, Routing::Pinned { dims: (2, 2, 2), levels: 1, variant: Variant::Abc }]
    {
        let engine = FmmEngine::new(tiny_config(routing.clone()));
        let threads = 8;
        let iterations = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = &engine;
                s.spawn(move || {
                    // Distinct shapes per thread exercise decision-cache
                    // writes under contention; repeats exercise hits.
                    let (m, k, n) = (24 + 2 * t, 18 + t, 30 + 3 * t);
                    let a = fill::bench_workload(m, k, t as u64 + 1);
                    let b = fill::bench_workload(k, n, t as u64 + 100);
                    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
                    for _ in 0..iterations {
                        let mut c = Matrix::zeros(m, n);
                        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
                        assert!(
                            norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9,
                            "thread {t}: m={m} k={k} n={n}"
                        );
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.executions, (threads * iterations) as u64);
        assert!(
            stats.context_allocations <= threads as u64,
            "at most one context per concurrent caller, got {}",
            stats.context_allocations
        );
    }
}

/// Arena sizing matches `Variant::workspace_elements` for all three
/// variants (migrated from the executor's
/// `workspace_requirements_match_allocations` unit test, now asserted
/// through the engine's pooled execution path).
#[test]
fn arena_sizing_matches_workspace_elements() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    let plan = FmmPlan::new(vec![fmm_core::registry::strassen()]);
    let (m, k, n) = (16, 12, 20);
    assert_eq!(Variant::Abc.workspace_elements(&plan, m, k, n), 0);
    assert_eq!(Variant::Ab.workspace_elements(&plan, m, k, n), 8 * 10);
    assert_eq!(Variant::Naive.workspace_elements(&plan, m, k, n), 8 * 10 + 8 * 6 + 6 * 10);
    for variant in Variant::ALL {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = fill::bench_workload(m, n, 3);
        let occupied =
            engine.multiply_with_plan(c.as_mut(), a.as_ref(), b.as_ref(), &plan, variant);
        assert_eq!(
            occupied,
            variant.workspace_elements(&plan, m, k, n),
            "variant {}",
            variant.name()
        );
        // And the result is correct.
        let mut c_ref = fill::bench_workload(m, n, 3);
        fmm_gemm::reference::matmul_into(c_ref.as_mut(), a.as_ref(), b.as_ref());
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < 1e-10);
    }
}

/// Two-level plans and larger problems route through the same caches.
#[test]
fn two_level_pinned_execution_is_correct_and_cached() {
    let engine = FmmEngine::new(tiny_config(Routing::Pinned {
        dims: (2, 2, 2),
        levels: 2,
        variant: Variant::Ab,
    }));
    let (m, k, n) = (52, 44, 60);
    let a = fill::bench_workload(m, k, 7);
    let b = fill::bench_workload(k, n, 8);
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    for _ in 0..3 {
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let tol = norms::fmm_tolerance(k, 2);
        assert!(norms::max_abs_diff(c.as_ref(), c_ref.as_ref()) < tol);
    }
    assert_eq!(engine.stats().plan_compositions, 1, "one 2-level composition total");
}
