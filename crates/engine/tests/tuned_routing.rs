//! `Routing::Tuned` end-to-end: a warm store routes with zero model
//! re-ranking, every miss mode falls back to model routing, and invalid
//! architecture constants are rejected at construction.

use fmm_core::{Strategy, Variant};
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{
    kernel_fingerprint, ArchSource, EngineConfig, FmmEngine, Routing, ShapeClass, TuneStore,
    TunedChoice,
};
use fmm_gemm::BlockingParams;
use fmm_model::ArchParams;
use fmm_tune::TunedDecision;
use std::sync::Arc;

/// The fingerprint the engine will look decisions up under.
fn f64_kernel() -> String {
    kernel_fingerprint::<f64>()
}

/// A store holding one winning decision for the given shape at one worker.
fn store_with(m: usize, k: usize, n: usize, kernel: &str, choice: TunedChoice) -> Arc<TuneStore> {
    let mut store = TuneStore::new();
    store.set_decision(
        ShapeClass::of(m, k, n),
        "f64",
        1,
        kernel,
        TunedDecision { choice, gflops: 1.0 },
    );
    Arc::new(store)
}

fn tuned_engine(store: Arc<TuneStore>) -> FmmEngine {
    FmmEngine::new(EngineConfig {
        arch: ArchParams::paper_machine().into(),
        params: BlockingParams::tiny(),
        routing: Routing::Tuned { store },
        ..EngineConfig::default()
    })
}

/// The acceptance guarantee: a fresh engine over a warm store performs
/// zero model ranking for the stored shape class, and the stored decision
/// actually executes (correctly).
#[test]
fn warm_store_routes_without_model_ranking() {
    let (m, k, n) = (64, 64, 64);
    let choice = TunedChoice::Fmm {
        dims: (2, 2, 2),
        levels: 1,
        variant: Variant::Abc,
        strategy: Strategy::Dfs,
    };
    let engine = tuned_engine(store_with(m, k, n, &f64_kernel(), choice));
    assert_eq!(engine.decision_label(m, k, n), "<2,2,2> ABC", "the stored decision routes");

    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut c = Matrix::zeros(m, n);
    for _ in 0..3 {
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    }
    let stats = engine.stats();
    assert_eq!(stats.rankings, 0, "stored shape classes never rank");
    assert_eq!(stats.tuned_hits, 1, "one decision miss, answered by the store");
    assert_eq!(stats.tuned_misses, 0);

    let mut c_once = Matrix::zeros(m, n);
    engine.multiply(c_once.as_mut(), a.as_ref(), b.as_ref());
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c_once.as_ref(), c_ref.as_ref()) < 1e-9);
}

/// Nearby shapes share the stored class (that is what makes a store warm
/// for *traffic*, not just for the tuned size), while other classes miss.
#[test]
fn class_neighbors_hit_and_strangers_fall_back() {
    let choice = TunedChoice::Fmm {
        dims: (2, 2, 2),
        levels: 1,
        variant: Variant::Abc,
        strategy: Strategy::Dfs,
    };
    let engine = tuned_engine(store_with(64, 64, 64, &f64_kernel(), choice));
    let run = |m: usize, k: usize, n: usize| {
        let a = fill::bench_workload(m, k, 1);
        let b = fill::bench_workload(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
        let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
        assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9, "m={m} k={k} n={n}");
    };
    run(60, 58, 70); // buckets to 64x64x64 -> hit
    assert_eq!(engine.stats().tuned_hits, 1);
    assert_eq!(engine.stats().rankings, 0);

    run(120, 120, 120); // buckets to 128^3 -> miss, model fallback
    let stats = engine.stats();
    assert_eq!(stats.tuned_misses, 1, "unknown class fell back");
    assert_eq!(stats.rankings, 1, "fallback ranked once");
}

/// A stale entry whose kernel fingerprint does not match the running
/// machine is ignored, not replayed.
#[test]
fn kernel_fingerprint_mismatch_is_a_miss() {
    let choice = TunedChoice::Fmm {
        dims: (2, 2, 2),
        levels: 1,
        variant: Variant::Abc,
        strategy: Strategy::Dfs,
    };
    let engine = tuned_engine(store_with(64, 64, 64, "some_other_cpu_kernel", choice));
    let a = fill::bench_workload(64, 64, 1);
    let b = fill::bench_workload(64, 64, 2);
    let mut c = Matrix::zeros(64, 64);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let stats = engine.stats();
    assert_eq!(stats.tuned_hits, 0);
    assert_eq!(stats.tuned_misses, 1);
    assert_eq!(stats.rankings, 1);
}

/// A stored decision naming an algorithm the registry no longer holds
/// degrades to model routing instead of panicking.
#[test]
fn stale_algorithm_reference_falls_back_to_model() {
    let choice = TunedChoice::Fmm {
        dims: (9, 9, 9),
        levels: 1,
        variant: Variant::Abc,
        strategy: Strategy::Dfs,
    };
    let engine = tuned_engine(store_with(64, 64, 64, &f64_kernel(), choice));
    let a = fill::bench_workload(64, 64, 1);
    let b = fill::bench_workload(64, 64, 2);
    let mut c = Matrix::zeros(64, 64);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    let stats = engine.stats();
    assert_eq!(stats.tuned_misses, 1);
    assert_eq!(stats.rankings, 1);
}

/// A corrupted store file loads as empty, so a tuned engine over it is
/// just a model-routed engine — no panic anywhere on the path.
#[test]
fn corrupted_store_file_degrades_to_model_routing() {
    let path = std::env::temp_dir().join(format!("fmm-tune-corrupt-{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema_version\": 1, \"calibr").unwrap();
    let store = Arc::new(TuneStore::load(&path));
    assert!(store.is_empty(), "corrupted file reads as empty");
    let engine = tuned_engine(store);
    let a = fill::bench_workload(48, 40, 1);
    let b = fill::bench_workload(40, 44, 2);
    let mut c = Matrix::zeros(48, 44);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-9);
    let stats = engine.stats();
    assert_eq!(stats.tuned_misses, 1);
    assert_eq!(stats.rankings, 1);
    std::fs::remove_file(&path).ok();
}

/// A programmatically-built store entry with `levels: 0` (the JSON load
/// path rejects it, but `Routing::Tuned` accepts any `TuneStore` value)
/// reads as a miss instead of panicking plan composition.
#[test]
fn zero_levels_entry_is_a_miss_not_a_panic() {
    let choice = TunedChoice::Fmm {
        dims: (2, 2, 2),
        levels: 0,
        variant: Variant::Abc,
        strategy: Strategy::Dfs,
    };
    let engine = tuned_engine(store_with(64, 64, 64, &f64_kernel(), choice));
    let a = fill::bench_workload(64, 64, 1);
    let b = fill::bench_workload(64, 64, 2);
    let mut c = Matrix::zeros(64, 64);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let stats = engine.stats();
    assert_eq!(stats.tuned_misses, 1);
    assert_eq!(stats.rankings, 1);
}

/// A stored GEMM winner routes to plain GEMM.
#[test]
fn stored_gemm_decision_routes_to_gemm() {
    let engine = tuned_engine(store_with(32, 32, 32, &f64_kernel(), TunedChoice::Gemm));
    assert_eq!(engine.decision_label(32, 32, 32), "GEMM");
    assert_eq!(engine.stats().tuned_hits, 1);
    assert_eq!(engine.stats().rankings, 0);
}

/// Satellite guarantee: invalid arch constants are rejected at
/// construction instead of silently poisoning every ranking.
#[test]
#[should_panic(expected = "EngineConfig.arch is invalid")]
fn invalid_fixed_arch_is_rejected_at_construction() {
    let mut bad = ArchParams::paper_machine();
    bad.tau_b = -1.0; // a negative bandwidth cost
    let _ = FmmEngine::<f64>::new(EngineConfig {
        arch: ArchSource::Fixed(bad),
        ..EngineConfig::default()
    });
}
