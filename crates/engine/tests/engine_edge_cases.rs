//! Engine edge cases that previously passed only by accident (or did not
//! pass at all): pinned routing on unregistered dims, counter integrity
//! under invalid batches, contradictory worker configuration, degenerate
//! shapes, empty batches, and non-contiguous operand views — each driven
//! through both the `f64` and `f32` engines where a dtype applies.

use fmm_core::Variant;
use fmm_dense::{fill, norms, Matrix};
use fmm_engine::{BatchItem, EngineConfig, FmmEngine, Routing};
use fmm_gemm::{BlockingParams, GemmScalar};

fn tiny_config(routing: Routing) -> EngineConfig {
    EngineConfig { params: BlockingParams::tiny(), routing, ..EngineConfig::default() }
}

/// Pinned routing that forces the FMM path: `(2, 2, 2)` is always in the
/// registry, and `BlockingParams::tiny()` keeps the core small.
fn pinned_strassen(variant: Variant) -> EngineConfig {
    tiny_config(Routing::Pinned { dims: (2, 2, 2), levels: 1, variant })
}

/// Regression: `Routing::Pinned` with dims no registry algorithm has used
/// to `panic!` out of `compute_decision` and kill the process. It must
/// fall back to the GEMM decision — counted, cached, and correct.
#[test]
fn pinned_unregistered_dims_falls_back_to_gemm() {
    let engine = FmmEngine::new(tiny_config(Routing::Pinned {
        dims: (7, 7, 7),
        levels: 1,
        variant: Variant::Abc,
    }));
    let (m, k, n) = (24, 20, 28);
    let a = fill::bench_workload(m, k, 1);
    let b = fill::bench_workload(k, n, 2);
    let mut c = Matrix::zeros(m, n);
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let c_ref = fmm_gemm::reference::matmul(a.as_ref(), b.as_ref());
    assert!(norms::rel_error(c.as_ref(), c_ref.as_ref()) < 1e-12);

    let stats = engine.stats();
    assert_eq!(stats.pinned_fallbacks, 1, "the fallback is counted");
    assert_eq!(engine.decision_label(m, k, n), "GEMM");

    // The fallback decision is cached like any other: repeating the shape
    // neither re-falls-back nor re-ranks.
    engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    let warm = engine.stats();
    assert_eq!(warm.pinned_fallbacks, 1, "one fallback per decision miss, not per call");
    // The `decision_label` probe and the repeat multiply both hit the cache.
    assert_eq!(warm.decision_hits, stats.decision_hits + 2);
}

/// Regression: `multiply_batch` bumped `batches`/`batch_items`/`executions`
/// before validating item shapes, so a mismatch left the stats counting a
/// batch that never ran.
#[test]
fn batch_shape_mismatch_leaves_stats_unchanged() {
    let engine = FmmEngine::new(tiny_config(Routing::Model));
    // Warm the engine with a valid batch first.
    let a = fill::bench_workload(16, 12, 1);
    let b = fill::bench_workload(12, 8, 2);
    let mut c = Matrix::zeros(16, 8);
    engine.multiply_batch(&mut [BatchItem::new(c.as_mut(), a.as_ref(), b.as_ref())]);
    let before = engine.stats();
    assert_eq!(before.batches, 1);
    assert_eq!(before.batch_items, 1);

    // Second item has a C of the wrong shape: the batch must panic without
    // touching any counter.
    let mut c_ok = Matrix::zeros(16, 8);
    let mut c_bad = Matrix::zeros(9, 9);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.multiply_batch(&mut [
            BatchItem::new(c_ok.as_mut(), a.as_ref(), b.as_ref()),
            BatchItem::new(c_bad.as_mut(), a.as_ref(), b.as_ref()),
        ]);
    }));
    assert!(result.is_err(), "shape mismatch still panics");
    let after = engine.stats();
    assert_eq!(after, before, "a rejected batch leaves EngineStats untouched");
}

/// Regression: `workers > 0` with `parallel: false` silently ran
/// sequentially; the constructor now rejects the contradiction outright.
#[test]
#[should_panic(expected = "contradictory")]
fn workers_without_parallel_is_rejected_at_construction() {
    let _ = FmmEngine::<f64>::new(EngineConfig {
        workers: 4,
        parallel: false,
        ..EngineConfig::default()
    });
}

/// The non-contradictory worker configurations still construct.
#[test]
fn worker_configs_with_parallel_or_zero_workers_construct() {
    let _ = FmmEngine::<f64>::new(EngineConfig {
        workers: 4,
        parallel: true,
        ..EngineConfig::default()
    });
    let _ = FmmEngine::<f64>::new(EngineConfig {
        workers: 0,
        parallel: false,
        ..EngineConfig::default()
    });
}

/// Degenerate shapes (`m == 0`, `k == 0`, `n == 0`) through every routing
/// mode, both dtypes: must be no-ops on `C` (k = 0 contributes nothing to
/// an accumulation) and must not panic anywhere in peeling or packing.
fn check_degenerate<T: GemmScalar>() {
    for routing in
        [Routing::Model, Routing::Pinned { dims: (2, 2, 2), levels: 1, variant: Variant::Abc }]
    {
        let engine = FmmEngine::<T>::new(tiny_config(routing));
        for (m, k, n) in [(0, 8, 8), (8, 0, 8), (8, 8, 0), (0, 0, 0)] {
            let a = fill::bench_workload_t::<T>(m, k, 3);
            let b = fill::bench_workload_t::<T>(k, n, 4);
            let mut c = Matrix::<T>::filled(m, n, T::from_f64(5.0));
            engine.multiply(c.as_mut(), a.as_ref(), b.as_ref());
            assert_eq!(
                c,
                Matrix::<T>::filled(m, n, T::from_f64(5.0)),
                "{} m={m} k={k} n={n}: degenerate multiply must not alter C",
                T::NAME
            );
        }
    }
}

#[test]
fn degenerate_shapes_are_noops_f64() {
    check_degenerate::<f64>();
}

#[test]
fn degenerate_shapes_are_noops_f32() {
    check_degenerate::<f32>();
}

/// An empty batch is a served (counted) batch of zero items, not an error.
#[test]
fn empty_batch_is_counted_and_harmless() {
    let engine = FmmEngine::<f64>::new(tiny_config(Routing::Model));
    let mut items: Vec<BatchItem<'_>> = Vec::new();
    engine.multiply_batch(&mut items);
    let stats = engine.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_items, 0);
    assert_eq!(stats.executions, 0);
}

/// Non-contiguous views (submatrices of larger parents, including a
/// transposed operand) driven through the *FMM* route — pinned Strassen
/// keeps the decision off the GEMM fallback — for both dtypes, accepted
/// at the dtype-derived accuracy bound.
fn check_noncontiguous<T: GemmScalar>() {
    for variant in Variant::ALL {
        let engine = FmmEngine::<T>::new(pinned_strassen(variant));
        let (m, k, n) = (24, 20, 16);
        // Parents are larger than the problem: every view has col_stride
        // larger than its row count, and B is additionally transposed
        // (row_stride != 1).
        let pa = fill::bench_workload_t::<T>(m + 7, k + 3, 11);
        let pb = fill::bench_workload_t::<T>(n + 5, k + 9, 12);
        let mut pc = Matrix::<T>::zeros(m + 4, n + 6);
        let a = pa.as_ref().submatrix(5, 2, m, k);
        let b = pb.as_ref().submatrix(3, 6, n, k).t();
        {
            let c = pc.as_mut().submatrix(4, 1, m, n);
            engine.multiply(c, a, b);
        }
        assert!(
            engine.decision_label(m, k, n).contains("<2,2,2>"),
            "the FMM route must actually be exercised"
        );

        let c_ref = fmm_gemm::reference::matmul(
            a.to_owned().cast::<f64>().as_ref(),
            b.to_owned().cast::<f64>().as_ref(),
        );
        let got = pc.as_ref().submatrix(4, 1, m, n).to_owned().cast::<f64>();
        let err = norms::rel_error(got.as_ref(), c_ref.as_ref());
        let bound = T::accuracy_bound(k, 1);
        assert!(err < bound, "{} {}: err={err} bound={bound}", T::NAME, variant.name());
        // The engine only wrote inside the target window.
        for j in 0..pc.cols() {
            for i in 0..pc.rows() {
                let outside_rows = i < 4 || i >= 4 + m;
                let outside_cols = j < 1 || j > n;
                if outside_rows || outside_cols {
                    assert_eq!(pc.get(i, j), T::ZERO, "stray write at ({i}, {j})");
                }
            }
        }
    }
}

#[test]
fn noncontiguous_views_through_fmm_route_f64() {
    check_noncontiguous::<f64>();
}

#[test]
fn noncontiguous_views_through_fmm_route_f32() {
    check_noncontiguous::<f32>();
}

/// The two dtype engines are fully independent: caches, counters, pools.
#[test]
fn dtype_engines_do_not_share_caches() {
    let e64 = FmmEngine::<f64>::new(tiny_config(Routing::Model));
    let e32 = FmmEngine::<f32>::new(tiny_config(Routing::Model));
    let a = fill::bench_workload(40, 24, 1);
    let b = fill::bench_workload(24, 32, 2);
    let mut c = Matrix::zeros(40, 32);
    e64.multiply(c.as_mut(), a.as_ref(), b.as_ref());
    assert_eq!(e64.stats().decision_misses, 1);
    assert_eq!(e32.stats().decision_misses, 0, "the f32 engine saw nothing");
    assert_eq!(e32.stats().executions, 0);
}
