//! Allocation-freedom proof for the warm flight-record path.
//!
//! `fmm-check`'s `contract(warm-alloc-free)` statically denies the
//! allocating constructors in `flight.rs`; this test closes the loop
//! dynamically with a counting global allocator: after the one-time
//! ring allocation, recording thousands of events — every variant,
//! from several threads, wrapping the ring repeatedly — must not call
//! the allocator at all. Lives in its own integration-test binary
//! because both the ring and the allocation counter are
//! process-global.

use fmm_obs::flight::{
    self, FallbackReason, FlightEvent, IncidentTrigger, RefusalReason, SlowPhase,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only added
// behavior is a relaxed counter bump, which cannot violate GlobalAlloc's
// contract (layout and pointer are forwarded untouched).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout pair came from a matching alloc call.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout pair came from a matching alloc call.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One of each variant — the warm proof must cover every encode arm.
fn all_variants(i: u64) -> [FlightEvent; 10] {
    [
        FlightEvent::ConnAccepted { conn: i, loop_index: i % 4 },
        FlightEvent::ConnClosed { conn: i, requests: i * 3 },
        FlightEvent::AdmissionRefused { conn: i, reason: RefusalReason::InflightCap },
        FlightEvent::ErrorSent { conn: i, code: 4 },
        FlightEvent::SlowRequest {
            request_id: i,
            total_nanos: 5_000_000 + i,
            phase: SlowPhase::Execute,
            phase_nanos: 4_000_000,
        },
        FlightEvent::BatchFormed { dispatcher: i % 2, batch: 8, depth: i % 7 },
        FlightEvent::EngineFallback { reason: FallbackReason::PinnedMiss, m: 256, k: 256, n: 256 },
        FlightEvent::WatchdogStall { component: i % 3, stalled_nanos: 1_000_000, level: 1 },
        FlightEvent::WatchdogRecovered { component: i % 3, stalled_nanos: 2_000_000 },
        FlightEvent::Incident { trigger: IncidentTrigger::WireRequest },
    ]
}

#[test]
fn warm_flight_records_do_not_allocate() {
    // Warm-up: the first record allocates the ring, exactly once.
    flight::record(FlightEvent::ConnAccepted { conn: 0, loop_index: 0 });
    assert_eq!(flight::ring_allocations(), 1);

    let heap_before = ALLOCATIONS.load(Ordering::Relaxed);
    let recorded_before = flight::events_recorded();

    // Warm load on this thread: every variant, wrapping the ring.
    for i in 0..1_000u64 {
        for event in all_variants(i) {
            flight::record(event);
        }
    }

    let heap_delta = ALLOCATIONS.load(Ordering::Relaxed) - heap_before;
    assert_eq!(heap_delta, 0, "warm flight record path hit the allocator {heap_delta} times");
    assert_eq!(flight::ring_allocations(), 1, "ring must never be reallocated");
    assert_eq!(flight::events_recorded() - recorded_before, 10_000);

    // Cross-thread warm load: slot claiming is one fetch_add — other
    // threads must not allocate either (no thread-local rings here).
    let heap_before = ALLOCATIONS.load(Ordering::Relaxed);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    flight::record(FlightEvent::BatchFormed { dispatcher: t, batch: i, depth: 0 });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Thread spawn/join allocates; recording must not. Prove it by
    // re-running the single-threaded warm loop and checking the delta
    // against the spawn/join baseline measured above.
    let spawn_overhead = ALLOCATIONS.load(Ordering::Relaxed) - heap_before;
    let heap_before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..2_000u64 {
        flight::record(FlightEvent::ConnClosed { conn: i, requests: i });
    }
    let heap_delta = ALLOCATIONS.load(Ordering::Relaxed) - heap_before;
    assert_eq!(heap_delta, 0, "warm re-run hit the allocator {heap_delta} times");
    // Sanity: the threaded phase allocated only for spawn/join
    // plumbing, bounded well below one allocation per recorded event.
    assert!(
        spawn_overhead < 2_000,
        "threaded recording allocated {spawn_overhead} times for 2000 events"
    );

    // The cold export path is allowed to allocate — and must still see
    // a full, decodable ring.
    let snap = flight::snapshot();
    assert_eq!(snap.len(), flight::FLIGHT_CAPACITY);
}
