//! Allocation-freedom proof for the warm audit record path.
//!
//! `fmm-check`'s `contract(warm-alloc-free)` statically denies the
//! allocating constructors in `audit.rs`; this test closes the loop
//! dynamically with a counting global allocator: after the one-time
//! table allocation, recording thousands of samples — old classes and
//! new — must not call the allocator at all. Lives in its own
//! integration-test binary because both the audit table and the
//! allocation counter are process-global.

use fmm_obs::audit::{self, AuditDtype, AuditSample, AuditSource};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only added
// behavior is a relaxed counter bump, which cannot violate GlobalAlloc's
// contract (layout and pointer are forwarded untouched).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout pair came from a matching alloc call.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; we forward as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout pair came from a matching alloc call.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn sample(class_m: u64, predicted: u64, measured: u64) -> AuditSample {
    AuditSample {
        class_m,
        class_k: 128,
        class_n: 128,
        dtype: AuditDtype::F64,
        source: AuditSource::Model,
        predicted_nanos: predicted,
        measured_nanos: measured,
        flops: 2 * class_m * 128 * 128,
    }
}

#[test]
fn warm_audit_records_do_not_allocate() {
    // Warm-up: the first record allocates the slot table, exactly once.
    assert!(audit::record(&sample(128, 900, 1_000)));
    assert_eq!(audit::table_allocations(), 1);

    let heap_before = ALLOCATIONS.load(Ordering::Relaxed);
    let recorded_before = audit::samples_recorded();

    // Warm load: repeat samples on the hot class, plus fresh classes
    // (slot claims are CAS-only — claiming must not allocate either).
    for i in 0..5_000u64 {
        audit::record(&sample(128, 900 + i % 300, 1_000));
    }
    for exp in 9..=16u64 {
        audit::record(&sample(1 << exp, 1_000, 1_000));
    }

    let heap_delta = ALLOCATIONS.load(Ordering::Relaxed) - heap_before;
    assert_eq!(heap_delta, 0, "warm audit record path hit the allocator {heap_delta} times");
    assert_eq!(audit::table_allocations(), 1, "slot table must never be reallocated");
    assert_eq!(audit::samples_recorded() - recorded_before, 5_008);

    // The cold export path is allowed to allocate — and must still see
    // everything the warm path recorded.
    let entries = audit::snapshot();
    let hot = entries
        .iter()
        .find(|e| e.class_label == "128x128x128" && e.dtype == "f64")
        .expect("hot class present");
    assert_eq!(hot.samples, 5_001);
    assert!(hot.err_permille.count == 5_001 && hot.err_permille.max <= 1_200);
}
