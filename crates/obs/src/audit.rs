//! Decision audit: predicted-vs-measured accounting per shape class.
//!
//! The engine routes every multiply off a cost model (or a tuned /
//! pinned decision), but the model is only as good as its last
//! calibration. This module closes the loop: each executed multiply
//! reports an [`AuditSample`] — which shape class and dtype it was,
//! where the routing decision came from, what the router *predicted*
//! the multiply would cost, and what it actually cost — and the sample
//! lands in a fixed-capacity table of per-(shape-class, dtype)
//! aggregates:
//!
//! * a log-bucketed [`Histogram`] of the model-error ratio in permille
//!   (`predicted_nanos * 1000 / measured_nanos`, so 1000 ≡ perfect),
//! * best / worst observed throughput in milli-GFLOP/s,
//! * predicted / measured / flop running sums and per-source counts.
//!
//! The warm [`record`] path is lock-free (relaxed atomics plus one CAS
//! when a class is first seen) and carries `fmm-check`'s
//! `contract(warm-alloc-free)`: the 64-slot table is allocated once on
//! first use — counted by [`table_allocations`] so tests can prove the
//! steady state allocates nothing — and every later sample only touches
//! preallocated atomics. The cold side ([`note_decision`], which
//! attaches a human-readable "chosen plan" label when the engine makes
//! a fresh routing decision, and [`snapshot`] for export) may allocate
//! and may take the per-slot label lock; `record` never does.
//!
//! Shape classes are identified by their power-of-two-bucketed dims
//! (the same bucketing `fmm-tune` uses): each dim is stored as its
//! floor-log2 exponent, so keys pack into one `AtomicU64` and claiming
//! a slot is a single compare-exchange. Non-power-of-two dims are
//! bucketed down deterministically; callers are expected to pass
//! already-bucketed class dims.

use crate::hist::{HistSnapshot, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Fixed slot capacity of the audit table. A slot is one
/// (shape-class, dtype) pair; production workloads see a handful.
/// When the table fills, further unseen classes are dropped and
/// counted in [`samples_dropped`].
pub const AUDIT_SLOTS: usize = 64;

/// Element type of the audited multiply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditDtype {
    F64,
    F32,
}

impl AuditDtype {
    pub fn name(self) -> &'static str {
        match self {
            AuditDtype::F64 => "f64",
            AuditDtype::F32 => "f32",
        }
    }

    /// Map a kernel element name (`fmm_core::Element::NAME`) to a
    /// dtype tag. Unknown names audit as `F64` rather than dropping.
    pub fn from_name(name: &str) -> AuditDtype {
        if name == "f32" {
            AuditDtype::F32
        } else {
            AuditDtype::F64
        }
    }

    fn id(self) -> u64 {
        match self {
            AuditDtype::F64 => 1,
            AuditDtype::F32 => 2,
        }
    }
}

/// Where the routing decision for a multiply came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditSource {
    /// Ranked live by the cost model.
    Model,
    /// Served from the persisted tune store.
    Tuned,
    /// Operator-pinned plan.
    Pinned,
    /// Fallback (pinned registry miss, tuned-store miss, or GEMM guard).
    Fallback,
}

/// Source names in [`AuditSource::index`] order, for export.
pub const SOURCE_NAMES: [&str; 4] = ["model", "tuned", "pinned", "fallback"];

impl AuditSource {
    pub fn index(self) -> usize {
        match self {
            AuditSource::Model => 0,
            AuditSource::Tuned => 1,
            AuditSource::Pinned => 2,
            AuditSource::Fallback => 3,
        }
    }

    pub fn name(self) -> &'static str {
        SOURCE_NAMES[self.index()]
    }
}

/// One executed multiply, as reported by the engine.
#[derive(Clone, Copy, Debug)]
pub struct AuditSample {
    /// Power-of-two-bucketed shape-class dims (rows of A, inner, cols of B).
    pub class_m: u64,
    pub class_k: u64,
    pub class_n: u64,
    pub dtype: AuditDtype,
    pub source: AuditSource,
    /// What the router predicted this multiply would take (0 = unknown).
    pub predicted_nanos: u64,
    /// Wall-clock cost of the executed multiply.
    pub measured_nanos: u64,
    /// Classical flop count (2·m·k·n of the *actual* dims, not the class).
    pub flops: u64,
}

struct AuditSlot {
    /// Packed (marker | dtype | class-exponent) key; 0 = unclaimed.
    key: AtomicU64,
    samples: AtomicU64,
    predicted_nanos: AtomicU64,
    measured_nanos: AtomicU64,
    flops: AtomicU64,
    /// Model-error ratio in permille: 1000 ≡ predicted == measured.
    err_permille: Histogram,
    best_gflops_milli: AtomicU64,
    /// u64::MAX until the first sample lands.
    worst_gflops_milli: AtomicU64,
    by_source: [AtomicU64; 4],
    /// Human-readable "chosen" label, written on the cold decision path
    /// only — `record` never touches this lock.
    chosen: Mutex<String>,
}

impl AuditSlot {
    fn new() -> AuditSlot {
        AuditSlot {
            key: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            predicted_nanos: AtomicU64::new(0),
            measured_nanos: AtomicU64::new(0),
            flops: AtomicU64::new(0),
            err_permille: Histogram::new(),
            best_gflops_milli: AtomicU64::new(0),
            worst_gflops_milli: AtomicU64::new(u64::MAX),
            by_source: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            chosen: Mutex::new(String::new()),
        }
    }
}

static SAMPLES_RECORDED: AtomicU64 = AtomicU64::new(0);
static SAMPLES_DROPPED: AtomicU64 = AtomicU64::new(0);
static TABLE_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The one-time table. `Histogram::new` is not const, so a true static
/// is impossible; the single allocation is counted so tests can prove
/// the warm path never repeats it.
// fmm-check: contract(warm-alloc-free)
fn table() -> &'static [AuditSlot] {
    static TABLE: OnceLock<Box<[AuditSlot]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        TABLE_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // fmm-check: allow(deny-alloc, reason = "one-time audit-table allocation at first use; warm records reuse the slots in place")
        (0..AUDIT_SLOTS).map(|_| AuditSlot::new()).collect::<Vec<_>>().into_boxed_slice()
    })
}

/// Floor-log2 dim encoding: 0 → 0, otherwise `floor(log2(d)) + 1`,
/// capped at 63 so it packs into 6 bits. Exact for the power-of-two
/// class dims the engine passes.
fn encode_dim(d: u64) -> u64 {
    if d == 0 {
        0
    } else {
        (64 - u64::from(d.leading_zeros())).min(63)
    }
}

fn decode_dim(e: u64) -> u64 {
    if e == 0 {
        0
    } else {
        1u64 << (e - 1)
    }
}

/// Pack a (class, dtype) identity into a nonzero u64: bit 63 is a
/// claim marker, bits 56.. carry the dtype, the low 18 bits the three
/// dim exponents.
// fmm-check: contract(warm-alloc-free)
fn pack_key(class_m: u64, class_k: u64, class_n: u64, dtype: AuditDtype) -> u64 {
    (1u64 << 63)
        | (dtype.id() << 56)
        | (encode_dim(class_m) << 12)
        | (encode_dim(class_k) << 6)
        | encode_dim(class_n)
}

/// Find the slot for `key`, claiming an empty one if needed. Linear
/// probe from a key-derived start; `None` when the table is full.
// fmm-check: contract(warm-alloc-free)
fn find_or_claim(key: u64) -> Option<&'static AuditSlot> {
    let slots = table();
    let start = (key % AUDIT_SLOTS as u64) as usize;
    for i in 0..AUDIT_SLOTS {
        let slot = &slots[(start + i) % AUDIT_SLOTS];
        let current = slot.key.load(Ordering::Relaxed);
        if current == key {
            return Some(slot);
        }
        if current == 0 {
            // Relaxed CAS is enough: every slot field is an atomic that
            // was fully constructed before the OnceLock published the
            // table, so a racing reader sees zeroed aggregates, never
            // uninitialized memory.
            match slot.key.compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Some(slot),
                Err(winner) if winner == key => return Some(slot),
                Err(_) => continue,
            }
        }
    }
    None
}

/// Record one executed multiply into its (shape-class, dtype)
/// aggregate. Lock-free, allocation-free after the first call; returns
/// `false` (and counts a drop) when the class table is full.
// fmm-check: contract(warm-alloc-free)
pub fn record(sample: &AuditSample) -> bool {
    let key = pack_key(sample.class_m, sample.class_k, sample.class_n, sample.dtype);
    let Some(slot) = find_or_claim(key) else {
        SAMPLES_DROPPED.fetch_add(1, Ordering::Relaxed);
        return false;
    };
    let measured = sample.measured_nanos.max(1);
    slot.samples.fetch_add(1, Ordering::Relaxed);
    slot.predicted_nanos.fetch_add(sample.predicted_nanos, Ordering::Relaxed);
    slot.measured_nanos.fetch_add(measured, Ordering::Relaxed);
    slot.flops.fetch_add(sample.flops, Ordering::Relaxed);
    // Ratio in permille; a 0 prediction audits as bucket 0 ("unknown").
    slot.err_permille.record(sample.predicted_nanos.saturating_mul(1000) / measured);
    // flops/nanos ≡ GFLOP/s, so milli-GFLOP/s is flops*1000/nanos.
    let gflops_milli = sample.flops.saturating_mul(1000) / measured;
    slot.best_gflops_milli.fetch_max(gflops_milli, Ordering::Relaxed);
    slot.worst_gflops_milli.fetch_min(gflops_milli, Ordering::Relaxed);
    slot.by_source[sample.source.index()].fetch_add(1, Ordering::Relaxed);
    SAMPLES_RECORDED.fetch_add(1, Ordering::Relaxed);
    true
}

/// Attach a human-readable "chosen decision" label (plan / variant /
/// strategy) to a class. Cold path: called when the engine computes a
/// fresh routing decision, not per multiply. Allocates and locks.
pub fn note_decision(class_m: u64, class_k: u64, class_n: u64, dtype: AuditDtype, chosen: &str) {
    let key = pack_key(class_m, class_k, class_n, dtype);
    if let Some(slot) = find_or_claim(key) {
        if let Ok(mut label) = slot.chosen.lock() {
            label.clear();
            label.push_str(chosen);
        }
    }
}

/// Exported aggregate for one (shape-class, dtype) pair.
#[derive(Clone, Debug)]
pub struct AuditEntry {
    /// Bucketed class label, e.g. `256x256x256`.
    pub class_label: String,
    pub dtype: &'static str,
    pub samples: u64,
    pub predicted_nanos: u64,
    pub measured_nanos: u64,
    pub flops: u64,
    pub best_gflops_milli: u64,
    /// 0 until a sample lands.
    pub worst_gflops_milli: u64,
    /// Per-source sample counts, [`SOURCE_NAMES`] order.
    pub by_source: [u64; 4],
    /// Chosen decision label from the cold path ("" if never noted).
    pub chosen: String,
    /// Model-error ratio histogram (permille, 1000 ≡ perfect).
    pub err_permille: HistSnapshot,
}

impl AuditEntry {
    /// `label/dtype` export key, e.g. `256x256x256/f32`.
    pub fn key(&self) -> String {
        format!("{}/{}", self.class_label, self.dtype)
    }

    /// |log2(predicted / measured)| over the running sums — the ranking
    /// metric for retune candidates. 0.0 when either sum is empty.
    pub fn error_log2(&self) -> f64 {
        if self.predicted_nanos == 0 || self.measured_nanos == 0 {
            return 0.0;
        }
        (self.predicted_nanos as f64 / self.measured_nanos as f64).log2().abs()
    }

    /// Mean achieved GFLOP/s over every sample (flops per nanosecond).
    pub fn mean_gflops(&self) -> f64 {
        if self.measured_nanos == 0 {
            return 0.0;
        }
        self.flops as f64 / self.measured_nanos as f64
    }
}

/// Point-in-time copy of every claimed audit slot, unsorted. Cold path.
pub fn snapshot() -> Vec<AuditEntry> {
    let mut out = Vec::new();
    for slot in table() {
        let key = slot.key.load(Ordering::Relaxed);
        if key == 0 {
            continue;
        }
        let dtype = if (key >> 56) & 0x7f == 2 { AuditDtype::F32 } else { AuditDtype::F64 };
        let (m, k, n) =
            (decode_dim((key >> 12) & 0x3f), decode_dim((key >> 6) & 0x3f), decode_dim(key & 0x3f));
        let worst = slot.worst_gflops_milli.load(Ordering::Relaxed);
        out.push(AuditEntry {
            class_label: format!("{m}x{k}x{n}"),
            dtype: dtype.name(),
            samples: slot.samples.load(Ordering::Relaxed),
            predicted_nanos: slot.predicted_nanos.load(Ordering::Relaxed),
            measured_nanos: slot.measured_nanos.load(Ordering::Relaxed),
            flops: slot.flops.load(Ordering::Relaxed),
            best_gflops_milli: slot.best_gflops_milli.load(Ordering::Relaxed),
            worst_gflops_milli: if worst == u64::MAX { 0 } else { worst },
            by_source: std::array::from_fn(|i| slot.by_source[i].load(Ordering::Relaxed)),
            chosen: slot.chosen.lock().map(|l| l.clone()).unwrap_or_default(),
            err_permille: slot.err_permille.snapshot(),
        });
    }
    out
}

/// Samples successfully recorded process-wide.
pub fn samples_recorded() -> u64 {
    SAMPLES_RECORDED.load(Ordering::Relaxed)
}

/// Samples dropped because the class table was full.
pub fn samples_dropped() -> u64 {
    SAMPLES_DROPPED.load(Ordering::Relaxed)
}

/// How many times the slot table has been allocated (0 or 1). Warm
/// records must leave this flat — the allocation-freedom proof counter.
pub fn table_allocations() -> u64 {
    TABLE_ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: u64, k: u64, n: u64, dtype: AuditDtype) -> AuditSample {
        AuditSample {
            class_m: m,
            class_k: k,
            class_n: n,
            dtype,
            source: AuditSource::Model,
            predicted_nanos: 2_000,
            measured_nanos: 1_000,
            flops: 2u64.saturating_mul(m).saturating_mul(k).saturating_mul(n),
        }
    }

    /// One serialized test: the table is process-global, so ordering
    /// between sub-scenarios matters (overflow last — it fills the
    /// table for good).
    #[test]
    fn audit_end_to_end() {
        // -- Aggregation per (class, dtype) ---------------------------
        assert!(record(&sample(256, 256, 256, AuditDtype::F64)));
        assert!(record(&sample(256, 256, 256, AuditDtype::F64)));
        assert!(record(&sample(256, 256, 256, AuditDtype::F32)));
        let allocations = table_allocations();
        assert_eq!(allocations, 1, "table allocated exactly once");

        note_decision(256, 256, 256, AuditDtype::F64, "fmm <3,3,3>^2 dfs");
        let entries = snapshot();
        let f64_entry = entries
            .iter()
            .find(|e| e.class_label == "256x256x256" && e.dtype == "f64")
            .expect("f64 class present");
        assert_eq!(f64_entry.samples, 2);
        assert_eq!(f64_entry.key(), "256x256x256/f64");
        assert_eq!(f64_entry.predicted_nanos, 4_000);
        assert_eq!(f64_entry.measured_nanos, 2_000);
        assert_eq!(f64_entry.chosen, "fmm <3,3,3>^2 dfs");
        assert_eq!(f64_entry.by_source, [2, 0, 0, 0]);
        // predicted/measured = 2.0 → error_log2 = 1, ratio 2000 permille.
        assert!((f64_entry.error_log2() - 1.0).abs() < 1e-12);
        assert_eq!(f64_entry.err_permille.count, 2);
        assert!(f64_entry.err_permille.min >= 2000 && f64_entry.err_permille.max <= 2250);
        // flops = 2·256³ over 1000ns → 33_554 GFLOP/s· milli units.
        assert_eq!(f64_entry.best_gflops_milli, f64_entry.worst_gflops_milli);
        assert!(f64_entry.best_gflops_milli > 0);
        assert!((f64_entry.mean_gflops() - f64_entry.flops as f64 / 2_000.0).abs() < 1e-9);

        let f32_entry = entries
            .iter()
            .find(|e| e.class_label == "256x256x256" && e.dtype == "f32")
            .expect("f32 class is a distinct slot");
        assert_eq!(f32_entry.samples, 1);
        assert_eq!(f32_entry.chosen, "", "note_decision only labeled the f64 slot");

        // -- Degenerate inputs ----------------------------------------
        // Zero dims and zero measured time must not divide by zero.
        let zero = AuditSample {
            class_m: 0,
            class_k: 0,
            class_n: 0,
            dtype: AuditDtype::F64,
            source: AuditSource::Fallback,
            predicted_nanos: 0,
            measured_nanos: 0,
            flops: 0,
        };
        assert!(record(&zero));
        let entries = snapshot();
        let degenerate =
            entries.iter().find(|e| e.class_label == "0x0x0").expect("zero class is representable");
        assert_eq!(degenerate.by_source, [0, 0, 0, 1]);
        assert_eq!(degenerate.error_log2(), 0.0);
        assert_eq!(degenerate.worst_gflops_milli, 0);

        // -- Warm path leaves the allocation counter flat -------------
        for _ in 0..100 {
            record(&sample(512, 512, 512, AuditDtype::F64));
        }
        assert_eq!(table_allocations(), allocations, "warm records must not allocate tables");

        // -- Overflow: unseen classes drop once the table is full -----
        // 6-bit exponents give far more than AUDIT_SLOTS distinct keys.
        let recorded_before = samples_recorded();
        let mut dropped = 0u64;
        for em in 1..=63u64 {
            for ek in 1..=3u64 {
                if !record(&sample(1 << (em - 1), 1 << (ek - 1), 4, AuditDtype::F32)) {
                    dropped += 1;
                }
            }
        }
        assert!(dropped > 0, "189 distinct classes must overflow {AUDIT_SLOTS} slots");
        assert_eq!(samples_dropped(), dropped);
        assert!(samples_recorded() > recorded_before, "pre-overflow classes still recorded");
        // Known classes keep recording even when the table is full.
        assert!(record(&sample(256, 256, 256, AuditDtype::F64)));
    }
}
