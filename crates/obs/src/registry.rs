//! Named metrics registry: counters, gauges, histograms.
//!
//! Lookup (`counter` / `gauge` / `histogram`) takes a mutex once and
//! hands back an `Arc` handle; every subsequent update through the
//! handle is a relaxed atomic — nothing on a hot path ever touches the
//! registry lock. Instruments are get-or-create by name, so two
//! callers asking for `"fmm_gemm_pack_nanos"` share one histogram.
//!
//! Two registries exist in practice: each server owns one (exported
//! over the wire via the `StatsJson` frame), and [`global`] serves
//! bottom-of-stack layers (gemm, sched) that have no server handle.

use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotone counter. `set` exists for mirroring externally-maintained
/// totals (e.g. `EngineStats` reflection) into a registry snapshot.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise to `v` if larger (high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed up/down gauge (queue depths, inflight requests, busy workers).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A set of named instruments. Cheap to snapshot, cheap to render.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner.histograms.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Get-or-create + overwrite in one call (mirroring reflected stats).
    pub fn set_counter(&self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }

    /// Prometheus-style plaintext exposition of the whole registry.
    /// Histograms render as summaries with `quantile` labels.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// Point-in-time registry contents (see [`Registry::snapshot`]).
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(
                out,
                "{name}_sum {}\n{name}_count {}\n{name}_max {}",
                h.sum, h.count, h.max
            );
        }
        out
    }
}

/// Rewrite an arbitrary label (e.g. a shape-class key like
/// `256x256x256/f32`) into a legal Prometheus metric-name fragment:
/// `[a-zA-Z0-9_:]` survives, everything else becomes `_`, and a leading
/// digit gains a `_` prefix so the result can also stand alone.
pub fn sanitize_metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    if raw.starts_with(|c: char| c.is_ascii_digit()) {
        out.push('_');
    }
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// The process-global registry, for layers with no server object to
/// hang metrics off (gemm pack/kernel split, sched task timings).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(5);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn snapshot_lists_everything_sorted() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("depth").set(-3);
        r.histogram("h").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
        assert_eq!(snap.gauges[0], ("depth".to_string(), -3));
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn prometheus_exposition_is_line_oriented() {
        let r = Registry::new();
        r.counter("fmm_requests_total").add(7);
        r.gauge("fmm_inflight").set(2);
        let h = r.histogram("fmm_latency_nanos");
        for v in [100, 200, 300] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE fmm_requests_total counter\nfmm_requests_total 7\n"));
        assert!(text.contains("# TYPE fmm_inflight gauge\nfmm_inflight 2\n"));
        assert!(text.contains("# TYPE fmm_latency_nanos summary"));
        assert!(text.contains("fmm_latency_nanos{quantile=\"0.5\"}"));
        assert!(text.contains("fmm_latency_nanos_sum 600"));
        assert!(text.contains("fmm_latency_nanos_count 3"));
        assert!(text.contains("fmm_latency_nanos_max 300"));
    }

    #[test]
    fn sanitize_covers_shape_class_names() {
        // The per-shape-class audit keys are the motivating case.
        assert_eq!(sanitize_metric_name("256x256x256/f32"), "_256x256x256_f32");
        assert_eq!(sanitize_metric_name("1024x512x1024/f64"), "_1024x512x1024_f64");
        // Already-legal names pass through untouched.
        assert_eq!(sanitize_metric_name("fmm_audit_samples"), "fmm_audit_samples");
        assert_eq!(sanitize_metric_name("ns:sub_total"), "ns:sub_total");
        // Hostile input: spaces, unicode, quotes, empties.
        assert_eq!(sanitize_metric_name("a b\"c"), "a_b_c");
        assert_eq!(sanitize_metric_name("µs"), "_s");
        assert_eq!(sanitize_metric_name(""), "");
        // Sanitized output is itself a fixed point.
        for raw in ["256x256x256/f32", "a b\"c", "0/0/0"] {
            let once = sanitize_metric_name(raw);
            assert_eq!(sanitize_metric_name(&once), once);
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs_test_global_total").inc();
        assert!(global().counter("obs_test_global_total").get() >= 1);
    }
}
