//! Always-on flight recorder: the last N notable serving events.
//!
//! Steady-state observability (counters, histograms, spans) answers
//! "how is the daemon doing"; the flight recorder answers "what was it
//! doing *just before* it wedged, panicked, or got killed". It is a
//! fixed-capacity, process-global, overwrite-oldest ring of typed
//! [`FlightEvent`]s — connection lifecycle, admission refusals, error
//! frames, slow requests with their dominant phase, dispatcher batch
//! formation, engine routing fallbacks, and watchdog verdicts — each
//! stamped with a monotonic-nanosecond timestamp and a global sequence
//! number so the interleaving across threads is reconstructible after
//! the fact.
//!
//! The warm [`record`] path is lock-free and allocation-free under
//! `fmm-check`'s `contract(warm-alloc-free)`: the slot array is
//! allocated exactly once at first use (counted by
//! [`ring_allocations`] so tests can prove the steady state allocates
//! nothing), a writer claims a slot with one relaxed `fetch_add` on the
//! global sequence counter, and every field store is a plain atomic.
//! Slots follow a seqlock-lite protocol — payload first, sequence word
//! last with `Release`; [`snapshot`] re-checks the sequence word around
//! its reads and drops torn slots. A reader can still, in principle,
//! observe a consistent-looking slot whose payload mixes two writers
//! that lapped each other by exactly the ring capacity mid-write; the
//! recorder is diagnostic, so that vanishingly rare corruption is
//! accepted in exchange for a wait-free writer.
//!
//! The ring is always on: there is no enable switch to forget before an
//! incident, and the recording cost (a handful of relaxed stores) is
//! small enough to leave on under full load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Capacity of the global event ring (power of two — slot index is
/// `seq & (FLIGHT_CAPACITY - 1)`).
pub const FLIGHT_CAPACITY: usize = 1024;

/// Why admission control refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefusalReason {
    /// Per-connection in-flight cap reached.
    InflightCap,
    /// Per-connection response-byte backlog cap reached.
    ByteBacklog,
    /// Dispatch queue full.
    QueueFull,
    /// Server shutting down.
    ShuttingDown,
}

impl RefusalReason {
    pub fn name(self) -> &'static str {
        match self {
            RefusalReason::InflightCap => "inflight-cap",
            RefusalReason::ByteBacklog => "byte-backlog",
            RefusalReason::QueueFull => "queue-full",
            RefusalReason::ShuttingDown => "shutting-down",
        }
    }

    fn id(self) -> u64 {
        match self {
            RefusalReason::InflightCap => 1,
            RefusalReason::ByteBacklog => 2,
            RefusalReason::QueueFull => 3,
            RefusalReason::ShuttingDown => 4,
        }
    }

    fn from_id(id: u64) -> Option<RefusalReason> {
        match id {
            1 => Some(RefusalReason::InflightCap),
            2 => Some(RefusalReason::ByteBacklog),
            3 => Some(RefusalReason::QueueFull),
            4 => Some(RefusalReason::ShuttingDown),
            _ => None,
        }
    }
}

/// Which phase dominated a slow request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowPhase {
    /// Waiting in the dispatch queue.
    QueueWait,
    /// Executing the multiply.
    Execute,
    /// Everything else (decode, admission, reply I/O).
    Serve,
}

impl SlowPhase {
    pub fn name(self) -> &'static str {
        match self {
            SlowPhase::QueueWait => "queue-wait",
            SlowPhase::Execute => "execute",
            SlowPhase::Serve => "serve",
        }
    }

    fn id(self) -> u64 {
        match self {
            SlowPhase::QueueWait => 1,
            SlowPhase::Execute => 2,
            SlowPhase::Serve => 3,
        }
    }

    fn from_id(id: u64) -> Option<SlowPhase> {
        match id {
            1 => Some(SlowPhase::QueueWait),
            2 => Some(SlowPhase::Execute),
            3 => Some(SlowPhase::Serve),
            _ => None,
        }
    }
}

/// Why the engine fell back instead of serving its routed decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Operator-pinned plan not present in the plan registry.
    PinnedMiss,
    /// Tuned routing requested but the tune store had no entry.
    TunedMiss,
}

impl FallbackReason {
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::PinnedMiss => "pinned-miss",
            FallbackReason::TunedMiss => "tuned-miss",
        }
    }

    fn id(self) -> u64 {
        match self {
            FallbackReason::PinnedMiss => 1,
            FallbackReason::TunedMiss => 2,
        }
    }

    fn from_id(id: u64) -> Option<FallbackReason> {
        match id {
            1 => Some(FallbackReason::PinnedMiss),
            2 => Some(FallbackReason::TunedMiss),
            _ => None,
        }
    }
}

/// What triggered an incident dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentTrigger {
    Sigterm,
    Sigint,
    Panic,
    WatchdogAbort,
    WireRequest,
}

impl IncidentTrigger {
    pub fn name(self) -> &'static str {
        match self {
            IncidentTrigger::Sigterm => "sigterm",
            IncidentTrigger::Sigint => "sigint",
            IncidentTrigger::Panic => "panic",
            IncidentTrigger::WatchdogAbort => "watchdog-abort",
            IncidentTrigger::WireRequest => "wire-request",
        }
    }

    fn id(self) -> u64 {
        match self {
            IncidentTrigger::Sigterm => 1,
            IncidentTrigger::Sigint => 2,
            IncidentTrigger::Panic => 3,
            IncidentTrigger::WatchdogAbort => 4,
            IncidentTrigger::WireRequest => 5,
        }
    }

    fn from_id(id: u64) -> Option<IncidentTrigger> {
        match id {
            1 => Some(IncidentTrigger::Sigterm),
            2 => Some(IncidentTrigger::Sigint),
            3 => Some(IncidentTrigger::Panic),
            4 => Some(IncidentTrigger::WatchdogAbort),
            5 => Some(IncidentTrigger::WireRequest),
            _ => None,
        }
    }
}

/// One notable serving event. Every variant packs into four `u64`
/// payload words plus a kind tag, so recording is a fixed number of
/// atomic stores regardless of variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEvent {
    /// A connection was accepted and installed on an event loop.
    ConnAccepted { conn: u64, loop_index: u64 },
    /// A connection closed; `requests` is its lifetime request count.
    ConnClosed { conn: u64, requests: u64 },
    /// Admission control refused a request on `conn`.
    AdmissionRefused { conn: u64, reason: RefusalReason },
    /// An error frame was sent on `conn` (`code` is the wire ErrorCode).
    ErrorSent { conn: u64, code: u64 },
    /// A request exceeded the slow threshold; `phase` dominated.
    SlowRequest { request_id: u64, total_nanos: u64, phase: SlowPhase, phase_nanos: u64 },
    /// A dispatcher formed a batch (`depth` = queue depth after).
    BatchFormed { dispatcher: u64, batch: u64, depth: u64 },
    /// The engine served a fallback decision instead of its routing.
    EngineFallback { reason: FallbackReason, m: u64, k: u64, n: u64 },
    /// The watchdog judged a component stalled (`level` escalates).
    WatchdogStall { component: u64, stalled_nanos: u64, level: u64 },
    /// A previously stalled component resumed making progress.
    WatchdogRecovered { component: u64, stalled_nanos: u64 },
    /// An incident dump was produced.
    Incident { trigger: IncidentTrigger },
}

impl FlightEvent {
    pub fn kind_name(&self) -> &'static str {
        match self {
            FlightEvent::ConnAccepted { .. } => "conn-accepted",
            FlightEvent::ConnClosed { .. } => "conn-closed",
            FlightEvent::AdmissionRefused { .. } => "admission-refused",
            FlightEvent::ErrorSent { .. } => "error-sent",
            FlightEvent::SlowRequest { .. } => "slow-request",
            FlightEvent::BatchFormed { .. } => "batch-formed",
            FlightEvent::EngineFallback { .. } => "engine-fallback",
            FlightEvent::WatchdogStall { .. } => "watchdog-stall",
            FlightEvent::WatchdogRecovered { .. } => "watchdog-recovered",
            FlightEvent::Incident { .. } => "incident",
        }
    }

    /// Pack into `(kind, a, b, c, d)` words for the ring / JSON export.
    // fmm-check: contract(warm-alloc-free)
    pub fn encode(&self) -> (u64, u64, u64, u64, u64) {
        match *self {
            FlightEvent::ConnAccepted { conn, loop_index } => (1, conn, loop_index, 0, 0),
            FlightEvent::ConnClosed { conn, requests } => (2, conn, requests, 0, 0),
            FlightEvent::AdmissionRefused { conn, reason } => (3, conn, reason.id(), 0, 0),
            FlightEvent::ErrorSent { conn, code } => (4, conn, code, 0, 0),
            FlightEvent::SlowRequest { request_id, total_nanos, phase, phase_nanos } => {
                (5, request_id, total_nanos, phase.id(), phase_nanos)
            }
            FlightEvent::BatchFormed { dispatcher, batch, depth } => {
                (6, dispatcher, batch, depth, 0)
            }
            FlightEvent::EngineFallback { reason, m, k, n } => (7, reason.id(), m, k, n),
            FlightEvent::WatchdogStall { component, stalled_nanos, level } => {
                (8, component, stalled_nanos, level, 0)
            }
            FlightEvent::WatchdogRecovered { component, stalled_nanos } => {
                (9, component, stalled_nanos, 0, 0)
            }
            FlightEvent::Incident { trigger } => (10, trigger.id(), 0, 0, 0),
        }
    }

    /// Inverse of [`encode`](FlightEvent::encode). `None` for unknown
    /// kinds or enum ids — torn slots and newer-schema dumps decode to
    /// nothing rather than to garbage.
    pub fn decode(kind: u64, a: u64, b: u64, c: u64, d: u64) -> Option<FlightEvent> {
        Some(match kind {
            1 => FlightEvent::ConnAccepted { conn: a, loop_index: b },
            2 => FlightEvent::ConnClosed { conn: a, requests: b },
            3 => FlightEvent::AdmissionRefused { conn: a, reason: RefusalReason::from_id(b)? },
            4 => FlightEvent::ErrorSent { conn: a, code: b },
            5 => FlightEvent::SlowRequest {
                request_id: a,
                total_nanos: b,
                phase: SlowPhase::from_id(c)?,
                phase_nanos: d,
            },
            6 => FlightEvent::BatchFormed { dispatcher: a, batch: b, depth: c },
            7 => FlightEvent::EngineFallback {
                reason: FallbackReason::from_id(a)?,
                m: b,
                k: c,
                n: d,
            },
            8 => FlightEvent::WatchdogStall { component: a, stalled_nanos: b, level: c },
            9 => FlightEvent::WatchdogRecovered { component: a, stalled_nanos: b },
            10 => FlightEvent::Incident { trigger: IncidentTrigger::from_id(a)? },
            _ => return None,
        })
    }

    /// Human-readable one-liner for timelines. Cold path; allocates.
    pub fn describe(&self) -> String {
        match *self {
            FlightEvent::ConnAccepted { conn, loop_index } => {
                format!("conn #{conn} accepted on loop {loop_index}")
            }
            FlightEvent::ConnClosed { conn, requests } => {
                format!("conn #{conn} closed after {requests} requests")
            }
            FlightEvent::AdmissionRefused { conn, reason } => {
                format!("conn #{conn} refused: {}", reason.name())
            }
            FlightEvent::ErrorSent { conn, code } => {
                format!("error frame (code {code}) sent on conn #{conn}")
            }
            FlightEvent::SlowRequest { request_id, total_nanos, phase, phase_nanos } => format!(
                "slow request #{request_id}: {:.3} ms total, {:.3} ms in {}",
                total_nanos as f64 / 1e6,
                phase_nanos as f64 / 1e6,
                phase.name()
            ),
            FlightEvent::BatchFormed { dispatcher, batch, depth } => {
                format!("dispatcher {dispatcher} formed batch of {batch} (depth {depth} after)")
            }
            FlightEvent::EngineFallback { reason, m, k, n } => {
                format!("engine fallback ({}) for {m}x{k}x{n}", reason.name())
            }
            FlightEvent::WatchdogStall { component, stalled_nanos, level } => format!(
                "watchdog: component {component} stalled {:.0} ms (level {level})",
                stalled_nanos as f64 / 1e6
            ),
            FlightEvent::WatchdogRecovered { component, stalled_nanos } => format!(
                "watchdog: component {component} recovered after {:.0} ms",
                stalled_nanos as f64 / 1e6
            ),
            FlightEvent::Incident { trigger } => {
                format!("incident dump triggered by {}", trigger.name())
            }
        }
    }
}

/// One entry read back out of the ring.
#[derive(Clone, Copy, Debug)]
pub struct FlightRecord {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Monotonic nanos since the process trace epoch.
    pub nanos: u64,
    pub event: FlightEvent,
}

struct FlightSlot {
    /// `seq + 1` of the resident event; 0 = never written. Written
    /// last, re-checked by readers.
    stamp: AtomicU64,
    nanos: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
    d: AtomicU64,
}

impl FlightSlot {
    fn new() -> FlightSlot {
        FlightSlot {
            stamp: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
            d: AtomicU64::new(0),
        }
    }
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);
static RING_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The one-time ring. Like the audit table, the single allocation is
/// counted so tests can prove the warm path never repeats it.
// fmm-check: contract(warm-alloc-free)
fn ring() -> &'static [FlightSlot] {
    static RING: OnceLock<Box<[FlightSlot]>> = OnceLock::new();
    RING.get_or_init(|| {
        RING_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // fmm-check: allow(deny-alloc, reason = "one-time flight-ring allocation at first use; warm records overwrite slots in place")
        (0..FLIGHT_CAPACITY).map(|_| FlightSlot::new()).collect::<Vec<_>>().into_boxed_slice()
    })
}

/// Record one event into the ring. Wait-free: one relaxed `fetch_add`
/// to claim a slot, six plain stores to fill it. Never blocks, never
/// allocates after the one-time ring creation, always succeeds (the
/// oldest event is overwritten).
// fmm-check: contract(warm-alloc-free)
pub fn record(event: FlightEvent) -> u64 {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let slot = &ring()[(seq as usize) & (FLIGHT_CAPACITY - 1)];
    let (kind, a, b, c, d) = event.encode();
    // Invalidate the slot first so a concurrent snapshot never pairs
    // the old stamp with half-new payload words.
    slot.stamp.store(0, Ordering::Relaxed);
    slot.nanos.store(crate::trace::now_nanos(), Ordering::Relaxed);
    slot.kind.store(kind, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.c.store(c, Ordering::Relaxed);
    slot.d.store(d, Ordering::Relaxed);
    // ORDERING: Release publishes the payload stores above; snapshot's
    // Acquire load of the stamp makes them visible before it reads the
    // payload words.
    slot.stamp.store(seq + 1, Ordering::Release);
    EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
    seq
}

/// Point-in-time copy of the ring, oldest-to-newest by sequence
/// number. Cold path: allocates, skips torn or never-written slots.
pub fn snapshot() -> Vec<FlightRecord> {
    let mut out = Vec::with_capacity(FLIGHT_CAPACITY);
    for slot in ring() {
        // ORDERING: Acquire pairs with the Release stamp store in
        // `record`, making the payload words of that write visible.
        let stamp = slot.stamp.load(Ordering::Acquire);
        if stamp == 0 {
            continue;
        }
        let nanos = slot.nanos.load(Ordering::Relaxed);
        let kind = slot.kind.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        let c = slot.c.load(Ordering::Relaxed);
        let d = slot.d.load(Ordering::Relaxed);
        // ORDERING: Acquire re-check; a writer that raced us cleared
        // the stamp to 0 (or republished a different seq) before
        // touching the payload, so an unchanged stamp means the words
        // above belong together.
        if slot.stamp.load(Ordering::Acquire) != stamp {
            continue;
        }
        if let Some(event) = FlightEvent::decode(kind, a, b, c, d) {
            out.push(FlightRecord { seq: stamp - 1, nanos, event });
        }
    }
    out.sort_by_key(|r| r.seq);
    out
}

/// Events ever recorded, including overwritten ones.
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// How many times the ring has been allocated (0 or 1) — the
/// allocation-freedom proof counter for the counting-allocator test.
pub fn ring_allocations() -> u64 {
    RING_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Reset every slot to empty (the sequence counter keeps running).
/// Test helper — production code never clears the recorder.
pub fn clear() {
    for slot in ring() {
        slot.stamp.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so every assertion lives in one
    // serialized test (same policy as the trace and audit tests),
    // locked against the watchdog test which also records into it.
    #[test]
    fn flight_recorder_end_to_end() {
        let _guard = crate::test_lock().lock().unwrap_or_else(|e| e.into_inner());
        clear();
        let events = [
            FlightEvent::ConnAccepted { conn: 1, loop_index: 0 },
            FlightEvent::AdmissionRefused { conn: 1, reason: RefusalReason::QueueFull },
            FlightEvent::ErrorSent { conn: 1, code: 4 },
            FlightEvent::SlowRequest {
                request_id: 42,
                total_nanos: 7_000_000,
                phase: SlowPhase::QueueWait,
                phase_nanos: 5_000_000,
            },
            FlightEvent::BatchFormed { dispatcher: 0, batch: 8, depth: 3 },
            FlightEvent::EngineFallback {
                reason: FallbackReason::TunedMiss,
                m: 256,
                k: 256,
                n: 256,
            },
            FlightEvent::WatchdogStall { component: 2, stalled_nanos: 250_000_000, level: 1 },
            FlightEvent::WatchdogRecovered { component: 2, stalled_nanos: 400_000_000 },
            FlightEvent::ConnClosed { conn: 1, requests: 17 },
            FlightEvent::Incident { trigger: IncidentTrigger::Sigterm },
        ];
        let first_seq = record(events[0]);
        for e in &events[1..] {
            record(*e);
        }
        assert_eq!(ring_allocations(), 1, "ring allocated exactly once");

        // Snapshot returns exactly what we wrote, in sequence order,
        // and every variant round-trips through encode/decode.
        let snap = snapshot();
        assert_eq!(snap.len(), events.len());
        for (rec, expected) in snap.iter().zip(events.iter()) {
            assert_eq!(rec.event, *expected);
            assert!(!rec.event.describe().is_empty());
            assert!(!rec.event.kind_name().is_empty());
        }
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq, "sequence numbers strictly increase");
            assert!(w[0].nanos <= w[1].nanos, "timestamps are monotone");
        }
        assert_eq!(snap[0].seq, first_seq);

        // Unknown kinds and ids decode to None, not garbage.
        assert_eq!(FlightEvent::decode(99, 0, 0, 0, 0), None);
        assert_eq!(FlightEvent::decode(3, 1, 99, 0, 0), None, "bad refusal id");
        assert_eq!(FlightEvent::decode(10, 99, 0, 0, 0), None, "bad trigger id");

        // Overwrite-oldest: flood the ring; only the newest
        // FLIGHT_CAPACITY survive and the warm path allocates nothing.
        let allocs = ring_allocations();
        let recorded_before = events_recorded();
        for i in 0..(2 * FLIGHT_CAPACITY as u64) {
            record(FlightEvent::BatchFormed { dispatcher: 9, batch: i, depth: 0 });
        }
        assert_eq!(ring_allocations(), allocs, "warm records must not allocate");
        assert_eq!(events_recorded(), recorded_before + 2 * FLIGHT_CAPACITY as u64);
        let snap = snapshot();
        assert_eq!(snap.len(), FLIGHT_CAPACITY, "ring is bounded");
        match snap.last().unwrap().event {
            FlightEvent::BatchFormed { batch, .. } => {
                assert_eq!(batch, 2 * FLIGHT_CAPACITY as u64 - 1)
            }
            other => panic!("unexpected tail event {other:?}"),
        }

        // Cross-thread: sequence numbers interleave without loss.
        clear();
        let base = events_recorded();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..50 {
                        record(FlightEvent::ConnAccepted { conn: t * 1000 + i, loop_index: t });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(events_recorded(), base + 200);
        let snap = snapshot();
        assert_eq!(snap.len(), 200);
        let mut seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 200, "every event got a distinct sequence number");
    }
}
