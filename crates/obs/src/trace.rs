//! Runtime-toggleable tracing spans.
//!
//! Each thread that records gets its own bounded ring of
//! [`SpanEvent`]s (preallocated at first use, overwritten in place —
//! the warm path never allocates, which [`ring_allocations`] lets
//! tests prove). Rings register themselves in a process-global list so
//! [`recent`] can merge a cross-thread timeline for export.
//!
//! The off switch is a single `AtomicBool`: when disabled, [`enabled`]
//! is one relaxed load and a branch, and every instrumentation site in
//! the stack is written as
//!
//! ```ignore
//! let t0 = trace::start();                    // 0 when disabled
//! ...work...
//! trace::finish(SpanKind::Kernel, req_id, t0); // early-returns on 0
//! ```
//!
//! so the disabled cost is two inlined load+branch pairs and no clock
//! reads, no locks, no writes — [`events_recorded`] stays flat, which
//! the disabled-path test pins down.
//!
//! Timestamps are monotonic nanoseconds since a process-wide epoch
//! (first use), so events from different threads order correctly.
//!
//! The recording entry points (`start`/`finish`/`mark`/`record`) carry
//! `fmm-check`'s `contract(warm-alloc-free)` (see README § Static
//! analysis); the one-time per-thread ring creation inside [`record`] is
//! the allowed exception, justified inline. Export paths (`recent`,
//! `chrome_trace`) are cold and may allocate.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of each per-thread event ring.
pub const RING_CAPACITY: usize = 4096;

/// The phases of a request's journey through the stack, top to bottom.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Frame fully decoded off the socket (event-loop thread).
    RequestRecv = 0,
    /// Admission control passed; job queued for dispatch.
    Admission = 1,
    /// Time spent queued before a dispatcher picked the job up.
    QueueWait = 2,
    /// Straggler-gap batch formation window.
    BatchForm = 3,
    /// Engine routing decision (model ranking / decision-cache miss).
    EngineDecision = 4,
    /// Execution-plan composition for a cache-missed shape.
    PlanCompose = 5,
    /// One scheduler task (submultiplication product).
    TaskExec = 6,
    /// GEMM operand packing (`pack_a_sum` / `pack_b_sum`).
    Pack = 7,
    /// GEMM macro-kernel execution.
    Kernel = 8,
    /// BFS merge phase (C-block accumulation).
    Merge = 9,
    /// Response frame handed to the connection write queue.
    ReplyFlush = 10,
}

impl SpanKind {
    pub const ALL: [SpanKind; 11] = [
        SpanKind::RequestRecv,
        SpanKind::Admission,
        SpanKind::QueueWait,
        SpanKind::BatchForm,
        SpanKind::EngineDecision,
        SpanKind::PlanCompose,
        SpanKind::TaskExec,
        SpanKind::Pack,
        SpanKind::Kernel,
        SpanKind::Merge,
        SpanKind::ReplyFlush,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpanKind::RequestRecv => "RequestRecv",
            SpanKind::Admission => "Admission",
            SpanKind::QueueWait => "QueueWait",
            SpanKind::BatchForm => "BatchForm",
            SpanKind::EngineDecision => "EngineDecision",
            SpanKind::PlanCompose => "PlanCompose",
            SpanKind::TaskExec => "TaskExec",
            SpanKind::Pack => "Pack",
            SpanKind::Kernel => "Kernel",
            SpanKind::Merge => "Merge",
            SpanKind::ReplyFlush => "ReplyFlush",
        }
    }

    pub fn from_name(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One recorded span. `start_nanos == end_nanos` marks a point event.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    pub kind: SpanKind,
    pub request_id: u64,
    pub start_nanos: u64,
    pub end_nanos: u64,
    /// Small per-thread ordinal (ring creation order), for timelines.
    pub thread: u32,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);
static RING_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_ORDINAL: AtomicU32 = AtomicU32::new(0);

/// Flip the global tracing switch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is tracing on? One relaxed load; inlined at every call site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the process-wide trace epoch.
#[inline]
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Open a span: the current timestamp when tracing is on, 0 when off.
// fmm-check: contract(warm-alloc-free)
#[inline(always)]
pub fn start() -> u64 {
    if enabled() {
        now_nanos().max(1)
    } else {
        0
    }
}

/// Close a span opened by [`start`]. A no-op for `start_nanos == 0`
/// (tracing was off at open time) or if tracing has since been turned
/// off, so toggling mid-span never records a torn event.
// fmm-check: contract(warm-alloc-free)
#[inline]
pub fn finish(kind: SpanKind, request_id: u64, start_nanos: u64) {
    if start_nanos != 0 && enabled() {
        record(SpanEvent { kind, request_id, start_nanos, end_nanos: now_nanos(), thread: 0 });
    }
}

/// Record an instantaneous point event (e.g. `ReplyFlush`).
// fmm-check: contract(warm-alloc-free)
#[inline]
pub fn mark(kind: SpanKind, request_id: u64) {
    if enabled() {
        let t = now_nanos();
        record(SpanEvent { kind, request_id, start_nanos: t, end_nanos: t, thread: 0 });
    }
}

struct RingBuf {
    buf: Vec<SpanEvent>,
    next: usize,
}

struct Ring {
    ordinal: u32,
    inner: Mutex<RingBuf>,
}

impl Ring {
    /// Events oldest-to-newest.
    fn drain_ordered(&self) -> Vec<SpanEvent> {
        let inner = self.inner.lock().unwrap();
        if inner.buf.len() < RING_CAPACITY {
            inner.buf.clone()
        } else {
            let mut out = Vec::with_capacity(RING_CAPACITY);
            out.extend_from_slice(&inner.buf[inner.next..]);
            out.extend_from_slice(&inner.buf[..inner.next]);
            out
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Tag this thread with the request id it is currently working for;
/// lower layers (gemm, sched) stamp their spans with it. Returns the
/// previous tag so callers can restore it.
#[inline]
pub fn set_current_request(id: u64) -> u64 {
    CURRENT_REQUEST.with(|c| c.replace(id))
}

/// The request id this thread is currently working for (0 = none).
#[inline]
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// Append an event to this thread's ring, creating + registering the
/// ring on first use. After the first call on a thread, this path
/// performs zero heap allocations: the ring `Vec` is preallocated to
/// full capacity and old events are overwritten in place.
// fmm-check: contract(warm-alloc-free)
pub fn record(mut event: SpanEvent) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            // fmm-check: allow(deny-alloc, reason = "one-time per-thread ring creation at first use; warm calls reuse it")
            let ring = Arc::new(Ring {
                ordinal: NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed),
                // fmm-check: allow(deny-alloc, reason = "one-time per-thread ring preallocation; warm writes overwrite in place")
                inner: Mutex::new(RingBuf { buf: Vec::with_capacity(RING_CAPACITY), next: 0 }),
            });
            RING_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            rings().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        event.thread = ring.ordinal;
        let mut inner = ring.inner.lock().unwrap();
        if inner.buf.len() < RING_CAPACITY {
            inner.buf.push(event); // within preallocated capacity
        } else {
            let at = inner.next;
            inner.buf[at] = event;
        }
        inner.next = (inner.next + 1) % RING_CAPACITY;
    });
    EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
}

/// Total events ever written to any ring. Flat while tracing is
/// disabled — the "no recorder writes" proof used by tests.
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Number of per-thread rings ever allocated. Flat across a warm
/// serving run — the "warm path is allocation-free" proof.
pub fn ring_allocations() -> u64 {
    RING_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Merge all per-thread rings into one timeline ordered by end time.
/// `limit == 0` means everything retained; otherwise the most recent
/// `limit` events.
pub fn recent(limit: usize) -> Vec<SpanEvent> {
    let rings = rings().lock().unwrap();
    let mut all: Vec<SpanEvent> = rings.iter().flat_map(|r| r.drain_ordered()).collect();
    drop(rings);
    all.sort_by_key(|e| (e.end_nanos, e.start_nanos));
    if limit > 0 && all.len() > limit {
        all.drain(..all.len() - limit);
    }
    all
}

/// Clear every ring's contents (capacity is retained). Test helper and
/// `trace --clear` backend.
pub fn clear() {
    for ring in rings().lock().unwrap().iter() {
        let mut inner = ring.inner.lock().unwrap();
        inner.buf.clear();
        inner.next = 0;
    }
}

/// Render events in the chrome://tracing "trace event" JSON format
/// (array form, complete `"X"` events, microsecond timestamps). Each
/// request id becomes a chrome thread so timelines group per request.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur_us = (e.end_nanos - e.start_nanos) as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"fmm\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"request_id\":{},\"thread\":{}}}}}",
            e.kind.name(),
            e.start_nanos as f64 / 1e3,
            dur_us,
            e.request_id,
            e.request_id,
            e.thread
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder state (switch, rings, counters) is process-global,
    // so every assertion about it lives in this one serialized test —
    // cargo runs #[test] fns in parallel threads and separate tests
    // would race on the shared switch.
    #[test]
    fn recorder_end_to_end() {
        // Disabled: no writes, no clock reads, start() hands out 0.
        set_enabled(false);
        let before = events_recorded();
        let t0 = start();
        assert_eq!(t0, 0);
        finish(SpanKind::Kernel, 1, t0);
        mark(SpanKind::ReplyFlush, 1);
        assert_eq!(events_recorded(), before, "disabled tracing must not write");

        // Enabled: events land in this thread's ring, stamped in order.
        set_enabled(true);
        clear();
        let t0 = start();
        assert!(t0 > 0);
        finish(SpanKind::QueueWait, 7, t0);
        mark(SpanKind::ReplyFlush, 7);
        let events = recent(0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, SpanKind::QueueWait);
        assert_eq!(events[0].request_id, 7);
        assert!(events[0].start_nanos <= events[0].end_nanos);
        assert_eq!(events[1].kind, SpanKind::ReplyFlush);
        assert_eq!(events[1].start_nanos, events[1].end_nanos, "mark is a point event");
        assert!(events[0].end_nanos <= events[1].end_nanos, "timeline ordered by end");

        // Toggling off mid-span drops the event instead of tearing it.
        let t0 = start();
        set_enabled(false);
        let mid = events_recorded();
        finish(SpanKind::Kernel, 7, t0);
        assert_eq!(events_recorded(), mid);
        set_enabled(true);

        // Warm path never allocates a new ring and stays bounded.
        clear();
        let rings_before = ring_allocations();
        for i in 0..(2 * RING_CAPACITY as u64) {
            mark(SpanKind::TaskExec, i);
        }
        assert_eq!(ring_allocations(), rings_before, "warm recording must not allocate rings");
        let events = recent(0);
        assert_eq!(events.len(), RING_CAPACITY, "ring is bounded");
        // Oldest events were overwritten; the newest survive in order.
        assert_eq!(events.last().unwrap().request_id, 2 * RING_CAPACITY as u64 - 1);
        assert_eq!(events[0].request_id, RING_CAPACITY as u64);
        let limited = recent(16);
        assert_eq!(limited.len(), 16);
        assert_eq!(limited.last().unwrap().request_id, 2 * RING_CAPACITY as u64 - 1);

        // Cross-thread merge: another thread's ring shows up in recent().
        clear();
        mark(SpanKind::RequestRecv, 101);
        std::thread::spawn(|| mark(SpanKind::TaskExec, 202)).join().unwrap();
        let events = recent(0);
        let ids: Vec<u64> = events.iter().map(|e| e.request_id).collect();
        assert!(ids.contains(&101) && ids.contains(&202), "ids={ids:?}");
        let threads: Vec<u32> = events.iter().map(|e| e.thread).collect();
        assert!(threads[0] != threads[1] || events.len() != 2);

        // Request tagging is per-thread and restores.
        let prev = set_current_request(55);
        assert_eq!(current_request(), 55);
        set_current_request(prev);
        assert_eq!(current_request(), prev);

        // Chrome export is well-formed for the simple shapes we emit.
        clear();
        let t0 = start();
        finish(SpanKind::Pack, 3, t0);
        let json = chrome_trace(&recent(0));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"Pack\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"request_id\":3"));

        set_enabled(false);
    }

    #[test]
    fn span_kind_names_roundtrip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("NoSuchPhase"), None);
    }
}
