//! Liveness watchdog: detects stalled loops and wedged dispatchers.
//!
//! Threads that are supposed to keep moving — event loops ticking
//! their poll timeout, dispatchers draining a queue — each register a
//! [`Heartbeat`] and update it from their own loop body. A single
//! watchdog thread wakes every [`WatchdogConfig::interval`] and judges
//! each component against its [`WatchPolicy`]:
//!
//! * [`WatchPolicy::Liveness`] — the component must *beat* (its loop
//!   must iterate). Stalled when `now - last_beat > stall_after`.
//!   Right for event loops, which tick on a bounded poll timeout even
//!   when idle.
//! * [`WatchPolicy::Progress`] — the component must make progress
//!   *when there is work*. Stalled when the work probe (e.g. queue
//!   depth) stays nonzero while the progress counter (e.g. batches
//!   formed) does not move for `stall_after`. Right for dispatchers,
//!   which legitimately block on a condvar when idle.
//!
//! Verdicts are recorded as escalating [`flight`] events — level 1 at
//! `stall_after`, level 2 at `2×`, and so on, one event per escalation
//! rather than one per tick — plus a monotone stall counter exported
//! as `fmm_watchdog_stalls_total`. A component that resumes gets a
//! recovery event. With [`WatchdogConfig::abort_after`] set, a stall
//! that persists past the deadline triggers the `on_abort` callback
//! (the server dumps an incident report there) and then aborts the
//! process: a hard-wedged daemon that cannot serve is worth more dead
//! with a dump than alive and silent.
//!
//! [`Heartbeat::beat`] and [`Heartbeat::progress`] are the only calls
//! on serving threads; both are one or two relaxed stores and carry
//! the `warm-alloc-free` contract. All judging state lives in the
//! watchdog thread.

use crate::flight::{self, FlightEvent, IncidentTrigger};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-component liveness signal, updated by the watched thread.
#[derive(Debug)]
pub struct Heartbeat {
    /// Loop-iteration counter.
    seq: AtomicU64,
    /// Monotonic nanos of the most recent beat.
    beat_nanos: AtomicU64,
    /// Completed units of work (e.g. batches formed).
    progress: AtomicU64,
}

impl Heartbeat {
    fn new() -> Heartbeat {
        Heartbeat {
            seq: AtomicU64::new(0),
            beat_nanos: AtomicU64::new(crate::trace::now_nanos()),
            progress: AtomicU64::new(0),
        }
    }

    /// The watched loop iterated. Two relaxed stores.
    // fmm-check: contract(warm-alloc-free)
    #[inline]
    pub fn beat(&self) {
        self.seq.fetch_add(1, Ordering::Relaxed);
        self.beat_nanos.store(crate::trace::now_nanos(), Ordering::Relaxed);
    }

    /// The watched loop completed a unit of work. Also beats.
    // fmm-check: contract(warm-alloc-free)
    #[inline]
    pub fn progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.beat();
    }

    pub fn beats(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    pub fn progress_count(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    fn last_beat_nanos(&self) -> u64 {
        self.beat_nanos.load(Ordering::Relaxed)
    }
}

/// How the watchdog judges a component (see module docs).
pub enum WatchPolicy {
    Liveness,
    /// `work` probes the amount of pending work (0 = legitimately
    /// idle); progress is read from the component's [`Heartbeat`].
    Progress {
        work: Box<dyn Fn() -> u64 + Send + Sync>,
    },
}

/// Watchdog thresholds. All deadlines are judged at `interval`
/// granularity.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Poll cadence of the watchdog thread.
    pub interval: Duration,
    /// A component is stalled after this long without a beat (or,
    /// under `Progress`, without progress while work is pending).
    pub stall_after: Duration,
    /// Dump-then-abort the process when a stall persists this long.
    /// `None` = never abort (the default).
    pub abort_after: Option<Duration>,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(100),
            stall_after: Duration::from_secs(1),
            abort_after: None,
        }
    }
}

struct Component {
    name: String,
    policy: WatchPolicy,
    heartbeat: Arc<Heartbeat>,
}

/// Judging state, owned by the watchdog thread (per component).
#[derive(Clone, Copy, Default)]
struct JudgeState {
    last_progress: u64,
    /// Nanos when the progress baseline was last reset.
    baseline_nanos: u64,
    /// Escalation level already recorded for the current stall
    /// episode (0 = healthy).
    recorded_level: u64,
    /// Stall duration at the last recorded verdict.
    last_stalled_for: u64,
}

struct Inner {
    config: WatchdogConfig,
    components: Mutex<Vec<Component>>,
    stalls: AtomicU64,
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

/// The watchdog: a registry of components plus the judging thread.
/// Clone-cheap (shared interior); register every component, then
/// [`spawn`](Watchdog::spawn).
#[derive(Clone)]
pub struct Watchdog {
    inner: Arc<Inner>,
}

/// Join guard for the watchdog thread.
pub struct WatchdogHandle {
    inner: Arc<Inner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    pub fn new(config: WatchdogConfig) -> Watchdog {
        Watchdog {
            inner: Arc::new(Inner {
                config,
                components: Mutex::new(Vec::new()),
                stalls: AtomicU64::new(0),
                stop: Mutex::new(false),
                stop_cv: Condvar::new(),
            }),
        }
    }

    /// Register a component; the returned [`Heartbeat`] is what the
    /// watched thread updates. The component's flight-event id is its
    /// registration index (see [`component_names`](Self::component_names)).
    pub fn register(&self, name: &str, policy: WatchPolicy) -> Arc<Heartbeat> {
        let heartbeat = Arc::new(Heartbeat::new());
        let mut components = self.inner.components.lock().unwrap();
        components.push(Component {
            name: name.to_string(),
            policy,
            heartbeat: Arc::clone(&heartbeat),
        });
        heartbeat
    }

    /// Component names in registration (= flight-event id) order.
    pub fn component_names(&self) -> Vec<String> {
        self.inner.components.lock().unwrap().iter().map(|c| c.name.clone()).collect()
    }

    /// Total stall verdicts recorded (exported as
    /// `fmm_watchdog_stalls_total`).
    pub fn stalls_total(&self) -> u64 {
        self.inner.stalls.load(Ordering::Relaxed)
    }

    /// Start the judging thread. `on_abort` runs (once) right before
    /// the process is aborted for a stall that outlived
    /// [`WatchdogConfig::abort_after`].
    pub fn spawn(&self, on_abort: Box<dyn Fn() + Send>) -> WatchdogHandle {
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::Builder::new()
            .name("fmm-watchdog".to_string())
            .spawn(move || run(&inner, on_abort))
            .expect("spawn watchdog thread");
        WatchdogHandle { inner: Arc::clone(&self.inner), thread: Some(thread) }
    }
}

impl WatchdogHandle {
    /// Stop and join the judging thread.
    pub fn stop(mut self) {
        *self.inner.stop.lock().unwrap() = true;
        self.inner.stop_cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run(inner: &Inner, on_abort: Box<dyn Fn() + Send>) {
    let mut judge: Vec<JudgeState> = Vec::new();
    loop {
        {
            let stop = inner.stop.lock().unwrap();
            if *stop {
                return;
            }
            let (stop, _) = inner.stop_cv.wait_timeout(stop, inner.config.interval).unwrap();
            if *stop {
                return;
            }
        }
        tick(inner, &mut judge, &on_abort);
    }
}

/// One judging pass over every component.
fn tick(inner: &Inner, judge: &mut Vec<JudgeState>, on_abort: &dyn Fn()) {
    let now = crate::trace::now_nanos();
    let stall_after = inner.config.stall_after.as_nanos() as u64;
    let abort_after = inner.config.abort_after.map(|d| d.as_nanos() as u64);
    let components = inner.components.lock().unwrap();
    while judge.len() < components.len() {
        judge.push(JudgeState { baseline_nanos: now, ..JudgeState::default() });
    }
    for (id, component) in components.iter().enumerate() {
        let state = &mut judge[id];
        let stalled_for = match &component.policy {
            WatchPolicy::Liveness => now.saturating_sub(component.heartbeat.last_beat_nanos()),
            WatchPolicy::Progress { work } => {
                let progress = component.heartbeat.progress_count();
                if work() == 0 || progress != state.last_progress {
                    state.last_progress = progress;
                    state.baseline_nanos = now;
                    0
                } else {
                    now.saturating_sub(state.baseline_nanos)
                }
            }
        };
        if stalled_for >= stall_after && stall_after > 0 {
            let level = stalled_for / stall_after;
            if level > state.recorded_level {
                state.recorded_level = level;
                state.last_stalled_for = stalled_for;
                flight::record(FlightEvent::WatchdogStall {
                    component: id as u64,
                    stalled_nanos: stalled_for,
                    level,
                });
                inner.stalls.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(abort_after) = abort_after {
                if stalled_for >= abort_after {
                    flight::record(FlightEvent::Incident {
                        trigger: IncidentTrigger::WatchdogAbort,
                    });
                    on_abort();
                    std::process::abort();
                }
            }
        } else if state.recorded_level > 0 {
            flight::record(FlightEvent::WatchdogRecovered {
                component: id as u64,
                stalled_nanos: state.last_stalled_for,
            });
            state.recorded_level = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestAtomic;

    fn short_config() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(5),
            stall_after: Duration::from_millis(40),
            abort_after: None,
        }
    }

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_millis(deadline_ms) {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn watchdog_verdicts_end_to_end() {
        // The flight ring is process-global; serialize with the other
        // ring-touching test in this crate.
        let _guard = crate::test_lock().lock().unwrap_or_else(|e| e.into_inner());

        // -- Liveness: a silent component stalls, a beating one not --
        let wd = Watchdog::new(short_config());
        let silent = wd.register("silent-loop", WatchPolicy::Liveness);
        let lively = wd.register("lively-loop", WatchPolicy::Liveness);
        assert_eq!(wd.component_names(), ["silent-loop", "lively-loop"]);
        let handle = wd.spawn(Box::new(|| {}));
        assert!(
            wait_until(2_000, || {
                lively.beat();
                wd.stalls_total() >= 1
            }),
            "silent component never judged stalled"
        );
        // The stall named the silent component, not the lively one.
        let stalls: Vec<u64> = flight::snapshot()
            .iter()
            .filter_map(|r| match r.event {
                FlightEvent::WatchdogStall { component, .. } => Some(component),
                _ => None,
            })
            .collect();
        assert!(stalls.contains(&0), "stall verdicts: {stalls:?}");
        assert!(!stalls.contains(&1), "lively component must stay healthy: {stalls:?}");

        // -- Recovery: resuming beats produces a recovery verdict ----
        assert!(
            wait_until(2_000, || {
                silent.beat();
                lively.beat();
                flight::snapshot()
                    .iter()
                    .any(|r| matches!(r.event, FlightEvent::WatchdogRecovered { component: 0, .. }))
            }),
            "recovered component never acknowledged"
        );
        handle.stop();
        assert!(silent.beats() > 0 && lively.beats() > 0);

        // -- Progress: pending work without progress is a wedge ------
        let wd = Watchdog::new(short_config());
        let depth = Arc::new(TestAtomic::new(0));
        let probe = Arc::clone(&depth);
        let hb = wd.register(
            "dispatch",
            WatchPolicy::Progress { work: Box::new(move || probe.load(Ordering::Relaxed)) },
        );
        let handle = wd.spawn(Box::new(|| {}));
        // Idle (work == 0): never stalls, even without beats.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(wd.stalls_total(), 0, "idle dispatcher must not be judged stalled");
        // Work appears and progress keeps up: still healthy.
        depth.store(3, Ordering::Relaxed);
        for _ in 0..10 {
            hb.progress();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(wd.stalls_total(), 0, "progressing dispatcher must stay healthy");
        // Progress stops while work remains: wedged, with escalation.
        assert!(
            wait_until(2_000, || wd.stalls_total() >= 2),
            "wedged dispatcher never escalated (stalls={})",
            wd.stalls_total()
        );
        let wedge = flight::snapshot().into_iter().rev().find_map(|r| match r.event {
            FlightEvent::WatchdogStall { component: 0, stalled_nanos, level } => {
                Some((stalled_nanos, level))
            }
            _ => None,
        });
        let (stalled_nanos, level) = wedge.expect("wedge verdict recorded");
        assert!(level >= 2, "escalation level grows: {level}");
        assert!(stalled_nanos >= 40_000_000, "stall duration measured: {stalled_nanos}");
        handle.stop();
    }
}
