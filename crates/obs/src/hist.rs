//! Fixed-footprint log-bucketed histograms.
//!
//! The layout is the classic HDR-style "octave + sub-bucket" scheme:
//! values 0..7 get one exact bucket each, and every octave above that
//! is split into 8 sub-buckets, so a bucket spanning `[lo, hi]` always
//! has `hi < lo * 1.125`. Quantiles reported from bucket upper bounds
//! are therefore at most 12.5% above the exact-sort answer, while the
//! whole histogram is 496 relaxed `AtomicU64`s (~4 KB) regardless of
//! how many samples it absorbs.
//!
//! Unlike the sliding-window ring it replaces in `fmm-serve`, counts
//! are never evicted: p50/p99 summarize *every* sample since process
//! start, and two histograms recorded on different threads merge by
//! bucket-wise addition.
//!
//! The record/merge paths carry `fmm-check`'s `contract(warm-alloc-free)`
//! (see README § Static analysis): recording a sample must never touch
//! the heap. `snapshot` is the cold export path and may allocate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count: 8 exact unit buckets plus 8 sub-buckets for each
/// of the 61 octaves from 2^3 up through 2^63.
pub const BUCKETS: usize = SUB + 61 * SUB;

/// Bucket index for a value. Monotone in `v`; saturates at `BUCKETS-1`
/// for `u64::MAX`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
        let sub = ((v >> (msb - SUB_BITS)) as usize) - SUB;
        ((msb - SUB_BITS) as usize) * SUB + SUB + sub
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        let oct = (index - SUB) / SUB;
        let sub = (index - SUB) % SUB;
        let lo = ((SUB + sub) as u64) << oct;
        let width = 1u64 << oct;
        (lo, lo + (width - 1))
    }
}

/// A concurrent log-bucketed histogram. All mutation is relaxed-atomic
/// and lock-free; `snapshot` reads are racy-but-consistent-enough in
/// the usual monitoring sense (counts never decrease).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            // u64::MAX means "no sample yet"; any real sample replaces it.
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Three relaxed RMWs plus a relaxed min/max.
    // fmm-check: contract(warm-alloc-free)
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    // fmm-check: contract(warm-alloc-free)
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded since creation.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Bucket-wise addition of `other` into `self` (cross-thread merge).
    // fmm-check: contract(warm-alloc-free)
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        // An empty `other` holds the u64::MAX sentinel, which fetch_min
        // absorbs without disturbing our own minimum.
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile math and export.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable histogram snapshot: lifetime totals plus the non-empty
/// buckets, ready for quantile queries and serialization.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact smallest recorded sample (0 when empty).
    pub min: u64,
    /// Exact largest recorded sample (0 when empty).
    pub max: u64,
    buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// Nearest-rank quantile (`q` in `[0, 1]`) over all recorded
    /// samples. Reports the upper bound of the bucket holding the
    /// rank-th sample (clamped to the true max), so the result is
    /// within +12.5% of the exact-sort answer. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(index);
                // Clamp to the exact extrema: the bucket upper bound can
                // overshoot the true max, and (for the first bucket) sit
                // below the true min.
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().map(|&(i, n)| {
            let (lo, hi) = bucket_bounds(i);
            (lo, hi, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* so tests need no external RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    fn assert_quantiles_close(samples: &mut [u64], h: &Histogram) {
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count as usize, samples.len());
        for &q in &[0.5, 0.9, 0.99, 1.0] {
            let exact = exact_nearest_rank(samples, q);
            let approx = snap.quantile(q);
            // Bucket upper bound: never below exact, at most 12.5% above.
            assert!(
                approx >= exact && approx as f64 <= exact as f64 * 1.125 + 1.0,
                "q={q}: exact={exact} approx={approx}"
            );
        }
        assert_eq!(snap.min, *samples.first().unwrap());
        assert_eq!(snap.max, *samples.last().unwrap());
        // The histogram's u64 sum can wrap on adversarial inputs; only
        // check exactness when the true sum fits.
        let true_sum = samples.iter().map(|&v| v as u128).sum::<u128>();
        if true_sum <= u64::MAX as u128 {
            let exact_mean = true_sum as f64 / samples.len() as f64;
            assert!((snap.mean() - exact_mean).abs() < 1e-6, "mean must be exact, not bucketed");
        }
    }

    #[test]
    fn index_is_monotone_and_bounds_roundtrip() {
        for index in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert_eq!(bucket_index(lo), index, "lo of bucket {index}");
            assert_eq!(bucket_index(hi), index, "hi of bucket {index}");
            if index + 1 < BUCKETS {
                let (next_lo, _) = bucket_bounds(index + 1);
                assert_eq!(next_lo, hi.wrapping_add(1), "buckets {index} contiguous");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for _ in 0..10_000 {
            let a = rng.next();
            let b = rng.next();
            let (a, b) = (a.min(b), a.max(b));
            assert!(bucket_index(a) <= bucket_index(b));
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for index in SUB..BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert!(hi - lo < lo / SUB as u64 + 1, "bucket {index} too wide");
        }
    }

    #[test]
    fn quantiles_match_exact_sort_on_uniform_random() {
        let h = Histogram::new();
        let mut rng = Rng(42);
        let mut samples = Vec::new();
        for _ in 0..50_000 {
            let v = rng.next() % 10_000_000;
            h.record(v);
            samples.push(v);
        }
        assert_quantiles_close(&mut samples, &h);
    }

    #[test]
    fn quantiles_match_exact_sort_on_heavy_tail() {
        // Latency-shaped: mostly small, occasional huge outliers.
        let h = Histogram::new();
        let mut rng = Rng(7);
        let mut samples = Vec::new();
        for i in 0..20_000u64 {
            let v = if i % 100 == 0 {
                1_000_000_000 + rng.next() % 1_000_000_000
            } else {
                10_000 + rng.next() % 50_000
            };
            h.record(v);
            samples.push(v);
        }
        assert_quantiles_close(&mut samples, &h);
    }

    #[test]
    fn quantiles_on_adversarial_distributions() {
        // All-equal.
        let h = Histogram::new();
        let mut samples = vec![12_345u64; 1000];
        for &v in &samples {
            h.record(v);
        }
        assert_quantiles_close(&mut samples, &h);

        // Exact bucket boundaries (powers of two and their neighbours).
        let h = Histogram::new();
        let mut samples = Vec::new();
        for shift in 0..63u32 {
            for delta in [0i64, 1, -1] {
                let v = (1u64 << shift).saturating_add_signed(delta);
                h.record(v);
                samples.push(v);
            }
        }
        assert_quantiles_close(&mut samples, &h);

        // Single sample, and zero.
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.count, 1);
        assert_eq!((snap.min, snap.max), (0, 0));

        // A lone mid-bucket sample: every quantile is that exact value,
        // not the surrounding bucket's bounds.
        let h = Histogram::new();
        h.record(1_000_003);
        let snap = h.snapshot();
        assert_eq!((snap.min, snap.max), (1_000_003, 1_000_003));
        for &q in &[0.01, 0.5, 1.0] {
            assert_eq!(snap.quantile(q), 1_000_003);
        }

        // Empty histogram reports zeros, not garbage (min included).
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min, 0);
    }

    #[test]
    fn cross_thread_recording_and_merge() {
        use std::sync::Arc;
        let shared = Arc::new(Histogram::new());
        let local_merged = Histogram::new();
        let mut handles = Vec::new();
        let mut all = Vec::new();
        for t in 0..4u64 {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let local = Histogram::new();
                let mut rng = Rng(t + 1);
                let mut mine = Vec::new();
                for _ in 0..5_000 {
                    let v = rng.next() % 1_000_000;
                    shared.record(v); // concurrent path
                    local.record(v); // merge path
                    mine.push(v);
                }
                (local, mine)
            }));
        }
        for handle in handles {
            let (local, mine) = handle.join().unwrap();
            local_merged.merge_from(&local);
            all.extend(mine);
        }
        assert_quantiles_close(&mut all.clone(), &shared);
        assert_quantiles_close(&mut all, &local_merged);
        assert_eq!(shared.snapshot().sum, local_merged.snapshot().sum);
    }

    #[test]
    fn mean_and_sum_are_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.count, 100);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
        assert_eq!((snap.min, snap.max), (1, 100));
    }

    #[test]
    fn merge_preserves_exact_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(500);
        a.record(9_000_000);
        b.record(77);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!((snap.min, snap.max, snap.count), (77, 9_000_000, 3));

        // Merging an empty histogram must not disturb either extremum.
        a.merge_from(&Histogram::new());
        let snap = a.snapshot();
        assert_eq!((snap.min, snap.max, snap.count), (77, 9_000_000, 3));
    }
}
