//! Std-only observability core for the FMM serving stack.
//!
//! Three pieces, each usable on its own:
//!
//! * [`hist`] — fixed-footprint log-bucketed histograms. Base-2 buckets
//!   with 8 sub-buckets per octave (≤ 12.5% relative error), relaxed
//!   atomic counters, mergeable across threads, percentiles computed
//!   over **all** samples ever recorded rather than a sliding window.
//! * [`registry`] — named counters / gauges / histograms behind
//!   `Arc` handles. Lookup takes a lock once; the handle is then
//!   lock-free on the hot path. A process-global registry
//!   ([`global`]) serves layers (gemm, sched) that have no
//!   server object to hang metrics off.
//! * [`trace`] — a runtime-toggleable span recorder: per-thread
//!   bounded rings of typed [`trace::SpanEvent`]s carrying a request
//!   id and monotonic nanosecond timestamps. The disabled path is a
//!   single relaxed atomic load and a branch; the enabled warm path
//!   performs no heap allocation (rings are preallocated at first use
//!   and overwritten in place).
//!
//! This crate depends on nothing but `std` so every layer of the stack
//! — including the GEMM substrate at the bottom — can record into it
//! without creating dependency cycles.

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{HistSnapshot, Histogram};
pub use registry::{global, Counter, Gauge, Registry, Snapshot};
pub use trace::{SpanEvent, SpanKind};
