//! Std-only observability core for the FMM serving stack.
//!
//! Six pieces, each usable on its own:
//!
//! * [`hist`] — fixed-footprint log-bucketed histograms. Base-2 buckets
//!   with 8 sub-buckets per octave (≤ 12.5% relative error), relaxed
//!   atomic counters, mergeable across threads, percentiles computed
//!   over **all** samples ever recorded rather than a sliding window.
//! * [`registry`] — named counters / gauges / histograms behind
//!   `Arc` handles. Lookup takes a lock once; the handle is then
//!   lock-free on the hot path. A process-global registry
//!   ([`global`]) serves layers (gemm, sched) that have no
//!   server object to hang metrics off.
//! * [`trace`] — a runtime-toggleable span recorder: per-thread
//!   bounded rings of typed [`trace::SpanEvent`]s carrying a request
//!   id and monotonic nanosecond timestamps. The disabled path is a
//!   single relaxed atomic load and a branch; the enabled warm path
//!   performs no heap allocation (rings are preallocated at first use
//!   and overwritten in place).
//! * [`audit`] — decision audit: per-(shape-class, dtype) aggregates
//!   of predicted-vs-measured multiply cost ([`audit::AuditSample`]),
//!   model-error ratio histograms, best/worst observed GFLOP/s, and
//!   routing-source attribution. The warm record path is lock-free and
//!   allocation-free after the one-time table allocation.
//! * [`flight`] — an always-on flight recorder: a fixed-capacity,
//!   overwrite-oldest global ring of typed [`flight::FlightEvent`]s
//!   (connection lifecycle, refusals, error frames, slow requests,
//!   batch formation, engine fallbacks, watchdog verdicts) with
//!   global sequence numbers, for post-mortem incident dumps.
//! * [`watchdog`] — a liveness watchdog: serving threads publish
//!   [`watchdog::Heartbeat`] atomics; one judging thread detects
//!   stalled loops and wedged dispatchers, records escalating flight
//!   events, and can dump-then-abort a hard-wedged process.
//!
//! This crate depends on nothing but `std` so every layer of the stack
//! — including the GEMM substrate at the bottom — can record into it
//! without creating dependency cycles.
//!
//! # Atomic-ordering policy
//!
//! Every atomic in this crate uses `Ordering::Relaxed`, deliberately:
//! the counters, histogram buckets, and trace switch are monotone
//! monitoring state — nothing synchronizes-with them, and readers
//! tolerate staleness by design. An earlier draft of the trace switch
//! used `SeqCst` "to be safe"; that bought nothing (the enabled check
//! guards no data published by the store) and put a full fence on the
//! per-request warm path. `fmm-check`'s `atomic-ordering` rule now
//! denies `SeqCst` workspace-wide so the regression cannot silently
//! return — if an ordering stronger than `Relaxed` is ever truly
//! needed here, use `Acquire`/`Release` with an adjacent `// ORDERING:`
//! comment proving the happens-before edge (see README § Static
//! analysis).

pub mod audit;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod trace;
pub mod watchdog;

pub use audit::{AuditDtype, AuditEntry, AuditSample, AuditSource};
pub use flight::{FlightEvent, FlightRecord, IncidentTrigger, RefusalReason, SlowPhase};
pub use hist::{HistSnapshot, Histogram};
pub use registry::{global, sanitize_metric_name, Counter, Gauge, Registry, Snapshot};
pub use trace::{SpanEvent, SpanKind};
pub use watchdog::{Heartbeat, WatchPolicy, Watchdog, WatchdogConfig, WatchdogHandle};

/// Unit tests that touch the process-global flight ring serialize on
/// this lock (cargo runs same-crate tests in parallel threads).
#[cfg(test)]
pub(crate) fn test_lock() -> &'static std::sync::Mutex<()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    &LOCK
}
