//! `fmm-check` pragma comments.
//!
//! Two directives, written anywhere a comment is legal:
//!
//! * `// fmm-check: allow(<rule>, reason = "...")` — suppress a rule.
//!   The reason is mandatory. In the file header (before the first code
//!   token) the allow covers the whole file; elsewhere it covers exactly
//!   one line — its own line when trailing, otherwise the next code line.
//! * `// fmm-check: contract(panic-free)` / `contract(warm-alloc-free)`
//!   — opt a region into a contract rule. In the file header the
//!   contract covers the whole file (minus `#[cfg(test)]` regions);
//!   elsewhere it covers the next item (brace-matched, e.g. one `fn`).
//!
//! Malformed pragmas (unknown rule, unknown contract, missing or empty
//! reason) are themselves diagnostics (`bad-pragma`): a suppression that
//! silently fails to parse would be worse than no suppression at all.

use crate::lexer::{Comment, LexFile};
use crate::rules::RULE_NAMES;

/// A contract a region can opt into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contract {
    /// `deny-panic` applies: no unwrap/expect/panic!/unreachable!/indexing.
    PanicFree,
    /// `deny-alloc` applies: no allocating constructors on the warm path.
    WarmAllocFree,
}

impl Contract {
    pub fn name(self) -> &'static str {
        match self {
            Contract::PanicFree => "panic-free",
            Contract::WarmAllocFree => "warm-alloc-free",
        }
    }
}

/// Scope a pragma resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Whole file.
    File,
    /// An inclusive line range (single line for allows, an item's span
    /// for contracts).
    Lines(u32, u32),
}

impl Scope {
    pub fn contains(&self, line: u32) -> bool {
        match *self {
            Scope::File => true,
            Scope::Lines(a, b) => (a..=b).contains(&line),
        }
    }
}

/// A parsed `allow` pragma.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: String,
    #[allow(dead_code)]
    pub reason: String,
    pub scope: Scope,
    /// Line the pragma itself sits on (for diagnostics).
    pub line: u32,
}

/// A parsed `contract` pragma.
#[derive(Clone, Debug)]
pub struct ContractRegion {
    pub contract: Contract,
    pub scope: Scope,
    pub line: u32,
}

/// A malformed pragma.
#[derive(Clone, Debug)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// All pragmas of one file.
#[derive(Debug, Default)]
pub struct Pragmas {
    pub allows: Vec<Allow>,
    pub contracts: Vec<ContractRegion>,
    pub bad: Vec<BadPragma>,
}

impl Pragmas {
    /// True if `rule` is allowed at `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.scope.contains(line))
    }

    /// True if `contract` covers `line`.
    pub fn in_contract(&self, contract: Contract, line: u32) -> bool {
        self.contracts.iter().any(|c| c.contract == contract && c.scope.contains(line))
    }
}

/// Extract pragmas from a lexed file. `item_span` resolves the line
/// range of the item following a given line (supplied by the rules
/// module, which owns brace matching).
pub fn collect(lexed: &LexFile, item_span: impl Fn(u32) -> Option<(u32, u32)>) -> Pragmas {
    let mut out = Pragmas::default();
    let first_code = lexed.first_code_line().unwrap_or(u32::MAX);
    for c in &lexed.comments {
        let Some(directive) = pragma_text(c) else { continue };
        match parse_directive(directive) {
            Ok(Directive::Allow { rule, reason }) => {
                let scope = if c.line < first_code && !c.trailing {
                    Scope::File
                } else if c.trailing {
                    Scope::Lines(c.line, c.line)
                } else {
                    match lexed.next_code_line_after(c.end_line) {
                        Some(l) => Scope::Lines(l, l),
                        None => Scope::Lines(c.line, c.line),
                    }
                };
                out.allows.push(Allow { rule, reason, scope, line: c.line });
            }
            Ok(Directive::Contract(contract)) => {
                let scope = if c.line < first_code && !c.trailing {
                    Scope::File
                } else {
                    match item_span(c.end_line) {
                        Some((a, b)) => Scope::Lines(a, b),
                        None => {
                            out.bad.push(BadPragma {
                                line: c.line,
                                message: "contract pragma is not followed by an item".to_string(),
                            });
                            continue;
                        }
                    }
                };
                out.contracts.push(ContractRegion { contract, scope, line: c.line });
            }
            Err(msg) => out.bad.push(BadPragma { line: c.line, message: msg }),
        }
    }
    out
}

/// If `c` is a pragma comment, return the directive text after the
/// `fmm-check:` marker. Only plain `//` line comments whose content
/// *starts* with the marker count: doc comments and prose that merely
/// mention the syntax are not pragmas.
fn pragma_text(c: &Comment) -> Option<&str> {
    let text = c.text.as_str();
    let rest = text.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None; // doc comment
    }
    rest.trim_start().strip_prefix("fmm-check:").map(str::trim)
}

enum Directive {
    Allow { rule: String, reason: String },
    Contract(Contract),
}

fn parse_directive(s: &str) -> Result<Directive, String> {
    if let Some(body) = strip_call(s, "allow") {
        let (rule, rest) = match body.find(',') {
            Some(i) => (body[..i].trim(), body[i + 1..].trim()),
            None => {
                return Err(format!(
                    "allow({}) is missing the mandatory `reason = \"...\"`",
                    body.trim()
                ))
            }
        };
        if !RULE_NAMES.contains(&rule) {
            return Err(format!("allow names unknown rule `{rule}`"));
        }
        let reason = rest
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .ok_or_else(|| format!("allow({rule}, ...) needs `reason = \"...\"`"))?;
        let reason = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| format!("allow({rule}, ...): reason must be a quoted string"))?;
        if reason.trim().is_empty() {
            return Err(format!("allow({rule}, ...): reason must not be empty"));
        }
        return Ok(Directive::Allow { rule: rule.to_string(), reason: reason.to_string() });
    }
    if let Some(body) = strip_call(s, "contract") {
        return match body.trim() {
            "panic-free" => Ok(Directive::Contract(Contract::PanicFree)),
            "warm-alloc-free" => Ok(Directive::Contract(Contract::WarmAllocFree)),
            other => Err(format!("unknown contract `{other}`")),
        };
    }
    Err(format!("unrecognized fmm-check directive `{s}`"))
}

/// For `name(body) [trailing text]`, return `body`. Text after the
/// closing paren is ignored so pragmas can carry prose.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Pragmas {
        let lexed = lex(src);
        collect(&lexed, |_| Some((0, 0)))
    }

    #[test]
    fn allow_requires_reason() {
        let p = pragmas("// fmm-check: allow(deny-panic)\nfn f() {}");
        assert!(p.allows.is_empty());
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("reason"));
    }

    #[test]
    fn allow_rejects_empty_reason() {
        let p = pragmas("// fmm-check: allow(deny-panic, reason = \"  \")\nfn f() {}");
        assert!(p.allows.is_empty());
        assert_eq!(p.bad.len(), 1);
    }

    #[test]
    fn allow_rejects_unknown_rule() {
        let p = pragmas("// fmm-check: allow(no-such-rule, reason = \"x\")\nfn f() {}");
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("no-such-rule"));
    }

    #[test]
    fn header_allow_is_file_scoped() {
        let p = pragmas("// fmm-check: allow(deny-panic, reason = \"test shim\")\nfn f() {}");
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].scope, Scope::File);
        assert!(p.is_allowed("deny-panic", 999));
    }

    #[test]
    fn body_allow_covers_next_code_line() {
        let src =
            "fn f() {\n    // fmm-check: allow(deny-panic, reason = \"len checked\")\n    x[0];\n}";
        let p = pragmas(src);
        assert_eq!(p.allows[0].scope, Scope::Lines(3, 3));
        assert!(p.is_allowed("deny-panic", 3));
        assert!(!p.is_allowed("deny-panic", 4));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src =
            "fn f() {\n    x[0]; // fmm-check: allow(deny-panic, reason = \"len checked\")\n}";
        let p = pragmas(src);
        assert!(p.is_allowed("deny-panic", 2));
    }

    #[test]
    fn contract_parses_both_kinds() {
        let p = pragmas("// fmm-check: contract(panic-free)\nfn f() {}");
        assert_eq!(p.contracts.len(), 1);
        assert_eq!(p.contracts[0].contract, Contract::PanicFree);
        let p = pragmas("// fmm-check: contract(warm-alloc-free)\nfn f() {}");
        assert_eq!(p.contracts[0].contract, Contract::WarmAllocFree);
    }

    #[test]
    fn unknown_contract_is_bad() {
        let p = pragmas("// fmm-check: contract(lock-free)\nfn f() {}");
        assert!(p.contracts.is_empty());
        assert_eq!(p.bad.len(), 1);
    }
}
