//! Workspace file discovery.
//!
//! The pass runs over the workspace's *own* sources: everything under
//! `crates/`, the umbrella crate's `src/`, and the workspace-level
//! `tests/` and `examples/`. `vendor/` (offline stand-in crates),
//! `target/`, and `crates/check`'s rule fixtures (deliberately-bad
//! sources) are excluded. Files under a `tests/`, `benches/` or
//! `examples/` directory are classified as test code: hygiene rules
//! still apply there, contract rules do not.

use std::fs;
use std::path::{Path, PathBuf};

/// One file to check.
#[derive(Debug)]
pub struct SourceFile {
    pub path: PathBuf,
    /// True if every line counts as test code.
    pub all_test: bool,
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect the workspace's own sources under `root`.
pub fn workspace_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect(&root.join(top), &mut out);
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// Collect `fmm-check`'s own sources (the `--self` run).
pub fn self_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    collect(&root.join("crates/check"), &mut out);
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

fn collect(dir: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            let all_test = path.components().any(|c| {
                matches!(c.as_os_str().to_string_lossy().as_ref(), "tests" | "benches" | "examples")
            });
            out.push(SourceFile { path, all_test });
        }
    }
}
