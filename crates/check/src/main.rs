//! The `fmm-check` binary: `fmm-check --workspace | --self | FILES...`.
//!
//! Prints machine-readable `file:line rule message` diagnostics followed
//! by a per-rule summary table, and exits nonzero if any diagnostic
//! fired. See the crate docs for rules and pragma syntax.

use fmm_check::scan;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scope_workspace = false;
    let mut scope_self = false;
    let mut explicit: Vec<PathBuf> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--workspace" => scope_workspace = true,
            "--self" => scope_self = true,
            "--help" | "-h" => {
                println!(
                    "usage: fmm-check [--workspace] [--self] [FILES...]\n\n\
                     --workspace  check every workspace source (crates/, src/, tests/, examples/)\n\
                     --self       check crates/check itself\n\
                     FILES        check explicit .rs files (paths containing /tests/, /benches/\n\
                     \x20            or /examples/ are classified as test code)\n\n\
                     Exits 0 iff no diagnostic fired. See README \"Static analysis\"."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("fmm-check: unknown flag {flag} (try --help)");
                return ExitCode::from(2);
            }
            path => explicit.push(PathBuf::from(path)),
        }
    }
    if !scope_workspace && !scope_self && explicit.is_empty() {
        scope_workspace = true;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fmm-check: cannot determine cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match scan::find_root(&cwd) {
        Some(r) => r,
        None => {
            eprintln!("fmm-check: no workspace root ([workspace] in Cargo.toml) above {cwd:?}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    if scope_workspace {
        files.extend(scan::workspace_files(&root));
    }
    if scope_self {
        files.extend(scan::self_files(&root));
    }
    for path in explicit {
        let all_test = path.components().any(|c| {
            matches!(c.as_os_str().to_string_lossy().as_ref(), "tests" | "benches" | "examples")
        });
        files.push(scan::SourceFile { path, all_test });
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    files.dedup_by(|a, b| a.path == b.path);

    let report = fmm_check::run(&files);
    for line in report.diagnostic_lines(&root) {
        println!("{line}");
    }
    print!("{}", report.summary_table());
    if report.failures() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
