//! The rule engine: five rules over the lexed token stream.
//!
//! | rule | fires on |
//! |------|----------|
//! | `undocumented-unsafe` | `unsafe` block/fn/impl/trait without an adjacent `// SAFETY:` (or `# Safety` doc section) |
//! | `atomic-ordering` | `Ordering::SeqCst` anywhere (deny-by-default); `Acquire`/`Release`/`AcqRel` without an adjacent `// ORDERING:` comment |
//! | `deny-panic` | `unwrap(`/`expect(`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/`[` indexing inside `contract(panic-free)` regions |
//! | `deny-alloc` | `Vec::new`/`vec!`/`to_vec`/`Box::new`/`String::from`/`format!`/… inside `contract(warm-alloc-free)` regions |
//! | `ffi-layout` | `extern` blocks or `#[repr(C)]` types in files without a `const _: () = assert!(size_of::<…>() == …)` layout guard |
//!
//! Plus `bad-pragma` for malformed `// fmm-check:` directives, which is
//! not suppressible. Contract rules skip `#[cfg(test)]` regions and
//! test-only files; unsafe/ordering/layout hygiene applies everywhere.

use crate::lexer::{lex, LexFile, Tok, TokKind};
use crate::pragma::{self, Contract, Pragmas};
use std::collections::BTreeSet;

/// Every rule name a pragma may reference.
pub const RULE_NAMES: &[&str] = &[
    "undocumented-unsafe",
    "atomic-ordering",
    "deny-panic",
    "deny-alloc",
    "ffi-layout",
    "bad-pragma",
];

/// One finding, before or after pragma filtering.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Result of checking one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma filtering — these fail the build.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by an `allow(...)` pragma, per rule.
    pub suppressed: Vec<Diagnostic>,
}

/// Check one file's source. `all_test` marks files whose every line is
/// test code (integration tests, benches, examples).
pub fn check_source(src: &str, all_test: bool) -> FileReport {
    let lexed = lex(src);
    let test_lines = if all_test { TestLines::All } else { TestLines::Set(cfg_test_lines(&lexed)) };
    let pragmas = pragma::collect(&lexed, |line| item_span_after(&lexed, line));

    let mut findings: Vec<Diagnostic> = Vec::new();
    rule_undocumented_unsafe(&lexed, &mut findings);
    rule_atomic_ordering(&lexed, &mut findings);
    rule_deny_panic(&lexed, &pragmas, &test_lines, &mut findings);
    rule_deny_alloc(&lexed, &pragmas, &test_lines, &mut findings);
    rule_ffi_layout(&lexed, &mut findings);

    let mut report = FileReport::default();
    for f in findings {
        if pragmas.is_allowed(f.rule, f.line) {
            report.suppressed.push(f);
        } else {
            report.diagnostics.push(f);
        }
    }
    for bad in &pragmas.bad {
        report.diagnostics.push(Diagnostic {
            line: bad.line,
            rule: "bad-pragma",
            message: bad.message.clone(),
        });
    }
    report.diagnostics.sort_by_key(|d| d.line);
    report
}

enum TestLines {
    All,
    Set(BTreeSet<u32>),
}

impl TestLines {
    fn contains(&self, line: u32) -> bool {
        match self {
            TestLines::All => true,
            TestLines::Set(s) => s.contains(&line),
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream geometry helpers
// ---------------------------------------------------------------------------

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Index of the matching close delimiter for the open delimiter at
/// `open_idx`, tracking all three bracket kinds.
fn match_delim(toks: &[Tok], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Span (start token idx, end token idx) of the item starting at token
/// `start`: ends at the first `;` at depth 0, or the `}` matching the
/// first `{` at depth 0.
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return Some(j),
                "{" if depth == 0 => return match_delim(toks, j),
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Line span of the first item whose first token is strictly after
/// `line` — used to scope item-level contract pragmas.
fn item_span_after(lexed: &LexFile, line: u32) -> Option<(u32, u32)> {
    let start = lexed.tokens.iter().position(|t| t.line > line)?;
    let end = item_end(&lexed.tokens, start)?;
    Some((lexed.tokens[start].line, lexed.tokens[end].line))
}

/// Lines covered by `#[cfg(test)]` (or any `cfg` attribute mentioning
/// `test`) items, including nested attribute lines.
fn cfg_test_lines(lexed: &LexFile) -> BTreeSet<u32> {
    let toks = &lexed.tokens;
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if is_punct(&toks[i], "#") && is_punct(&toks[i + 1], "[") {
            let Some(close) = match_delim(toks, i + 1) else { break };
            let attr = &toks[i + 1..close];
            let is_test =
                attr.iter().any(|t| is_ident(t, "cfg")) && attr.iter().any(|t| is_ident(t, "test"));
            if is_test {
                // Skip any further attributes between this one and the item.
                let mut start = close + 1;
                while start + 1 < toks.len()
                    && is_punct(&toks[start], "#")
                    && is_punct(&toks[start + 1], "[")
                {
                    match match_delim(toks, start + 1) {
                        Some(c) => start = c + 1,
                        None => break,
                    }
                }
                if let Some(end) = item_end(toks, start) {
                    for l in toks[i].line..=toks[end].line {
                        out.insert(l);
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Line on which the statement containing token `idx` begins: walk
/// backwards to the nearest `;`, `{` or `}` and take the next token's
/// line.
fn stmt_start_line(toks: &[Tok], idx: usize) -> u32 {
    let mut j = idx;
    while j > 0 {
        let t = &toks[j - 1];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        j -= 1;
    }
    toks[j].line
}

/// True if a justification comment containing one of `needles` sits
/// adjacent to token `idx`: on any line of its statement, or in the
/// contiguous comment/attribute block directly above the statement
/// (single-line `unsafe impl`s in between do not break contiguity, so
/// one comment can cover a `Send`/`Sync` pair).
fn justified(lexed: &LexFile, idx: usize, needles: &[&str]) -> bool {
    let toks = &lexed.tokens;
    let start_line = stmt_start_line(toks, idx);
    let tok_line = toks[idx].line;
    let comment_on = |l: u32| {
        lexed.comments.iter().filter(move |c| c.line <= l && l <= c.end_line).map(|c| &c.text)
    };
    let hit = |l: u32| comment_on(l).any(|t| needles.iter().any(|n| t.contains(n)));
    for l in start_line..=tok_line {
        if hit(l) {
            return true;
        }
    }
    let mut l = start_line.saturating_sub(1);
    while l >= 1 {
        if hit(l) {
            return true;
        }
        if comment_on(l).next().is_some() {
            // A comment without the needle: keep scanning the block.
        } else if lexed.line_has_code(l) {
            // Attribute lines and one-line `unsafe impl`s don't end the
            // adjacency scan; any other code does.
            let mut line_toks = toks.iter().filter(|t| t.line == l);
            let first = line_toks.next();
            let second = line_toks.next();
            let is_attr = first.map(|t| is_punct(t, "#")).unwrap_or(false);
            let is_unsafe_impl = first.map(|t| is_ident(t, "unsafe")).unwrap_or(false)
                && second.map(|t| is_ident(t, "impl")).unwrap_or(false);
            if !is_attr && !is_unsafe_impl {
                return false;
            }
        } else {
            // Blank line: the comment block above (if any) is not adjacent.
            return false;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const SAFETY_NEEDLES: &[&str] = &["SAFETY:", "# Safety", "# SAFETY"];

fn rule_undocumented_unsafe(lexed: &LexFile, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if is_ident(n, "fn") || is_ident(n, "extern") => "fn",
            Some(n) if is_ident(n, "impl") => "impl",
            Some(n) if is_ident(n, "trait") => "trait",
            Some(n) if is_punct(n, "{") => "block",
            _ => "block",
        };
        if !justified(lexed, i, SAFETY_NEEDLES) {
            out.push(Diagnostic {
                line: t.line,
                rule: "undocumented-unsafe",
                message: format!(
                    "unsafe {kind} without an adjacent `// SAFETY:` comment{}",
                    if kind == "fn" { " or `# Safety` doc section" } else { "" }
                ),
            });
        }
    }
}

fn rule_atomic_ordering(lexed: &LexFile, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Only `Ordering::X` paths count: a bare `Release` ident could be
        // any enum's variant.
        let is_ordering_path =
            i >= 2 && is_punct(&toks[i - 1], "::") && is_ident(&toks[i - 2], "Ordering");
        if !is_ordering_path {
            continue;
        }
        match t.text.as_str() {
            "Relaxed" => {}
            "SeqCst" => out.push(Diagnostic {
                line: t.line,
                rule: "atomic-ordering",
                message: "Ordering::SeqCst is deny-by-default: downgrade to \
                          Acquire/Release/Relaxed or add `// fmm-check: \
                          allow(atomic-ordering, reason = ...)` explaining why \
                          total order is load-bearing"
                    .to_string(),
            }),
            "Acquire" | "Release" | "AcqRel" if !justified(lexed, i, &["ORDERING:"]) => {
                out.push(Diagnostic {
                    line: t.line,
                    rule: "atomic-ordering",
                    message: format!(
                        "Ordering::{} without an adjacent `// ORDERING:` \
                         comment justifying the non-Relaxed ordering",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

/// Keywords that may legally precede a `[` without it being an index
/// expression (slice patterns, array types after `->`, …).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "match", "if", "else", "move", "as", "dyn", "where",
    "break", "const", "static", "type", "impl", "for", "fn",
];

fn rule_deny_panic(
    lexed: &LexFile,
    pragmas: &Pragmas,
    test_lines: &TestLines,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !pragmas.in_contract(Contract::PanicFree, t.line) || test_lines.contains(t.line) {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).map(|n| is_punct(n, s)).unwrap_or(false);
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" if next_is("(") => out.push(Diagnostic {
                    line: t.line,
                    rule: "deny-panic",
                    message: format!(
                        "`{}()` in a contract(panic-free) region — propagate the \
                         error or handle the None/Err case",
                        t.text
                    ),
                }),
                "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => {
                    out.push(Diagnostic {
                        line: t.line,
                        rule: "deny-panic",
                        message: format!("`{}!` in a contract(panic-free) region", t.text),
                    })
                }
                _ => {}
            }
        } else if is_punct(t, "[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text.as_str()),
                TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                out.push(Diagnostic {
                    line: t.line,
                    rule: "deny-panic",
                    message: "`[...]` indexing in a contract(panic-free) region — \
                              use `.get(..)` or justify bounds with an allow pragma"
                        .to_string(),
                });
            }
        }
    }
}

/// `Type::method` pairs that allocate.
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("Box", &["new", "new_uninit", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Arc", &["new", "from"]),
    ("Rc", &["new", "from"]),
    ("CString", &["new"]),
];

/// Method calls that allocate (flagged when called with `.`).
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "into_boxed_slice"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn rule_deny_alloc(
    lexed: &LexFile,
    pragmas: &Pragmas,
    test_lines: &TestLines,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !pragmas.in_contract(Contract::WarmAllocFree, t.line)
            || test_lines.contains(t.line)
        {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).map(|n| is_punct(n, s)).unwrap_or(false);
        let prev_is = |s: &str| i > 0 && is_punct(&toks[i - 1], s);
        if ALLOC_MACROS.contains(&t.text.as_str()) && next_is("!") {
            out.push(Diagnostic {
                line: t.line,
                rule: "deny-alloc",
                message: format!("`{}!` allocates in a contract(warm-alloc-free) region", t.text),
            });
        } else if ALLOC_METHODS.contains(&t.text.as_str()) && next_is("(") && prev_is(".") {
            out.push(Diagnostic {
                line: t.line,
                rule: "deny-alloc",
                message: format!("`.{}()` allocates in a contract(warm-alloc-free) region", t.text),
            });
        } else if next_is("(") && i >= 2 && is_punct(&toks[i - 1], "::") {
            // Resolve the path's base type, skipping a turbofish:
            // `Vec::new`, `Vec::<u8>::new`, `Box::<T>::new`.
            let mut j = i - 2;
            if is_punct(&toks[j], ">") {
                let mut depth = 0i64;
                loop {
                    if is_punct(&toks[j], ">") {
                        depth += 1;
                    } else if is_punct(&toks[j], "<") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                // Step over the `<` and an optional `::` before it.
                j = j.saturating_sub(1);
                if j > 0 && is_punct(&toks[j], "::") {
                    j -= 1;
                }
            }
            let ty = if toks[j].kind == TokKind::Ident { toks[j].text.as_str() } else { "" };
            if ALLOC_PATHS.iter().any(|(t2, ms)| *t2 == ty && ms.contains(&t.text.as_str())) {
                out.push(Diagnostic {
                    line: t.line,
                    rule: "deny-alloc",
                    message: format!(
                        "`{ty}::{}` allocates in a contract(warm-alloc-free) region",
                        t.text
                    ),
                });
            }
        }
    }
}

fn rule_ffi_layout(lexed: &LexFile, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    // Does the file carry a layout guard? `const _ : ... assert! ...
    // size_of/align_of ...` anywhere suffices.
    let mut has_guard = false;
    for (i, t) in toks.iter().enumerate() {
        if is_ident(t, "const")
            && toks.get(i + 1).map(|n| is_ident(n, "_")).unwrap_or(false)
            && toks.get(i + 2).map(|n| is_punct(n, ":")).unwrap_or(false)
        {
            if let Some(end) = item_end(toks, i) {
                let body = &toks[i..=end];
                let has = |s: &str| body.iter().any(|b| is_ident(b, s));
                if has("assert") && (has("size_of") || has("align_of")) {
                    has_guard = true;
                    break;
                }
            }
        }
    }
    let mut sites: Vec<(u32, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // `extern "ABI" {` — a foreign-function block.
        if is_ident(t, "extern") {
            let mut j = i + 1;
            if toks.get(j).map(|n| n.kind == TokKind::Str).unwrap_or(false) {
                j += 1;
            }
            if toks.get(j).map(|n| is_punct(n, "{")).unwrap_or(false) {
                sites.push((t.line, "extern block".to_string()));
            }
        }
        // `#[repr(C…)]`.
        if is_punct(t, "#") && toks.get(i + 1).map(|n| is_punct(n, "[")).unwrap_or(false) {
            if let Some(close) = match_delim(toks, i + 1) {
                let attr = &toks[i + 1..close];
                if attr.iter().any(|a| is_ident(a, "repr")) && attr.iter().any(|a| is_ident(a, "C"))
                {
                    sites.push((t.line, "#[repr(C)] type".to_string()));
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    if !has_guard {
        for (line, what) in sites {
            out.push(Diagnostic {
                line,
                rule: "ffi-layout",
                message: format!(
                    "{what} in a file without a compile-time layout guard \
                     (`const _: () = assert!(size_of::<...>() == ...);`)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check_source(src, false).diagnostics
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        diags(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn documented_unsafe_block_passes() {
        let src = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { g() }\n}";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn undocumented_unsafe_block_fires() {
        let src = "fn f() {\n    unsafe { g() }\n}";
        assert_eq!(rules_of(src), ["undocumented-unsafe"]);
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn one_safety_comment_covers_send_sync_pair() {
        let src =
            "// SAFETY: plain integers.\nunsafe impl Send for W {}\nunsafe impl Sync for W {}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale comment.\n\nfn f() {\n    unsafe { g() }\n}";
        assert_eq!(rules_of(src), ["undocumented-unsafe"]);
    }

    #[test]
    fn unsafe_in_raw_string_is_ignored() {
        let src = r####"fn f() { let _ = r#"unsafe { x }"#; }"####;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn seqcst_fires_even_with_ordering_comment() {
        let src = "fn f(a: &AtomicBool) {\n    // ORDERING: we like it strong.\n    a.store(true, Ordering::SeqCst);\n}";
        assert_eq!(rules_of(src), ["atomic-ordering"]);
    }

    #[test]
    fn acquire_needs_ordering_comment() {
        let bad = "fn f(a: &AtomicBool) -> bool {\n    a.load(Ordering::Acquire)\n}";
        assert_eq!(rules_of(bad), ["atomic-ordering"]);
        let good = "fn f(a: &AtomicBool) -> bool {\n    // ORDERING: pairs with the Release store in push().\n    a.load(Ordering::Acquire)\n}";
        assert!(diags(good).is_empty());
    }

    #[test]
    fn relaxed_is_always_fine() {
        let src = "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn non_ordering_release_ident_is_ignored() {
        let src = "fn f() { let p = Profile::Release; }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn deny_panic_fires_only_in_contract_region() {
        let free = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(diags(free).is_empty());
        let src = "// fmm-check: contract(panic-free)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_of(src), ["deny-panic"]);
    }

    #[test]
    fn deny_panic_catches_indexing_not_array_types() {
        let src = "// fmm-check: contract(panic-free)\nfn f(b: &[u8; 4], i: usize) -> u8 { b[i] }";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("indexing"));
    }

    #[test]
    fn deny_panic_skips_cfg_test_regions() {
        let src = "// fmm-check: contract(panic-free)\nfn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn item_scoped_contract_covers_only_that_item() {
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\n// fmm-check: contract(panic-free)\nfn b(x: Option<u8>) -> u8 { x.unwrap() }";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn deny_alloc_fires_on_listed_constructors() {
        let src = "// fmm-check: contract(warm-alloc-free)\nfn f() {\n    let v = Vec::<u8>::new();\n    let b = Box::new(3);\n    let s = format!(\"x\");\n    let t = s.to_string();\n}";
        let d = diags(src);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "deny-alloc"));
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts() {
        let src = "// fmm-check: contract(panic-free)\nfn f(x: Option<u8>) -> u8 {\n    // fmm-check: allow(deny-panic, reason = \"invariant: caller checked\")\n    x.unwrap()\n}";
        let r = check_source(src, false);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_bad_pragma_and_does_not_suppress() {
        let src = "// fmm-check: contract(panic-free)\nfn f(x: Option<u8>) -> u8 {\n    // fmm-check: allow(deny-panic)\n    x.unwrap()\n}";
        let r = check_source(src, false);
        let rules: Vec<_> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"deny-panic"), "{rules:?}");
        assert!(rules.contains(&"bad-pragma"));
        assert!(r.suppressed.is_empty());
    }

    #[test]
    fn extern_block_without_guard_fires() {
        let src = "extern \"C\" {\n    fn close(fd: i32) -> i32;\n}";
        assert_eq!(rules_of(src), ["ffi-layout"]);
    }

    #[test]
    fn repr_c_with_guard_passes() {
        let src = "#[repr(C)]\npub struct E { a: u32, b: u64 }\nconst _: () = assert!(std::mem::size_of::<E>() == 16);";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn all_test_files_skip_contract_rules() {
        let src = "// fmm-check: contract(panic-free)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(check_source(src, true).diagnostics.is_empty());
    }
}
