//! `fmm-check`: a std-only, dependency-free static-analysis pass over
//! the workspace's own Rust sources.
//!
//! The serving stack's three classic sources of silent wrongness —
//! hand-written SIMD/FFI `unsafe`, lock-free atomics, and prose-only
//! contracts ("panic-free", "the warm path allocates nothing") — are
//! turned into machine-checked invariants:
//!
//! * [`rules`] documents and implements the five rules;
//! * [`pragma`] documents the `// fmm-check: allow(...)` /
//!   `// fmm-check: contract(...)` suppression and opt-in syntax;
//! * [`lexer`] is the lossless tokenizer underneath (comments, raw
//!   strings, char literals, `#[cfg(test)]` regions).
//!
//! Run it as `cargo run -p fmm-check --release -- --workspace`; CI
//! treats any diagnostic as a hard failure.

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scan;

use rules::FileReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Result of checking a set of files.
#[derive(Debug, Default)]
pub struct RunReport {
    /// `(path, report)` for every file with findings or suppressions.
    pub files: Vec<(PathBuf, FileReport)>,
    /// Total files scanned.
    pub scanned: usize,
}

impl RunReport {
    /// Total diagnostics that fail the run.
    pub fn failures(&self) -> usize {
        self.files.iter().map(|(_, r)| r.diagnostics.len()).sum()
    }

    /// `file:line rule message` lines, ready to print.
    pub fn diagnostic_lines(&self, root: &Path) -> Vec<String> {
        let mut out = Vec::new();
        for (path, report) in &self.files {
            let rel = path.strip_prefix(root).unwrap_or(path);
            for d in &report.diagnostics {
                out.push(format!("{}:{} {} {}", rel.display(), d.line, d.rule, d.message));
            }
        }
        out
    }

    /// Per-rule `(fired, allowed)` counts, every known rule included.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> =
            rules::RULE_NAMES.iter().map(|r| (*r, (0, 0))).collect();
        for (_, report) in &self.files {
            for d in &report.diagnostics {
                counts.entry(d.rule).or_insert((0, 0)).0 += 1;
            }
            for d in &report.suppressed {
                counts.entry(d.rule).or_insert((0, 0)).1 += 1;
            }
        }
        counts
    }

    /// The rule summary table CI prints.
    pub fn summary_table(&self) -> String {
        let counts = self.rule_counts();
        let mut out = String::new();
        let _ = writeln!(out, "{:<22} {:>6} {:>8}", "rule", "fired", "allowed");
        for (rule, (fired, allowed)) in counts {
            let _ = writeln!(out, "{rule:<22} {fired:>6} {allowed:>8}");
        }
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>8}   ({} files scanned)",
            "total",
            self.files.iter().map(|(_, r)| r.diagnostics.len()).sum::<usize>(),
            self.files.iter().map(|(_, r)| r.suppressed.len()).sum::<usize>(),
            self.scanned
        );
        out
    }
}

/// Check the given files.
pub fn run(files: &[scan::SourceFile]) -> RunReport {
    let mut out = RunReport { files: Vec::new(), scanned: files.len() };
    for f in files {
        let src = match std::fs::read_to_string(&f.path) {
            Ok(s) => s,
            Err(e) => {
                let report = FileReport {
                    diagnostics: vec![rules::Diagnostic {
                        line: 0,
                        rule: "bad-pragma",
                        message: format!("unreadable source file: {e}"),
                    }],
                    suppressed: Vec::new(),
                };
                out.files.push((f.path.clone(), report));
                continue;
            }
        };
        let report = rules::check_source(&src, f.all_test);
        if !report.diagnostics.is_empty() || !report.suppressed.is_empty() {
            out.files.push((f.path.clone(), report));
        }
    }
    out
}
