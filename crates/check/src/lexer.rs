//! A small lossless Rust lexer.
//!
//! `fmm-check` needs exactly enough lexical fidelity to never mistake the
//! contents of a comment or string literal for code (and vice versa):
//! line comments, nested block comments, doc comments, raw strings with
//! arbitrary `#` fences, byte and raw-byte strings, char literals vs
//! lifetimes, and raw identifiers. Tokens carry their 1-based line so
//! rules can reason about adjacency ("is there a `// SAFETY:` comment
//! directly above this `unsafe`?") without a full parse.

/// Kind of a lexed token. Comments are not tokens — they are collected
/// separately in [`LexFile::comments`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, with the `r#`
    /// prefix stripped).
    Ident,
    /// Lifetime (`'a`, `'static`), including the quote.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation. `::` is a single token; everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with its 1-based line span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// First line of the comment.
    pub line: u32,
    /// Last line of the comment (equal to `line` for line comments).
    pub end_line: u32,
    /// True if code tokens precede the comment on its starting line.
    pub trailing: bool,
}

/// Lexed file: token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct LexFile {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl LexFile {
    /// Line number of the first token, if any.
    pub fn first_code_line(&self) -> Option<u32> {
        self.tokens.first().map(|t| t.line)
    }

    /// Line of the first token strictly after `line`, if any.
    pub fn next_code_line_after(&self, line: u32) -> Option<u32> {
        self.tokens.iter().find(|t| t.line > line).map(|t| t.line)
    }

    /// True if any token sits on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs consume the rest of the input, which is the useful
/// behaviour for a diagnostics tool.
pub fn lex(src: &str) -> LexFile {
    let b = src.as_bytes();
    let mut out = LexFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether the current source line has produced a token yet,
    // so comments can be classified as trailing or standalone.
    let mut line_of_last_tok: u32 = 0;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                    trailing: line_of_last_tok == line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    end_line: line,
                    trailing: line_of_last_tok == start_line,
                });
            }
            b'r' | b'b' if starts_rawish_literal(b, i) => {
                let (tok, ni, nl) = lex_rawish(src, i, line);
                line_of_last_tok = tok.line;
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'"' => {
                let (tok, ni, nl) = lex_string(src, i, line, TokKind::Str);
                line_of_last_tok = tok.line;
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (tok, ni, nl) = lex_quote(src, i, line);
                line_of_last_tok = tok.line;
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                line_of_last_tok = line;
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'_' || d == b'.' || d.is_ascii_alphanumeric() {
                        // Exponent sign: `1e-3` / `1E+5`.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
                line_of_last_tok = line;
                out.tokens.push(Tok { kind: TokKind::Num, text: src[start..i].to_string(), line });
            }
            b':' if i + 1 < b.len() && b[i + 1] == b':' => {
                line_of_last_tok = line;
                out.tokens.push(Tok { kind: TokKind::Punct, text: "::".to_string(), line });
                i += 2;
            }
            _ => {
                line_of_last_tok = line;
                out.tokens.push(Tok { kind: TokKind::Punct, text: (c as char).to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` starts a raw string, byte string, raw byte
/// string, byte char, or raw identifier — anything beginning `r`/`b`
/// that must not be lexed as a plain identifier.
fn starts_rawish_literal(b: &[u8], i: usize) -> bool {
    // Preceded by an identifier character → `i` is mid-identifier
    // (e.g. the `r` in `var"` cannot happen, but `xr"..."` could).
    if i > 0 && (b[i - 1] == b'_' || b[i - 1].is_ascii_alphanumeric()) {
        return false;
    }
    let rest = &b[i..];
    match rest {
        [b'r', b'"', ..] | [b'b', b'"', ..] | [b'b', b'\'', ..] => true,
        [b'r', b'#', ..] => true, // raw string `r#"` or raw ident `r#ident`
        [b'b', b'r', b'"', ..] | [b'b', b'r', b'#', ..] => true,
        _ => false,
    }
}

/// Lex a construct starting with `r`/`b`: raw strings, byte strings,
/// byte chars, raw identifiers.
fn lex_rawish(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    // Raw identifier: `r#` followed by an identifier character.
    if b[i] == b'r'
        && i + 2 < b.len()
        && b[i + 1] == b'#'
        && (b[i + 2] == b'_' || b[i + 2].is_ascii_alphabetic())
    {
        let mut j = i + 2;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        return (Tok { kind: TokKind::Ident, text: src[i + 2..j].to_string(), line }, j, line);
    }
    // Byte char: `b'…'`.
    if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
        let (mut tok, ni, nl) = lex_quote(src, i + 1, line);
        tok.text.insert(0, 'b');
        return (tok, ni, nl);
    }
    // Skip the `b`/`r`/`br` prefix to the `"` or `#` fence.
    let mut j = i;
    while j < b.len() && (b[j] == b'b' || b[j] == b'r') {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        // `r#` not followed by `"`: treat the prefix as punctuation-ish
        // identifier and move on (malformed source).
        return (Tok { kind: TokKind::Ident, text: src[i..j].to_string(), line }, j, line);
    }
    if hashes == 0 && b[i] == b'b' && b[i + 1] == b'"' {
        // Plain byte string `b"…"`: escapes apply.
        let (tok, ni, nl) = lex_string(src, i + 1, line, TokKind::Str);
        return (tok, ni, nl);
    }
    // Raw (byte) string: no escapes; ends at `"` followed by `hashes` #s.
    j += 1; // past the opening quote
    let mut l = line;
    while j < b.len() {
        if b[j] == b'\n' {
            l += 1;
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (Tok { kind: TokKind::Str, text: src[i..k].to_string(), line }, k, l);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (Tok { kind: TokKind::Str, text: src[i..].to_string(), line }, b.len(), l)
}

/// Lex a `"`-delimited string with escape handling, starting at the
/// opening quote.
fn lex_string(src: &str, i: usize, line: u32, kind: TokKind) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    let mut j = i + 1;
    let mut l = line;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                l += 1;
                j += 1;
            }
            b'"' => {
                j += 1;
                return (Tok { kind, text: src[start..j].to_string(), line }, j, l);
            }
            _ => j += 1,
        }
    }
    (Tok { kind, text: src[start..].to_string(), line }, b.len(), l)
}

/// Lex from a `'`: either a char literal or a lifetime.
fn lex_quote(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    // Escaped char literal: `'\…'`.
    if i + 1 < b.len() && b[i + 1] == b'\\' {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += if b[j] == b'\\' { 2 } else { 1 };
        }
        let end = (j + 1).min(b.len());
        return (Tok { kind: TokKind::Char, text: src[i..end].to_string(), line }, end, line);
    }
    // `'x'` (any single char, incl. `'''`? no — that's malformed; `'\''` is
    // handled above): char literal iff the char after next is `'`.
    if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
        return (Tok { kind: TokKind::Char, text: src[i..i + 3].to_string(), line }, i + 3, line);
    }
    // Lifetime: `'` + identifier.
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    (Tok { kind: TokKind::Lifetime, text: src[i..j].to_string(), line }, j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn raw_string_containing_unsafe_is_not_code() {
        let src = r####"let s = r#"unsafe { Ordering::SeqCst }"#; let t = s;"####;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(!ids.contains(&"SeqCst".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unsafe"));
        let ids: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Ident).map(|t| &t.text).collect();
        assert_eq!(ids, ["fn", "f"]);
    }

    #[test]
    fn line_comment_marker_inside_string_literal_is_data() {
        let src = "let url = \"http://example.com\"; unsafe { x() }";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "// inside a string is not a comment");
        assert!(lexed.tokens.iter().any(|t| t.text == "unsafe"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "he said \"unsafe\""; let x = 1;"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn quote_comment_quote_is_char_literal() {
        // `'//'` must not start a comment.
        let src = "let c = '/'; // real comment";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].text, "// real comment");
    }

    #[test]
    fn byte_and_raw_byte_strings_are_literals() {
        let src = r###"let a = b"unsafe"; let b = br#"SeqCst"#; let c = b'u';"###;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"SeqCst".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "let r#unsafe = 1;";
        let ids = idents(src);
        assert!(ids.contains(&"unsafe".to_string()), "raw ident text is kept (marker stripped)");
    }

    #[test]
    fn multiline_raw_string_tracks_lines() {
        let src = "let s = r\"line1\nline2\nline3\";\nfn f() {}";
        let lexed = lex(src);
        let f = lexed.tokens.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let lexed = lex(src);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// # Safety\n/// caller checks bounds\nunsafe fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens[0].text, "unsafe");
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn double_colon_is_one_token() {
        let src = "Ordering::SeqCst";
        let lexed = lex(src);
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Ordering", "::", "SeqCst"]);
    }
}
