//! Known-bad fixture: heap allocations inside a
//! `contract(warm-alloc-free)` file.
//! Expected: `deny-alloc` fires 4 times (Vec::new, vec!, .collect, format!).

// fmm-check: contract(warm-alloc-free)

pub fn warm_path(samples: &[u64]) -> (Vec<u64>, String) {
    let mut out: Vec<u64> = Vec::new();
    out.extend(vec![0u64; 4]);
    let doubled: Vec<u64> = samples.iter().map(|s| s * 2).collect();
    let label = format!("{} samples", doubled.len());
    (doubled, label)
}
