//! Known-bad fixture: a SeqCst (always denied, even with an ORDERING
//! comment) and an Acquire without an ORDERING comment.
//! Expected: `atomic-ordering` fires 2 times, lines 8 and 12.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn stop(flag: &AtomicBool) {
    // ORDERING: comments do not excuse SeqCst.
    flag.store(true, Ordering::SeqCst);
}

pub fn stopped(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
