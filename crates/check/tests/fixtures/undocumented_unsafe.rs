//! Known-bad fixture: every flavor of `unsafe` without a SAFETY comment.
//! Expected: `undocumented-unsafe` fires 4 times (fn, impl, trait, block).

pub unsafe fn missing_doc(p: *const u8) -> u8 {
    // SAFETY: the read itself is documented; the `unsafe fn` above is not.
    unsafe { *p }
}

pub struct W(u64);

unsafe impl Send for W {}

pub unsafe trait Marker {}

pub fn block_site(p: *const u8) -> u8 {
    unsafe { *p }
}
