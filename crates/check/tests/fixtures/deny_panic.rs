//! Known-bad fixture: panics inside a `contract(panic-free)` file.
//! Expected: `deny-panic` fires 4 times (unwrap, expect, panic!, indexing).

// fmm-check: contract(panic-free)

pub fn decode(bytes: &[u8], len: Option<usize>) -> u8 {
    let n = len.unwrap();
    let first = bytes.first().copied().expect("non-empty");
    if n > bytes.len() {
        panic!("length out of range");
    }
    first + bytes[n - 1]
}
