//! Clean fixture: the same violations as the known-bad files, each
//! suppressed by a well-formed `allow(..., reason = ...)` pragma.
//! Expected: zero diagnostics, 3 suppressed findings.

// fmm-check: contract(panic-free)
// fmm-check: contract(warm-alloc-free)

pub fn justified(bytes: &[u8], scratch: &mut Vec<u8>) -> u8 {
    // fmm-check: allow(deny-panic, reason = "caller validates non-empty input in decode()")
    let first = bytes[0];
    // fmm-check: allow(deny-alloc, reason = "one-time cold-path growth, reused afterwards")
    scratch.extend(bytes.to_vec());
    first
}

use std::sync::atomic::{AtomicBool, Ordering};

pub fn total_order(flag: &AtomicBool) {
    // fmm-check: allow(atomic-ordering, reason = "single-writer handoff audited in fixture form")
    flag.store(true, Ordering::SeqCst);
}
