//! Known-bad fixture: FFI surface without a compile-time layout guard.
//! Expected: `ffi-layout` fires 2 times (repr(C) type, extern block).

#[repr(C)]
pub struct WireHeader {
    pub magic: u32,
    pub len: u64,
}

extern "C" {
    pub fn close(fd: i32) -> i32;
}
