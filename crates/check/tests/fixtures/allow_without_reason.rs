//! Known-bad fixture: an `allow` pragma with no `reason` must not
//! suppress anything and must itself be reported.
//! Expected: `deny-panic` still fires, plus `bad-pragma`; zero suppressed.

// fmm-check: contract(panic-free)

pub fn unjustified(len: Option<usize>) -> usize {
    // fmm-check: allow(deny-panic)
    len.unwrap()
}
