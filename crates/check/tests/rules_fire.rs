//! End-to-end rule checks over the deliberately-bad sources in
//! `tests/fixtures/`. The fixtures directory is excluded from workspace
//! and `--self` scans (see `scan::collect`), so these files can violate
//! every rule without failing the real gate; here each one is fed
//! through `check_source` the way the CLI does it and must produce
//! exactly the findings its header comment promises.

use fmm_check::rules::{check_source, Diagnostic, FileReport};
use std::path::Path;

fn check_fixture(name: &str) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    // `all_test = false`: fixtures model production sources, and the
    // fixtures dir is exempt from the path-based test classification.
    check_source(&src, false)
}

fn rules_of(report: &FileReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn undocumented_unsafe_fixture_fires_per_site() {
    let r = check_fixture("undocumented_unsafe.rs");
    assert_eq!(rules_of(&r), vec!["undocumented-unsafe"; 4], "{:?}", r.diagnostics);
    // fn, impl, trait, block — one finding per site, none suppressed.
    assert_eq!(lines_of(&r.diagnostics, "undocumented-unsafe"), [4, 11, 13, 16]);
    assert!(r.suppressed.is_empty());
}

#[test]
fn atomic_ordering_fixture_fires_on_seqcst_and_bare_acquire() {
    let r = check_fixture("atomic_ordering.rs");
    assert_eq!(rules_of(&r), vec!["atomic-ordering"; 2], "{:?}", r.diagnostics);
    let lines = lines_of(&r.diagnostics, "atomic-ordering");
    assert_eq!(lines, [9, 13]);
    // The SeqCst finding must fire despite the adjacent ORDERING comment.
    assert!(r.diagnostics[0].message.contains("SeqCst"));
    assert!(r.diagnostics[1].message.contains("Acquire"));
}

#[test]
fn deny_panic_fixture_fires_per_panic_site() {
    let r = check_fixture("deny_panic.rs");
    assert_eq!(rules_of(&r), vec!["deny-panic"; 4], "{:?}", r.diagnostics);
    let msgs: Vec<&str> = r.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs[0].contains("unwrap"));
    assert!(msgs[1].contains("expect"));
    assert!(msgs[2].contains("panic!"));
    assert!(msgs[3].contains("indexing"));
}

#[test]
fn deny_alloc_fixture_fires_per_allocation() {
    let r = check_fixture("deny_alloc.rs");
    assert_eq!(rules_of(&r), vec!["deny-alloc"; 4], "{:?}", r.diagnostics);
    let msgs: Vec<&str> = r.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs[0].contains("Vec::new"));
    assert!(msgs[1].contains("vec!"));
    assert!(msgs[2].contains("collect"));
    assert!(msgs[3].contains("format!"));
}

#[test]
fn ffi_layout_fixture_fires_without_guard() {
    let r = check_fixture("ffi_layout.rs");
    assert_eq!(rules_of(&r), vec!["ffi-layout"; 2], "{:?}", r.diagnostics);
    assert!(r.diagnostics[0].message.contains("repr(C)"));
    assert!(r.diagnostics[1].message.contains("extern block"));
}

#[test]
fn allow_with_reason_suppresses_everything() {
    let r = check_fixture("allow_with_reason.rs");
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    let mut suppressed: Vec<&str> = r.suppressed.iter().map(|d| d.rule).collect();
    suppressed.sort_unstable();
    assert_eq!(suppressed, ["atomic-ordering", "deny-alloc", "deny-panic"]);
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let r = check_fixture("allow_without_reason.rs");
    let rules = rules_of(&r);
    assert!(rules.contains(&"deny-panic"), "{rules:?}");
    assert!(rules.contains(&"bad-pragma"), "{rules:?}");
    assert!(r.suppressed.is_empty(), "a reasonless allow must count for nothing");
}
