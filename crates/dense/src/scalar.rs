//! The scalar abstraction the whole execution stack is generic over.
//!
//! The paper builds its algorithm families on the precision-generic BLIS
//! framework; [`Scalar`] is this reproduction's equivalent seam. Everything
//! from the packing routines up through `fmm::multiply` is parameterized by
//! a `Scalar` type, with `f64` (the paper's DGEMM experiments) and `f32`
//! (the SGEMM variants Benson & Ballard also report) implemented here.
//!
//! The trait deliberately stays small: the constants and operations the
//! micro-kernels, executors, and accuracy checks actually need, plus a
//! precision-derived error bound ([`Scalar::accuracy_bound`]) so tests can
//! hold every dtype to a tolerance scaled from its machine epsilon rather
//! than a hard-wired `f64` constant.

/// A floating-point element type the FMM stack can execute over.
///
/// Implemented for `f64` and `f32`. The supertraits cover what strided
/// views, packing buffers, and test assertions need; the inherent items
/// cover arithmetic (`mul_add`, `abs`), conversion to/from the `f64`
/// coefficient domain (plan coefficients `U`, `V`, `W` stay `f64` and are
/// narrowed at the execution boundary), and the dtype metadata used for
/// kernel selection and model costs.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this type, widened to `f64` so error bounds can
    /// be computed in one precision regardless of `Self`.
    const EPSILON: f64;
    /// Lanes of this type per 256-bit SIMD vector — the width hint kernel
    /// register tiles are sized from (4 for `f64`, 8 for `f32`).
    const SIMD_WIDTH_HINT: usize;
    /// Display name of the dtype (`"f64"`, `"f32"`).
    const NAME: &'static str;

    /// Narrow an `f64` coefficient into this type.
    fn from_f64(v: f64) -> Self;
    /// Widen into `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Multiply–add `self * a + b`, the scalar contract reductions and
    /// kernel fallbacks build on. Implementations are the plain two-op
    /// form (contraction into a hardware FMA is left to the compiler, so
    /// hosts without FMA never pay for a libm call in a hot loop).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum.
    fn max(self, other: Self) -> Self;

    /// Relative-error tolerance for accepting an `levels`-level FMM product
    /// with inner dimension `k` and entries of magnitude ~1, derived from
    /// this type's [`Scalar::EPSILON`].
    ///
    /// Strassen-like algorithms lose roughly a constant number of bits per
    /// recursion level; the bound is loose enough for every registry
    /// algorithm (wrong coefficients produce O(1) errors, far above it)
    /// while scaling with the precision actually in use — the `f32` path
    /// is held to a correspondingly wider but still meaningful bound.
    fn accuracy_bound(k: usize, levels: usize) -> f64 {
        let growth = 12.0_f64.powi(levels as i32).max(1.0);
        Self::EPSILON * 100.0 * growth * (k.max(2) as f64).sqrt()
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f64::EPSILON;
    const SIMD_WIDTH_HINT: usize = 4;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f32::EPSILON as f64;
    const SIMD_WIDTH_HINT: usize = 8;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_and_conversion_roundtrip() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f32::from_f64(0.5).to_f64(), 0.5);
        assert_eq!(f64::from_f64(-3.25), -3.25);
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::NAME, "f64");
    }

    #[test]
    fn simd_hint_doubles_for_f32() {
        assert_eq!(f32::SIMD_WIDTH_HINT, 2 * f64::SIMD_WIDTH_HINT);
    }

    #[test]
    fn mul_add_and_abs() {
        assert_eq!(Scalar::mul_add(2.0_f64, 3.0, 1.0), 7.0);
        assert_eq!(Scalar::mul_add(2.0_f32, 3.0, 1.0), 7.0);
        assert_eq!(Scalar::abs(-4.0_f32), 4.0);
        assert_eq!(Scalar::max(-1.0_f64, 2.0), 2.0);
    }

    #[test]
    fn accuracy_bound_scales_with_epsilon() {
        let b64 = <f64 as Scalar>::accuracy_bound(1000, 1);
        let b32 = <f32 as Scalar>::accuracy_bound(1000, 1);
        assert!(b32 > b64 * 1e8, "f32 bound reflects its wider epsilon");
        assert!(b32 < 0.1, "but stays meaningful: O(1) bugs are caught");
        assert!(<f64 as Scalar>::accuracy_bound(1000, 2) > b64);
    }
}
