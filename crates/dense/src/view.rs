//! Borrowed strided matrix views.
//!
//! Strassen-like algorithms slice the operands into grids of submatrices and
//! take many simultaneous views into the same allocation. [`MatRef`] and
//! [`MatMut`] are thin `(ptr, rows, cols, row_stride, col_stride)` tuples so
//! that partitioning is O(1) and copy-free. Column-major storage corresponds
//! to `rs == 1`, `cs == leading_dim`, but arbitrary strides are supported
//! (transpose is a stride swap).

use crate::scalar::Scalar;
use std::marker::PhantomData;

/// Immutable strided view of a matrix of `T` (default `f64`).
#[derive(Debug)]
pub struct MatRef<'a, T = f64> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    rs: isize,
    cs: isize,
    _marker: PhantomData<&'a T>,
}

impl<T> Clone for MatRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for MatRef<'_, T> {}

// SAFETY: a `MatRef` only permits reads of the underlying scalar data, which
// is `Sync`; sharing the view across threads is as safe as sharing `&[T]`.
unsafe impl<T: Scalar> Send for MatRef<'_, T> {}
unsafe impl<T: Scalar> Sync for MatRef<'_, T> {}

/// Mutable strided view of a matrix of `T` (default `f64`).
#[derive(Debug)]
pub struct MatMut<'a, T = f64> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    rs: isize,
    cs: isize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: `MatMut` is an exclusive view (it is not `Copy`/`Clone`), so moving
// it to another thread moves exclusive access, like `&mut [T]`.
unsafe impl<T: Scalar> Send for MatMut<'_, T> {}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Build a view from raw parts.
    ///
    /// # Safety
    /// For all `i < rows`, `j < cols`, `ptr.offset(i*rs + j*cs)` must be
    /// in-bounds, readable for lifetime `'a`, and no `&mut` alias may exist.
    #[inline]
    pub unsafe fn from_raw_parts(
        ptr: *const T,
        rows: usize,
        cols: usize,
        rs: isize,
        cs: isize,
    ) -> Self {
        Self { ptr, rows, cols, rs, cs, _marker: PhantomData }
    }

    /// View of a column-major slice with leading dimension `ld`.
    pub fn from_col_major(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(data.len() >= ld * cols.saturating_sub(1) + rows.min(ld), "slice too short");
        // SAFETY: bounds checked above; shared borrow of `data` for 'a.
        unsafe { Self::from_raw_parts(data.as_ptr(), rows, cols, 1, ld as isize) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride.
    #[inline]
    pub fn row_stride(&self) -> isize {
        self.rs
    }

    /// Column stride.
    #[inline]
    pub fn col_stride(&self) -> isize {
        self.cs
    }

    /// Raw pointer to element (0, 0).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Element access with bounds check.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "MatRef index out of bounds");
        // SAFETY: in-bounds by the check above and the construction contract.
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) }
    }

    /// Element access without bounds check.
    ///
    /// # Safety
    /// `i < rows && j < cols`.
    #[inline]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> T {
        // SAFETY: in-bounds by the caller's contract; the offset stays within
        // the allocation the view was constructed over.
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) }
    }

    /// Submatrix view: rows `[ri, ri+nrows)`, cols `[ci, ci+ncols)`.
    #[inline]
    pub fn submatrix(&self, ri: usize, ci: usize, nrows: usize, ncols: usize) -> MatRef<'a, T> {
        assert!(ri + nrows <= self.rows && ci + ncols <= self.cols, "submatrix out of bounds");
        // SAFETY: the sub-range is contained in the parent's valid range.
        unsafe {
            MatRef::from_raw_parts(
                self.ptr.offset(ri as isize * self.rs + ci as isize * self.cs),
                nrows,
                ncols,
                self.rs,
                self.cs,
            )
        }
    }

    /// Transposed view (swaps dimensions and strides; no data movement).
    #[inline]
    pub fn t(&self) -> MatRef<'a, T> {
        // SAFETY: same data, same valid index set with roles of i/j swapped.
        unsafe { MatRef::from_raw_parts(self.ptr, self.cols, self.rows, self.cs, self.rs) }
    }

    /// Fold over all elements in column-major order.
    pub fn fold<U>(&self, init: U, mut f: impl FnMut(U, T) -> U) -> U {
        let mut acc = init;
        for j in 0..self.cols {
            for i in 0..self.rows {
                // SAFETY: loop bounds guarantee in-range indices.
                acc = f(acc, unsafe { self.at_unchecked(i, j) });
            }
        }
        acc
    }

    /// Copy into an owned [`crate::Matrix`].
    pub fn to_owned(&self) -> crate::Matrix<T> {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }

    /// True if the view is contiguous column-major (`rs == 1`).
    #[inline]
    pub fn is_col_major(&self) -> bool {
        self.rs == 1
    }
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Build a mutable view from raw parts.
    ///
    /// # Safety
    /// For all `i < rows`, `j < cols`, `ptr.offset(i*rs + j*cs)` must be
    /// in-bounds and exclusively writable for `'a`; distinct `(i, j)` pairs
    /// must address distinct elements (no self-aliasing strides).
    #[inline]
    pub unsafe fn from_raw_parts(
        ptr: *mut T,
        rows: usize,
        cols: usize,
        rs: isize,
        cs: isize,
    ) -> Self {
        Self { ptr, rows, cols, rs, cs, _marker: PhantomData }
    }

    /// Mutable view of a column-major slice with leading dimension `ld`.
    pub fn from_col_major(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        assert!(data.len() >= ld * cols.saturating_sub(1) + rows.min(ld), "slice too short");
        // SAFETY: bounds checked above; exclusive borrow of `data` for 'a.
        unsafe { Self::from_raw_parts(data.as_mut_ptr(), rows, cols, 1, ld as isize) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride.
    #[inline]
    pub fn row_stride(&self) -> isize {
        self.rs
    }

    /// Column stride.
    #[inline]
    pub fn col_stride(&self) -> isize {
        self.cs
    }

    /// Raw pointer to element (0, 0).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Element read.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: in-bounds by the check above.
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) }
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: in-bounds by the check above; exclusive access via &mut self.
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) = v }
    }

    /// In-place update `self[i,j] += v`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "MatMut index out of bounds");
        // SAFETY: in-bounds by the check above.
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) += v }
    }

    /// Reborrow as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        // SAFETY: downgrading exclusive access to shared access.
        unsafe { MatRef::from_raw_parts(self.ptr, self.rows, self.cols, self.rs, self.cs) }
    }

    /// Reborrow mutably with a shorter lifetime.
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_, T> {
        // SAFETY: `&mut self` guarantees exclusivity for the shorter lifetime.
        unsafe { MatMut::from_raw_parts(self.ptr, self.rows, self.cols, self.rs, self.cs) }
    }

    /// Mutable submatrix view: rows `[ri, ri+nrows)`, cols `[ci, ci+ncols)`.
    ///
    /// Consumes the view; use [`MatMut::reborrow`] first to keep the parent.
    #[inline]
    pub fn submatrix(self, ri: usize, ci: usize, nrows: usize, ncols: usize) -> MatMut<'a, T> {
        assert!(ri + nrows <= self.rows && ci + ncols <= self.cols, "submatrix out of bounds");
        // SAFETY: contained sub-range of an exclusively borrowed range.
        unsafe {
            MatMut::from_raw_parts(
                self.ptr.offset(ri as isize * self.rs + ci as isize * self.cs),
                nrows,
                ncols,
                self.rs,
                self.cs,
            )
        }
    }

    /// Split into two disjoint mutable views at row `r`: `[0, r)` and `[r, rows)`.
    pub fn split_rows(self, r: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(r <= self.rows, "split_rows out of bounds");
        // SAFETY: the two halves address disjoint element sets of the parent.
        unsafe {
            (
                MatMut::from_raw_parts(self.ptr, r, self.cols, self.rs, self.cs),
                MatMut::from_raw_parts(
                    self.ptr.offset(r as isize * self.rs),
                    self.rows - r,
                    self.cols,
                    self.rs,
                    self.cs,
                ),
            )
        }
    }

    /// Split into two disjoint mutable views at column `c`: `[0, c)` and `[c, cols)`.
    pub fn split_cols(self, c: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(c <= self.cols, "split_cols out of bounds");
        // SAFETY: disjoint column ranges of the parent.
        unsafe {
            (
                MatMut::from_raw_parts(self.ptr, self.rows, c, self.rs, self.cs),
                MatMut::from_raw_parts(
                    self.ptr.offset(c as isize * self.cs),
                    self.rows,
                    self.cols - c,
                    self.rs,
                    self.cs,
                ),
            )
        }
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            for i in 0..self.rows {
                self.set(i, j, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn submatrix_addresses_expected_elements() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let v = m.as_ref().submatrix(2, 3, 3, 2);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.at(0, 0), 23.0);
        assert_eq!(v.at(2, 1), 44.0);
    }

    #[test]
    fn nested_submatrix_composes() {
        let m = Matrix::from_fn(8, 8, |i, j| (i * 100 + j) as f64);
        let outer = m.as_ref().submatrix(2, 2, 4, 4);
        let inner = outer.submatrix(1, 1, 2, 2);
        assert_eq!(inner.at(0, 0), m.get(3, 3));
        assert_eq!(inner.at(1, 1), m.get(4, 4));
    }

    #[test]
    fn transpose_view_is_stride_swap() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.as_ref().t();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(t.at(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let tt = m.as_ref().t().t();
        assert_eq!(tt.to_owned(), m);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = Matrix::zeros(4, 4);
        {
            let mut v = m.as_mut().submatrix(1, 1, 2, 2);
            v.set(0, 0, 5.0);
            v.add_at(0, 0, 1.5);
            v.set(1, 1, -2.0);
        }
        assert_eq!(m.get(1, 1), 6.5);
        assert_eq!(m.get(2, 2), -2.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn split_rows_partitions_disjointly() {
        let mut m = Matrix::zeros(4, 3);
        let (mut top, mut bot) = m.as_mut().split_rows(1);
        top.fill(1.0);
        bot.fill(2.0);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(3, 2), 2.0);
    }

    #[test]
    fn split_cols_partitions_disjointly() {
        let mut m = Matrix::zeros(3, 4);
        let (mut left, mut right) = m.as_mut().split_cols(3);
        left.fill(-1.0);
        right.fill(4.0);
        assert_eq!(m.get(2, 2), -1.0);
        assert_eq!(m.get(0, 3), 4.0);
    }

    #[test]
    fn from_col_major_respects_ld() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        // 2 rows, 3 cols, ld = 4: columns start at 0, 4, 8.
        let v = crate::MatRef::from_col_major(&data, 2, 3, 4);
        assert_eq!(v.at(0, 0), 0.0);
        assert_eq!(v.at(1, 0), 1.0);
        assert_eq!(v.at(0, 1), 4.0);
        assert_eq!(v.at(1, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_oob_panics() {
        let m = Matrix::<f64>::zeros(3, 3);
        let _ = m.as_ref().submatrix(1, 1, 3, 1);
    }

    #[test]
    fn fold_visits_every_element() {
        let m = Matrix::filled(3, 4, 1.0);
        let count = m.as_ref().fold(0usize, |acc, _| acc + 1);
        assert_eq!(count, 12);
        let sum = m.as_ref().fold(0.0, |acc, v| acc + v);
        assert_eq!(sum, 12.0);
    }
}
