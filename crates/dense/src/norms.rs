//! Norms and error measures used to validate FMM results against reference
//! products.

use crate::scalar::Scalar;
use crate::view::MatRef;

/// Maximum absolute entry, widened to `f64`.
pub fn max_abs<T: Scalar>(a: MatRef<'_, T>) -> f64 {
    a.fold(0.0_f64, |acc, v| acc.max(v.abs().to_f64()))
}

/// Frobenius norm, accumulated in `f64` regardless of the element type.
pub fn frobenius<T: Scalar>(a: MatRef<'_, T>) -> f64 {
    a.fold(0.0, |acc, v| acc + v.to_f64() * v.to_f64()).sqrt()
}

/// Maximum absolute elementwise difference (in `f64`). Panics on shape
/// mismatch.
pub fn max_abs_diff<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> f64 {
    assert_eq!(a.rows(), b.rows(), "max_abs_diff: row mismatch");
    assert_eq!(a.cols(), b.cols(), "max_abs_diff: col mismatch");
    let mut worst = 0.0_f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            // SAFETY: loop bounds are the (checked-equal) shape.
            let d =
                unsafe { (a.at_unchecked(i, j).to_f64() - b.at_unchecked(i, j).to_f64()).abs() };
            worst = worst.max(d);
        }
    }
    worst
}

/// Relative error `||a - b||_max / max(1, ||b||_max)` — the acceptance
/// metric for FMM-vs-reference comparisons.
pub fn rel_error<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> f64 {
    max_abs_diff(a, b) / max_abs(b).max(1.0)
}

/// Tolerance for accepting an L-level FMM product of matrices with entries
/// in [-1, 1]. Strassen-like algorithms lose roughly a constant number of
/// bits per level; this bound is loose enough for every algorithm in the
/// registry at `k` up to ~10^4 yet tight enough to catch genuine bugs
/// (wrong coefficients produce O(1) errors).
pub fn fmm_tolerance(k: usize, levels: usize) -> f64 {
    let growth = 40.0_f64.powi(levels as i32).max(1.0);
    1e-12 * growth * (k.max(2) as f64)
}

/// Precision-scaled variant of [`fmm_tolerance`]: the [`Scalar::accuracy_bound`]
/// for `T`, so `f32` executions are accepted against a bound derived from
/// `f32::EPSILON` rather than the hard-wired `f64` constant above.
pub fn fmm_tolerance_t<T: Scalar>(k: usize, levels: usize) -> f64 {
    T::accuracy_bound(k, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn frobenius_of_identity() {
        let id = Matrix::<f64>::identity(9);
        assert!((frobenius(id.as_ref()) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_detects_single_entry() {
        let a = Matrix::<f64>::zeros(3, 3);
        let mut b = Matrix::zeros(3, 3);
        b.set(2, 1, 1e-3);
        assert_eq!(max_abs_diff(a.as_ref(), b.as_ref()), 1e-3);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = crate::fill::bench_workload(5, 7, 1);
        assert_eq!(rel_error(a.as_ref(), a.as_ref()), 0.0);
    }

    #[test]
    fn tolerance_grows_with_levels_and_k() {
        assert!(fmm_tolerance(1000, 2) > fmm_tolerance(1000, 1));
        assert!(fmm_tolerance(2000, 1) > fmm_tolerance(1000, 1));
        assert!(fmm_tolerance(1000, 2) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn diff_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        max_abs_diff(a.as_ref(), b.as_ref());
    }
}
