//! Elementwise matrix kernels: copy, scale, axpy, and linear combinations.
//!
//! These are the scalar building blocks the Naive/AB FMM variants use to form
//! `sum_i u_ir * A_i` temporaries and to distribute `M_r` into submatrices of
//! `C`. They are deliberately simple loops over strided views; the
//! column-major fast path (`rs == 1`) is special-cased so LLVM vectorizes it.

use crate::errors::DimError;
use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};

fn check_same_shape<T: Scalar>(
    op: &'static str,
    rows: usize,
    cols: usize,
    b: &MatRef<'_, T>,
) -> Result<(), DimError> {
    if b.rows() != rows || b.cols() != cols {
        return Err(DimError::new(op, &[rows, cols, b.rows(), b.cols()]));
    }
    Ok(())
}

/// `dst = src`.
pub fn copy<T: Scalar>(mut dst: MatMut<'_, T>, src: MatRef<'_, T>) -> Result<(), DimError> {
    check_same_shape("copy", dst.rows(), dst.cols(), &src)?;
    for j in 0..dst.cols() {
        for i in 0..dst.rows() {
            // SAFETY: loop bounds are the shared shape.
            let v = unsafe { src.at_unchecked(i, j) };
            dst.set(i, j, v);
        }
    }
    Ok(())
}

/// `dst += alpha * src`.
pub fn axpy<T: Scalar>(
    mut dst: MatMut<'_, T>,
    alpha: T,
    src: MatRef<'_, T>,
) -> Result<(), DimError> {
    check_same_shape("axpy", dst.rows(), dst.cols(), &src)?;
    let (rows, cols) = (dst.rows(), dst.cols());
    if dst.row_stride() == 1 && src.row_stride() == 1 {
        // Contiguous-column fast path.
        for j in 0..cols {
            // SAFETY: column j has `rows` contiguous elements in both views.
            unsafe {
                let d = dst.as_mut_ptr().offset(j as isize * dst.col_stride());
                let s = src.as_ptr().offset(j as isize * src.col_stride());
                for i in 0..rows {
                    *d.add(i) += alpha * *s.add(i);
                }
            }
        }
    } else {
        for j in 0..cols {
            for i in 0..rows {
                // SAFETY: loop bounds are the shared shape.
                let v = unsafe { src.at_unchecked(i, j) };
                dst.add_at(i, j, alpha * v);
            }
        }
    }
    Ok(())
}

/// `dst *= alpha`.
pub fn scale<T: Scalar>(mut dst: MatMut<'_, T>, alpha: T) {
    for j in 0..dst.cols() {
        for i in 0..dst.rows() {
            let v = dst.at(i, j);
            dst.set(i, j, alpha * v);
        }
    }
}

/// `dst = sum_i terms[i].0 * terms[i].1` (overwrites `dst`).
///
/// This is the operand-side linear combination of eq. (3) in the paper,
/// materialized into a temporary — the Naive-FMM path.
pub fn linear_combination<T: Scalar>(
    mut dst: MatMut<'_, T>,
    terms: &[(T, MatRef<'_, T>)],
) -> Result<(), DimError> {
    let (rows, cols) = (dst.rows(), dst.cols());
    for (_, t) in terms {
        check_same_shape("linear_combination", rows, cols, t)?;
    }
    match terms {
        [] => dst.fill(T::ZERO),
        [(a0, t0)] => {
            for j in 0..cols {
                for i in 0..rows {
                    // SAFETY: shape checked above.
                    let v = unsafe { t0.at_unchecked(i, j) };
                    dst.set(i, j, *a0 * v);
                }
            }
        }
        _ => {
            let (first, rest) = terms.split_first().expect("non-empty by match");
            for j in 0..cols {
                for i in 0..rows {
                    // SAFETY: shape checked above.
                    let mut acc = first.0 * unsafe { first.1.at_unchecked(i, j) };
                    for (a, t) in rest {
                        // SAFETY: every term was shape-checked above.
                        acc = a.mul_add(unsafe { t.at_unchecked(i, j) }, acc);
                    }
                    dst.set(i, j, acc);
                }
            }
        }
    }
    Ok(())
}

/// Frobenius inner product `<a, b> = sum_ij a_ij * b_ij`.
pub fn dot<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> Result<T, DimError> {
    check_same_shape("dot", a.rows(), a.cols(), &b)?;
    let mut acc = T::ZERO;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            // SAFETY: shape checked above.
            acc = unsafe { a.at_unchecked(i, j).mul_add(b.at_unchecked(i, j), acc) };
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn copy_roundtrip() {
        let src = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        let mut dst = Matrix::zeros(3, 4);
        copy(dst.as_mut(), src.as_ref()).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn copy_shape_mismatch_errors() {
        let src = Matrix::<f64>::zeros(3, 4);
        let mut dst = Matrix::zeros(4, 3);
        assert!(copy(dst.as_mut(), src.as_ref()).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let src = Matrix::filled(2, 2, 3.0);
        let mut dst = Matrix::filled(2, 2, 1.0);
        axpy(dst.as_mut(), 2.0, src.as_ref()).unwrap();
        assert_eq!(dst, Matrix::filled(2, 2, 7.0));
        axpy(dst.as_mut(), -1.0, src.as_ref()).unwrap();
        assert_eq!(dst, Matrix::filled(2, 2, 4.0));
    }

    #[test]
    fn axpy_on_transposed_view_uses_slow_path() {
        let src = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        let mut dst = Matrix::zeros(3, 2);
        axpy(dst.as_mut(), 1.0, src.as_ref().t()).unwrap();
        assert_eq!(dst, src.transposed());
    }

    #[test]
    fn scale_multiplies_all() {
        let mut m = Matrix::filled(3, 3, 2.0);
        scale(m.as_mut(), -0.5);
        assert_eq!(m, Matrix::filled(3, 3, -1.0));
    }

    #[test]
    fn linear_combination_empty_zeroes() {
        let mut dst = Matrix::filled(2, 2, 9.0);
        linear_combination(dst.as_mut(), &[]).unwrap();
        assert_eq!(dst, Matrix::zeros(2, 2));
    }

    #[test]
    fn linear_combination_matches_manual() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let c = Matrix::identity(2);
        let mut dst = Matrix::filled(2, 2, 100.0); // must be overwritten
        linear_combination(
            dst.as_mut(),
            &[(2.0, a.as_ref()), (-1.0, b.as_ref()), (0.5, c.as_ref())],
        )
        .unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = 2.0 * a.get(i, j) - b.get(i, j) + 0.5 * c.get(i, j);
                assert_eq!(dst.get(i, j), expect);
            }
        }
    }

    #[test]
    fn linear_combination_single_term_scales() {
        let a = Matrix::filled(3, 1, 4.0);
        let mut dst = Matrix::zeros(3, 1);
        linear_combination(dst.as_mut(), &[(-0.25, a.as_ref())]).unwrap();
        assert_eq!(dst, Matrix::filled(3, 1, -1.0));
    }

    #[test]
    fn dot_is_frobenius_inner_product() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(dot(a.as_ref(), b.as_ref()).unwrap(), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn ops_respect_submatrix_boundaries() {
        let mut big = Matrix::zeros(5, 5);
        let ones = Matrix::filled(2, 2, 1.0);
        axpy(big.as_mut().submatrix(1, 1, 2, 2), 3.0, ones.as_ref()).unwrap();
        assert_eq!(big.get(1, 1), 3.0);
        assert_eq!(big.get(2, 2), 3.0);
        assert_eq!(big.get(0, 0), 0.0);
        assert_eq!(big.get(3, 3), 0.0);
        assert_eq!(big.get(1, 3), 0.0);
    }
}
