//! Deterministic and random matrix fills for tests and benchmarks.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniformly random entries in `[lo, hi)`, reproducible from `seed`.
pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    random_uniform_t::<f64>(rows, cols, lo, hi, seed)
}

/// Generic-scalar [`random_uniform`]: the stream is drawn in `f64` and
/// narrowed, so `random_uniform_t::<f32>` and `random_uniform_t::<f64>`
/// with one seed describe the *same* matrix at two precisions — exactly
/// what f32-vs-f64 comparison tests need.
pub fn random_uniform_t<T: Scalar>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(&mut rng)))
}

/// The benchmark workload fill used throughout the harness: entries in
/// `[-1, 1)`. Keeping magnitudes near one keeps FMM rounding error visible
/// but bounded in correctness comparisons.
pub fn bench_workload(rows: usize, cols: usize, seed: u64) -> Matrix {
    random_uniform(rows, cols, -1.0, 1.0, seed)
}

/// Generic-scalar [`bench_workload`]; same value stream as the `f64`
/// version (see [`random_uniform_t`]).
pub fn bench_workload_t<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    random_uniform_t::<T>(rows, cols, -1.0, 1.0, seed)
}

/// Entries `i + j * rows` (column-major counter) — handy for debugging
/// packing and indexing because every element is unique and predictable.
pub fn counter(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| (i + j * rows) as f64)
}

/// Random matrix with entries drawn from the small integer set
/// `{-2, -1, 0, 1, 2}` — products stay exactly representable, so
/// correctness tests can require exact equality with the reference product.
pub fn random_small_int(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(-2i32, 2i32);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(&mut rng) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_uniform_is_seed_deterministic() {
        let a = random_uniform(4, 4, -1.0, 1.0, 42);
        let b = random_uniform(4, 4, -1.0, 1.0, 42);
        let c = random_uniform(4, 4, -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_uniform_respects_range() {
        let m = random_uniform(10, 10, 2.0, 3.0, 7);
        m.as_ref().fold((), |(), v| {
            assert!((2.0..3.0).contains(&v), "value {v} out of range");
        });
    }

    #[test]
    fn counter_matches_column_major_linear_index() {
        let m = counter(3, 2);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(2, 1), 5.0);
    }

    #[test]
    fn small_int_entries_are_integers_in_range() {
        let m = random_small_int(8, 8, 3);
        m.as_ref().fold((), |(), v| {
            assert_eq!(v, v.trunc());
            assert!((-2.0..=2.0).contains(&v));
        });
    }
}
