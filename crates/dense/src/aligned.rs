//! 64-byte-aligned scratch buffers for BLIS-style packing.
//!
//! Packed panels are streamed through SIMD loads; cache-line alignment keeps
//! every `mR`/`nR` micro-panel row aligned and avoids split loads. `Vec<T>`
//! only guarantees the element's natural alignment, hence this dedicated
//! type, generic over the [`Scalar`] element (default `f64`).

use crate::scalar::Scalar;
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

const ALIGN: usize = 64;

/// A heap buffer of `T` scalars aligned to 64 bytes.
pub struct AlignedBuf<T = f64> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: `AlignedBuf` owns its allocation exclusively, like `Vec<T>`.
unsafe impl<T: Scalar> Send for AlignedBuf<T> {}
unsafe impl<T: Scalar> Sync for AlignedBuf<T> {}

impl<T: Scalar> AlignedBuf<T> {
    /// Allocate `len` zeroed elements (at least one allocation unit).
    pub fn zeroed(len: usize) -> Self {
        let alloc_len = len.max(1);
        let layout = Layout::from_size_align(alloc_len * std::mem::size_of::<T>(), ALIGN)
            .expect("AlignedBuf layout");
        // SAFETY: layout has non-zero size, and all-zero bits are a valid
        // (zero-valued) float of either width.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow (never shrink) to hold at least `len` elements; contents are not
    /// preserved. Reuse pattern for per-thread packing scratch.
    pub fn ensure_capacity(&mut self, len: usize) {
        if len > self.len {
            *self = Self::zeroed(len);
        }
    }

    /// Raw pointer to the first element.
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Mutable raw pointer to the first element.
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }
}

impl<T: Scalar> Deref for AlignedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr` is valid for `len` initialized elements.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Scalar> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: exclusive ownership; `ptr` valid for `len` elements.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        let alloc_len = self.len.max(1);
        let layout = Layout::from_size_align(alloc_len * std::mem::size_of::<T>(), ALIGN)
            .expect("AlignedBuf layout");
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr as *mut u8, layout) };
    }
}

impl<T: Scalar> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={}, align={})", self.len, ALIGN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_64_byte_aligned() {
        for len in [1, 7, 64, 1000] {
            let b = AlignedBuf::<f64>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % 64, 0, "len={len}");
        }
    }

    #[test]
    fn starts_zeroed_and_is_writable() {
        let mut b = AlignedBuf::zeroed(128);
        assert!(b.iter().all(|&v| v == 0.0));
        b[127] = 3.5;
        assert_eq!(b[127], 3.5);
    }

    #[test]
    fn zero_len_buffer_is_safe() {
        let b = AlignedBuf::<f64>::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn ensure_capacity_grows_only() {
        let mut b = AlignedBuf::<f64>::zeroed(10);
        let p10 = b.as_ptr();
        b.ensure_capacity(5);
        assert_eq!(b.len(), 10);
        assert_eq!(b.as_ptr(), p10);
        b.ensure_capacity(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.as_ptr() as usize % 64, 0);
    }
}
