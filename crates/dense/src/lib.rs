//! Dense column-major `f64` matrices and strided views.
//!
//! This crate is the storage substrate for the `fmm` workspace. It provides:
//!
//! * [`Matrix`] — an owned, column-major, heap-allocated `f64` matrix;
//! * [`MatRef`] / [`MatMut`] — borrowed, strided views that make submatrix
//!   partitioning (the heart of Strassen-like algorithms) free of copies;
//! * elementwise kernels ([`ops`]) used by packing routines and executors;
//! * [`AlignedBuf`] — a 64-byte-aligned buffer for BLIS-style packing;
//! * deterministic and random fills ([`fill`]) and comparison helpers
//!   ([`norms`]) used by tests and benchmarks.
//!
//! Storage and kernels are generic over the [`Scalar`] element type —
//! `f64` (the paper's DGEMM experiments) by default, with `f32` opening
//! the SGEMM workload at twice the SIMD lanes per instruction. Every type
//! here defaults its parameter to `f64`, so single-precision use is opt-in
//! (`Matrix<f32>`, `fill::bench_workload_t::<f32>`).
//!
//! # Example
//!
//! ```
//! use fmm_dense::Matrix;
//!
//! let a = Matrix::from_fn(4, 3, |i, j| (i + 10 * j) as f64);
//! let v = a.as_ref().submatrix(1, 1, 2, 2);
//! assert_eq!(v.at(0, 0), 11.0);
//! assert_eq!(v.at(1, 1), 22.0);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod aligned;
pub mod errors;
pub mod fill;
pub mod matrix;
pub mod norms;
pub mod ops;
pub mod scalar;
pub mod view;

pub use aligned::AlignedBuf;
pub use errors::DimError;
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use view::{MatMut, MatRef};
