//! Owned column-major matrix storage.

use crate::scalar::Scalar;
use crate::view::{MatMut, MatRef};

/// An owned, column-major matrix of `T` (default `f64`).
///
/// Element `(i, j)` lives at linear index `i + j * ld` where `ld >= rows` is
/// the leading dimension. Freshly-constructed matrices have `ld == rows`;
/// a larger `ld` arises only through [`Matrix::with_leading_dim`], which is
/// useful for exercising strided code paths in tests.
#[derive(Clone, Debug)]
pub struct Matrix<T = f64> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<T: Scalar> Matrix<T> {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![T::ZERO; rows.max(1).saturating_mul(cols)], rows, cols, ld: rows.max(1) }
    }

    /// An `rows x cols` matrix with every entry `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Build from a row-major slice of `rows * cols` values.
    ///
    /// Row-major input is the natural way to write small matrices in source
    /// code; storage remains column-major.
    pub fn from_rows(rows: usize, cols: usize, values: &[T]) -> Self {
        assert_eq!(values.len(), rows * cols, "from_rows: wrong number of values");
        Self::from_fn(rows, cols, |i, j| values[i * cols + j])
    }

    /// Build with an explicit leading dimension `ld >= rows` (padding rows are zero).
    pub fn with_leading_dim(rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension must be >= rows");
        Self { data: vec![T::ZERO; ld * cols], rows, cols, ld }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between columns).
    #[inline]
    pub fn leading_dim(&self) -> usize {
        self.ld
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.ld]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i + j * self.ld] = v;
    }

    /// Immutable strided view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        // SAFETY: `data` holds `ld * cols` elements laid out column-major, so
        // every (i, j) with i < rows <= ld, j < cols is in bounds.
        unsafe {
            MatRef::from_raw_parts(self.data.as_ptr(), self.rows, self.cols, 1, self.ld as isize)
        }
    }

    /// Mutable strided view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        // SAFETY: as in `as_ref`, plus exclusive access through `&mut self`.
        unsafe {
            MatMut::from_raw_parts(
                self.data.as_mut_ptr(),
                self.rows,
                self.cols,
                1,
                self.ld as isize,
            )
        }
    }

    /// The raw column-major backing storage (including any `ld` padding).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Set every entry to zero.
    pub fn clear(&mut self) {
        self.data.fill(T::ZERO);
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Maximum absolute entry, 0.0 for empty matrices.
    pub fn max_abs(&self) -> T {
        self.as_ref().fold(T::ZERO, |acc, v| acc.max(v.abs()))
    }

    /// Entrywise conversion into another scalar type (e.g. the `f64` copy
    /// of an `f32` operand that reference comparisons are computed in).
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix::from_fn(self.rows, self.cols, |i, j| U::from_f64(self.get(i, j).to_f64()))
    }
}

impl<T: Scalar> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                if self.get(i, j) != other.get(i, j) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::<f64>::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        for j in 0..5 {
            for i in 0..3 {
                assert_eq!(m.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn from_fn_and_get_set_roundtrip() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(m.get(2, 3), 11.0);
        m.set(2, 3, -1.0);
        assert_eq!(m.get(2, 3), -1.0);
    }

    #[test]
    fn from_rows_is_row_major_input() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
        // Column-major layout in memory.
        assert_eq!(m.raw(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::<f64>::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn leading_dim_padding_is_respected() {
        let mut m = Matrix::<f64>::with_leading_dim(2, 3, 5);
        assert_eq!(m.leading_dim(), 5);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.raw().len(), 15);
        assert_eq!(m.raw()[1 + 2 * 5], 7.0);
    }

    #[test]
    fn transposed_swaps_indices() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), m.get(1, 2));
    }

    #[test]
    fn equality_ignores_leading_dim() {
        let mut a = Matrix::with_leading_dim(2, 2, 4);
        let mut b = Matrix::zeros(2, 2);
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            a.set(i, j, (i + j) as f64);
            b.set(i, j, (i + j) as f64);
        }
        assert_eq!(a, b);
        b.set(1, 1, 99.0);
        assert_ne!(a, b);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = Matrix::from_rows(2, 2, &[1.0, -8.0, 3.0, 4.0]);
        assert_eq!(m.max_abs(), 8.0);
    }

    #[test]
    fn empty_matrix_is_usable() {
        let m = Matrix::<f64>::zeros(0, 0);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut m = Matrix::filled(3, 3, 2.5);
        m.clear();
        assert_eq!(m.max_abs(), 0.0);
    }
}
