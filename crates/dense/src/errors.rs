//! Error types for dimension mismatches.

use std::fmt;

/// Error returned when matrix operand dimensions are incompatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimError {
    /// Human-readable description of the operation that failed.
    pub op: &'static str,
    /// Dimensions observed, in the order the operation documents them.
    pub dims: Vec<usize>,
}

impl DimError {
    /// Create a new dimension error for operation `op` with observed `dims`.
    pub fn new(op: &'static str, dims: &[usize]) -> Self {
        Self { op, dims: dims.to_vec() }
    }
}

impl fmt::Display for DimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimension mismatch in {}: {:?}", self.op, self.dims)
    }
}

impl std::error::Error for DimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_dims() {
        let e = DimError::new("gemm", &[3, 4, 5]);
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains('3') && s.contains('4') && s.contains('5'));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DimError::new("add", &[1, 2]));
    }
}
