//! Property-based tests for the dense storage substrate.

use fmm_dense::{fill, norms, ops, MatRef, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row-major construction and element access agree.
    #[test]
    fn from_rows_roundtrip(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let m = fill::random_uniform(rows, cols, -5.0, 5.0, seed);
        let row_major: Vec<f64> = (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .map(|(i, j)| m.get(i, j))
            .collect();
        let back = Matrix::from_rows(rows, cols, &row_major);
        prop_assert_eq!(back, m);
    }

    /// Transposing twice is the identity, on views and owned copies.
    #[test]
    fn double_transpose_identity(rows in 1usize..10, cols in 1usize..10) {
        let m = fill::counter(rows, cols);
        prop_assert_eq!(m.as_ref().t().t().to_owned(), m.clone());
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    /// Any submatrix of a submatrix equals the directly-indexed region.
    #[test]
    fn nested_submatrix_composition(
        rows in 4usize..16,
        cols in 4usize..16,
        r0 in 0usize..3,
        c0 in 0usize..3,
        r1 in 0usize..2,
        c1 in 0usize..2,
    ) {
        let m = fill::counter(rows, cols);
        let h0 = rows - r0 - 1;
        let w0 = cols - c0 - 1;
        let outer = m.as_ref().submatrix(r0, c0, h0, w0);
        let h1 = h0 - r1;
        let w1 = w0 - c1;
        let inner = outer.submatrix(r1, c1, h1, w1);
        for i in 0..h1 {
            for j in 0..w1 {
                prop_assert_eq!(inner.at(i, j), m.get(r0 + r1 + i, c0 + c1 + j));
            }
        }
    }

    /// axpy is linear: axpy(c, a, X) twice equals axpy(c, 2a, X).
    #[test]
    fn axpy_linearity(rows in 1usize..10, cols in 1usize..10, alpha in -3.0f64..3.0) {
        let x = fill::bench_workload(rows, cols, 1);
        let mut c1 = Matrix::zeros(rows, cols);
        ops::axpy(c1.as_mut(), alpha, x.as_ref()).unwrap();
        ops::axpy(c1.as_mut(), alpha, x.as_ref()).unwrap();
        let mut c2 = Matrix::zeros(rows, cols);
        ops::axpy(c2.as_mut(), 2.0 * alpha, x.as_ref()).unwrap();
        prop_assert!(norms::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12);
    }

    /// linear_combination distributes over term concatenation.
    #[test]
    fn linear_combination_associativity(rows in 1usize..8, cols in 1usize..8) {
        let x = fill::bench_workload(rows, cols, 3);
        let y = fill::bench_workload(rows, cols, 4);
        let z = fill::bench_workload(rows, cols, 5);
        let mut all = Matrix::zeros(rows, cols);
        ops::linear_combination(
            all.as_mut(),
            &[(1.0, x.as_ref()), (-2.0, y.as_ref()), (0.5, z.as_ref())],
        )
        .unwrap();
        let mut staged = Matrix::zeros(rows, cols);
        ops::linear_combination(staged.as_mut(), &[(1.0, x.as_ref())]).unwrap();
        ops::axpy(staged.as_mut(), -2.0, y.as_ref()).unwrap();
        ops::axpy(staged.as_mut(), 0.5, z.as_ref()).unwrap();
        prop_assert!(norms::max_abs_diff(all.as_ref(), staged.as_ref()) < 1e-12);
    }

    /// Frobenius norm is monotone under zeroing entries and respects scaling.
    #[test]
    fn frobenius_scaling(rows in 1usize..8, cols in 1usize..8, s in 0.0f64..4.0) {
        let x = fill::bench_workload(rows, cols, 6);
        let mut scaled = x.clone();
        ops::scale(scaled.as_mut(), s);
        let lhs = norms::frobenius(scaled.as_ref());
        let rhs = s * norms::frobenius(x.as_ref());
        prop_assert!((lhs - rhs).abs() < 1e-10 * rhs.max(1.0));
    }

    /// from_col_major with ld == rows sees exactly the slice contents.
    #[test]
    fn col_major_view_matches_slice(rows in 1usize..8, cols in 1usize..8) {
        let data: Vec<f64> = (0..rows * cols).map(|x| x as f64).collect();
        let v = MatRef::from_col_major(&data, rows, cols, rows);
        for j in 0..cols {
            for i in 0..rows {
                prop_assert_eq!(v.at(i, j), data[i + j * rows]);
            }
        }
    }
}
