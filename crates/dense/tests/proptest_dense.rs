//! Property-style tests for the dense storage substrate.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these run each property over a deterministic seeded sweep of case
//! parameters (an inline xorshift generator). Coverage is comparable —
//! 64 cases per property, shapes and scalars drawn from the same ranges
//! the proptest strategies used — and failures print the offending case.

use fmm_dense::{fill, norms, ops, MatRef, Matrix};

/// Deterministic case-parameter generator (xorshift64*).
struct Cases {
    state: u64,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_mul(2685821657736338717).max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

const CASES: usize = 64;

/// Row-major construction and element access agree.
#[test]
fn from_rows_roundtrip() {
    let mut cases = Cases::new(1);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 12);
        let cols = cases.usize_in(1, 12);
        let seed = cases.next_u64() % 1000;
        let m = fill::random_uniform(rows, cols, -5.0, 5.0, seed);
        let row_major: Vec<f64> = (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .map(|(i, j)| m.get(i, j))
            .collect();
        let back = Matrix::from_rows(rows, cols, &row_major);
        assert_eq!(back, m, "case {case}: rows={rows} cols={cols} seed={seed}");
    }
}

/// Transposing twice is the identity, on views and owned copies.
#[test]
fn double_transpose_identity() {
    let mut cases = Cases::new(2);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 10);
        let cols = cases.usize_in(1, 10);
        let m = fill::counter(rows, cols);
        assert_eq!(m.as_ref().t().t().to_owned(), m.clone(), "case {case}");
        assert_eq!(m.transposed().transposed(), m, "case {case}");
    }
}

/// Any submatrix of a submatrix equals the directly-indexed region.
#[test]
fn nested_submatrix_composition() {
    let mut cases = Cases::new(3);
    for case in 0..CASES {
        let rows = cases.usize_in(4, 16);
        let cols = cases.usize_in(4, 16);
        let r0 = cases.usize_in(0, 3);
        let c0 = cases.usize_in(0, 3);
        let r1 = cases.usize_in(0, 2);
        let c1 = cases.usize_in(0, 2);
        let m = fill::counter(rows, cols);
        let h0 = rows - r0 - 1;
        let w0 = cols - c0 - 1;
        let outer = m.as_ref().submatrix(r0, c0, h0, w0);
        let h1 = h0 - r1;
        let w1 = w0 - c1;
        let inner = outer.submatrix(r1, c1, h1, w1);
        for i in 0..h1 {
            for j in 0..w1 {
                assert_eq!(
                    inner.at(i, j),
                    m.get(r0 + r1 + i, c0 + c1 + j),
                    "case {case}: rows={rows} cols={cols} r0={r0} c0={c0} r1={r1} c1={c1}"
                );
            }
        }
    }
}

/// axpy is linear: axpy(c, a, X) twice equals axpy(c, 2a, X).
#[test]
fn axpy_linearity() {
    let mut cases = Cases::new(4);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 10);
        let cols = cases.usize_in(1, 10);
        let alpha = cases.f64_in(-3.0, 3.0);
        let x = fill::bench_workload(rows, cols, 1);
        let mut c1 = Matrix::zeros(rows, cols);
        ops::axpy(c1.as_mut(), alpha, x.as_ref()).unwrap();
        ops::axpy(c1.as_mut(), alpha, x.as_ref()).unwrap();
        let mut c2 = Matrix::zeros(rows, cols);
        ops::axpy(c2.as_mut(), 2.0 * alpha, x.as_ref()).unwrap();
        assert!(
            norms::max_abs_diff(c1.as_ref(), c2.as_ref()) < 1e-12,
            "case {case}: rows={rows} cols={cols} alpha={alpha}"
        );
    }
}

/// linear_combination distributes over term concatenation.
#[test]
fn linear_combination_associativity() {
    let mut cases = Cases::new(5);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 8);
        let cols = cases.usize_in(1, 8);
        let x = fill::bench_workload(rows, cols, 3);
        let y = fill::bench_workload(rows, cols, 4);
        let z = fill::bench_workload(rows, cols, 5);
        let mut all = Matrix::zeros(rows, cols);
        ops::linear_combination(
            all.as_mut(),
            &[(1.0, x.as_ref()), (-2.0, y.as_ref()), (0.5, z.as_ref())],
        )
        .unwrap();
        let mut staged = Matrix::zeros(rows, cols);
        ops::linear_combination(staged.as_mut(), &[(1.0, x.as_ref())]).unwrap();
        ops::axpy(staged.as_mut(), -2.0, y.as_ref()).unwrap();
        ops::axpy(staged.as_mut(), 0.5, z.as_ref()).unwrap();
        assert!(
            norms::max_abs_diff(all.as_ref(), staged.as_ref()) < 1e-12,
            "case {case}: rows={rows} cols={cols}"
        );
    }
}

/// Frobenius norm respects scaling.
#[test]
fn frobenius_scaling() {
    let mut cases = Cases::new(6);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 8);
        let cols = cases.usize_in(1, 8);
        let s = cases.f64_in(0.0, 4.0);
        let x = fill::bench_workload(rows, cols, 6);
        let mut scaled = x.clone();
        ops::scale(scaled.as_mut(), s);
        let lhs = norms::frobenius(scaled.as_ref());
        let rhs = s * norms::frobenius(x.as_ref());
        assert!(
            (lhs - rhs).abs() < 1e-10 * rhs.max(1.0),
            "case {case}: rows={rows} cols={cols} s={s}"
        );
    }
}

/// from_col_major with ld == rows sees exactly the slice contents.
#[test]
fn col_major_view_matches_slice() {
    let mut cases = Cases::new(7);
    for case in 0..CASES {
        let rows = cases.usize_in(1, 8);
        let cols = cases.usize_in(1, 8);
        let data: Vec<f64> = (0..rows * cols).map(|x| x as f64).collect();
        let v = MatRef::from_col_major(&data, rows, cols, rows);
        for j in 0..cols {
            for i in 0..rows {
                assert_eq!(v.at(i, j), data[i + j * rows], "case {case}: rows={rows} cols={cols}");
            }
        }
    }
}
