//! The persistent tune store: calibrated architecture parameters plus
//! empirically-chosen routing decisions, keyed by shape class, dtype, and
//! worker count, fingerprinted by micro-kernel name.
//!
//! The store is a plain value (`BTreeMap`s inside), serialized with
//! [`fmm_core::json`]. Loading is *graceful by contract*: a missing,
//! corrupted, truncated, or schema-incompatible file yields an **empty**
//! store — consumers (the engine's `Routing::Tuned`) then simply see
//! misses and fall back to model routing. Tuning data is a cache of
//! measurements, never a correctness input, so no load path is allowed to
//! panic.
//!
//! Two invalidation layers protect against stale decisions:
//!
//! * [`SCHEMA_VERSION`] — a top-level version stamp; a mismatch discards
//!   the whole file (the schema changed under it).
//! * a per-entry **kernel fingerprint** — every calibrated-params and
//!   decision entry records the micro-kernel name it was measured with
//!   ([`fmm_gemm::GemmScalar::micro_kernel_name`]); lookups supply the
//!   current kernel and silently ignore entries measured on different
//!   silicon. Worker count and dtype are part of the lookup key itself.
//!
//! The "no load path may panic" rule is machine-checked: this file carries
//! `fmm-check`'s `contract(panic-free)` (no `unwrap`/`expect`/`panic!`/
//! `[]` indexing outside tests; see README § Static analysis).

// fmm-check: contract(panic-free)

use fmm_core::json::{self, Value};
use fmm_core::{Strategy, Variant};
use fmm_model::ArchParams;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Version stamp of the on-disk format. Bump on any schema change; old
/// files are then ignored wholesale rather than misread.
pub const SCHEMA_VERSION: i64 = 1;

/// Environment variable overriding the store location.
pub const STORE_ENV: &str = "FMM_TUNE_STORE";

/// Largest plan nesting depth a stored decision may name. Guards the load
/// path: a Kronecker composition is exponential in levels, so an absurd
/// stored value must read as corrupt, not as a request.
pub const MAX_DECISION_LEVELS: usize = 4;

/// The fingerprint stamped on (and required of) every store entry for
/// scalar `T`: the runtime-selected micro-kernel name, suffixed with the
/// build profile. The suffix matters: `tau_a` measured by an unoptimized
/// debug build is an order of magnitude off a release build's, so the two
/// must never answer each other's lookups.
pub fn kernel_fingerprint<T: fmm_gemm::GemmScalar>() -> String {
    let kernel = T::micro_kernel_name();
    if cfg!(debug_assertions) {
        format!("{kernel}+debug")
    } else {
        kernel.to_string()
    }
}

/// A problem-shape equivalence class: each dimension bucketed to the
/// nearest power of two, so `500×500×500` and `512×512×512` share one
/// tuned decision while `512³` and `4096³` do not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// Bucketed `m`.
    pub m: usize,
    /// Bucketed `k`.
    pub k: usize,
    /// Bucketed `n`.
    pub n: usize,
}

impl ShapeClass {
    /// Classify a problem shape.
    pub fn of(m: usize, k: usize, n: usize) -> Self {
        Self { m: bucket(m), k: bucket(k), n: bucket(n) }
    }

    /// Canonical label, e.g. `"512x512x512"` — also the store key segment.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.k, self.n)
    }

    /// Parse a [`ShapeClass::label`]-shaped string (`"512x512x512"`).
    /// Returns `None` for anything malformed; dims are re-bucketed so a
    /// hostile label still yields a canonical class. This is the inverse
    /// the serve-side audit report uses to turn exported class keys back
    /// into retune targets.
    pub fn from_label(label: &str) -> Option<Self> {
        let mut parts = label.split('x');
        let m = parts.next()?.parse::<usize>().ok()?;
        let k = parts.next()?.parse::<usize>().ok()?;
        let n = parts.next()?.parse::<usize>().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Self::of(m, k, n))
    }

    /// The single size `fmm_tune explore --sizes` should revisit for this
    /// class: explore tunes square problems, so the dominant dimension
    /// stands in for the class.
    pub fn explore_size(&self) -> usize {
        self.m.max(self.k).max(self.n)
    }
}

/// Render an `fmm_tune explore` invocation covering `classes` — the
/// bridge from the serve-side decision audit (which ranks classes by
/// model error) back into the tuner. Sizes are deduplicated, sorted,
/// and degenerate zero dims are skipped; `None` when nothing remains.
pub fn explore_command(classes: &[ShapeClass], workers: usize) -> Option<String> {
    let mut sizes: Vec<usize> =
        classes.iter().map(ShapeClass::explore_size).filter(|&s| s > 0).collect();
    sizes.sort_unstable();
    sizes.dedup();
    if sizes.is_empty() {
        return None;
    }
    let list = sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",");
    if workers > 1 {
        Some(format!("fmm_tune explore --sizes {list} --workers {workers}"))
    } else {
        Some(format!("fmm_tune explore --sizes {list}"))
    }
}

/// Nearest power of two (in log space), 0 for degenerate zero dims.
fn bucket(d: usize) -> usize {
    if d == 0 {
        return 0;
    }
    let exp = (d as f64).log2().round() as u32;
    1usize << exp.min(62)
}

/// What the tuner measured as fastest for one (class, dtype, workers).
#[derive(Clone, Debug, PartialEq)]
pub enum TunedChoice {
    /// Plain blocked GEMM won.
    Gemm,
    /// An FMM `(algorithm, levels, variant, strategy)` won. `dims` names
    /// the registry algorithm; the consumer re-resolves it (and falls back
    /// to model routing if its registry no longer has it).
    Fmm {
        /// Partition dims of the registry algorithm, e.g. `(2, 2, 2)`.
        dims: (usize, usize, usize),
        /// Nesting depth.
        levels: usize,
        /// Implementation variant.
        variant: Variant,
        /// Schedule (meaningful to parallel consumers; sequential engines
        /// run depth-first regardless).
        strategy: Strategy,
    },
}

/// A stored winning decision plus the throughput that earned it.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedDecision {
    /// The winner.
    pub choice: TunedChoice,
    /// Measured effective GFLOP/s of the winner at tuning time.
    pub gflops: f64,
}

/// One calibrated-parameters entry (per dtype).
#[derive(Clone, Debug, PartialEq)]
struct CalibratedEntry {
    kernel: String,
    arch: ArchParams,
}

/// One decision entry: the kernel fingerprint plus the decision.
#[derive(Clone, Debug, PartialEq)]
struct DecisionEntry {
    kernel: String,
    decision: TunedDecision,
}

/// The persistent per-machine tuning memory. See the module docs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneStore {
    /// `"{dtype}/{kernel}"` → calibrated params. The kernel fingerprint is
    /// part of the key (not just checked on lookup) so entries measured
    /// under different kernels or build profiles coexist instead of
    /// overwriting each other.
    calibrated: BTreeMap<String, CalibratedEntry>,
    /// `"{dtype}/{class}/w{workers}"` → decision (+ kernel fingerprint).
    decisions: BTreeMap<String, DecisionEntry>,
}

impl TuneStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store location: `$FMM_TUNE_STORE` if set, else
    /// `~/.cache/fmm/tune.json` (falling back to a relative
    /// `.fmm-tune.json` when `HOME` is unset).
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var(STORE_ENV) {
            if !p.is_empty() {
                return PathBuf::from(p);
            }
        }
        match std::env::var_os("HOME") {
            Some(home) if !home.is_empty() => {
                PathBuf::from(home).join(".cache").join("fmm").join("tune.json")
            }
            _ => PathBuf::from(".fmm-tune.json"),
        }
    }

    /// Load from `path`. Missing, unreadable, corrupted, or
    /// schema-mismatched files all yield an empty store — never an error,
    /// never a panic (tuning data is a cache, not a correctness input).
    pub fn load(path: &Path) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::new();
        };
        Self::from_json_str(&text).unwrap_or_default()
    }

    /// [`TuneStore::load`] from [`TuneStore::default_path`].
    pub fn load_default() -> Self {
        Self::load(&Self::default_path())
    }

    /// Serialize and write atomically (temp file + rename), creating
    /// parent directories as needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json_string())?;
        std::fs::rename(&tmp, path)
    }

    /// Calibrated params for `dtype`, if present and measured with the
    /// same `kernel` (fingerprint mismatch reads as absent).
    pub fn calibrated(&self, dtype: &str, kernel: &str) -> Option<ArchParams> {
        let e = self.calibrated.get(&calibrated_key(dtype, kernel))?;
        (e.kernel == kernel).then_some(e.arch)
    }

    /// Record calibrated params for `dtype` measured with `kernel`.
    pub fn set_calibrated(&mut self, dtype: &str, kernel: &str, arch: ArchParams) {
        self.calibrated.insert(
            calibrated_key(dtype, kernel),
            CalibratedEntry { kernel: kernel.to_string(), arch },
        );
    }

    /// The stored winning decision for `(class, dtype, workers)`, if its
    /// kernel fingerprint matches the current `kernel`.
    pub fn decision(
        &self,
        class: ShapeClass,
        dtype: &str,
        workers: usize,
        kernel: &str,
    ) -> Option<&TunedDecision> {
        let e = self.decisions.get(&decision_key(class, dtype, workers))?;
        (e.kernel == kernel).then_some(&e.decision)
    }

    /// Record the winning decision for `(class, dtype, workers)`.
    pub fn set_decision(
        &mut self,
        class: ShapeClass,
        dtype: &str,
        workers: usize,
        kernel: &str,
        decision: TunedDecision,
    ) {
        self.decisions.insert(
            decision_key(class, dtype, workers),
            DecisionEntry { kernel: kernel.to_string(), decision },
        );
    }

    /// Number of stored decisions.
    pub fn decision_count(&self) -> usize {
        self.decisions.len()
    }

    /// Number of calibrated-params entries.
    pub fn calibrated_count(&self) -> usize {
        self.calibrated.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.calibrated.is_empty() && self.decisions.is_empty()
    }

    /// Serialize to the versioned JSON document.
    pub fn to_json_string(&self) -> String {
        let mut calibrated = BTreeMap::new();
        for (dtype, e) in &self.calibrated {
            let mut o = BTreeMap::new();
            o.insert("kernel".into(), Value::String(e.kernel.clone()));
            o.insert("tau_a".into(), Value::Number(e.arch.tau_a));
            o.insert("tau_b".into(), Value::Number(e.arch.tau_b));
            o.insert("lambda".into(), Value::Number(e.arch.lambda));
            o.insert("mc".into(), Value::Int(e.arch.mc as i64));
            o.insert("kc".into(), Value::Int(e.arch.kc as i64));
            o.insert("nc".into(), Value::Int(e.arch.nc as i64));
            o.insert("elem_bytes".into(), Value::Int(e.arch.elem_bytes as i64));
            calibrated.insert(dtype.clone(), Value::Object(o));
        }
        let mut decisions = BTreeMap::new();
        for (key, e) in &self.decisions {
            let mut o = BTreeMap::new();
            o.insert("kernel".into(), Value::String(e.kernel.clone()));
            o.insert("gflops".into(), Value::Number(e.decision.gflops));
            match &e.decision.choice {
                TunedChoice::Gemm => {
                    o.insert("kind".into(), Value::String("gemm".into()));
                }
                TunedChoice::Fmm { dims, levels, variant, strategy } => {
                    o.insert("kind".into(), Value::String("fmm".into()));
                    o.insert(
                        "dims".into(),
                        Value::Array(vec![
                            Value::Int(dims.0 as i64),
                            Value::Int(dims.1 as i64),
                            Value::Int(dims.2 as i64),
                        ]),
                    );
                    o.insert("levels".into(), Value::Int(*levels as i64));
                    o.insert("variant".into(), Value::String(variant.name().into()));
                    o.insert("strategy".into(), Value::String(strategy.name().into()));
                }
            }
            decisions.insert(key.clone(), Value::Object(o));
        }
        let doc = Value::Object(BTreeMap::from([
            ("schema_version".to_string(), Value::Int(SCHEMA_VERSION)),
            ("calibrated".to_string(), Value::Object(calibrated)),
            ("decisions".to_string(), Value::Object(decisions)),
        ]));
        json::to_string_pretty(&doc)
    }

    /// Parse the versioned JSON document. Errors on malformed JSON or a
    /// schema-version mismatch; [`TuneStore::load`] maps those to empty.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version = doc.get("schema_version")?.as_number()? as i64;
        if version != SCHEMA_VERSION {
            return Err(format!("schema version {version} != {SCHEMA_VERSION}"));
        }
        let mut store = Self::new();
        if let Value::Object(map) = doc.get("calibrated")? {
            for (dtype, entry) in map {
                store.calibrated.insert(dtype.clone(), parse_calibrated(entry)?);
            }
        }
        if let Value::Object(map) = doc.get("decisions")? {
            for (key, entry) in map {
                store.decisions.insert(key.clone(), parse_decision(entry)?);
            }
        }
        Ok(store)
    }
}

fn decision_key(class: ShapeClass, dtype: &str, workers: usize) -> String {
    format!("{dtype}/{}/w{workers}", class.label())
}

fn calibrated_key(dtype: &str, kernel: &str) -> String {
    format!("{dtype}/{kernel}")
}

fn parse_calibrated(v: &Value) -> Result<CalibratedEntry, String> {
    let arch = ArchParams {
        tau_a: v.get("tau_a")?.as_number()?,
        tau_b: v.get("tau_b")?.as_number()?,
        lambda: v.get("lambda")?.as_number()?,
        mc: v.get("mc")?.as_usize()?,
        kc: v.get("kc")?.as_usize()?,
        nc: v.get("nc")?.as_usize()?,
        elem_bytes: v.get("elem_bytes")?.as_usize()?,
    };
    arch.validate()?;
    Ok(CalibratedEntry { kernel: v.get("kernel")?.as_str()?.to_string(), arch })
}

fn parse_decision(v: &Value) -> Result<DecisionEntry, String> {
    let kernel = v.get("kernel")?.as_str()?.to_string();
    let gflops = v.get("gflops")?.as_number()?;
    let choice = match v.get("kind")?.as_str()? {
        "gemm" => TunedChoice::Gemm,
        "fmm" => {
            let (d0, d1, d2) = match v.get("dims")?.as_array()? {
                [a, b, c] => (a.as_usize()?, b.as_usize()?, c.as_usize()?),
                other => return Err(format!("dims must have 3 entries, got {}", other.len())),
            };
            let levels = v.get("levels")?.as_usize()?;
            // levels == 0 would panic plan composition; huge values would
            // request an exponential Kronecker product. Either way the
            // entry is corrupt, and tuning data must never crash a host.
            if levels == 0 || levels > MAX_DECISION_LEVELS {
                return Err(format!("levels {levels} outside 1..={MAX_DECISION_LEVELS}"));
            }
            TunedChoice::Fmm {
                dims: (d0, d1, d2),
                levels,
                variant: variant_from_name(v.get("variant")?.as_str()?)?,
                strategy: strategy_from_name(v.get("strategy")?.as_str()?)?,
            }
        }
        other => return Err(format!("unknown decision kind {other:?}")),
    };
    Ok(DecisionEntry { kernel, decision: TunedDecision { choice, gflops } })
}

fn variant_from_name(name: &str) -> Result<Variant, String> {
    Variant::ALL
        .into_iter()
        .find(|v| v.name() == name)
        .ok_or_else(|| format!("unknown variant {name:?}"))
}

fn strategy_from_name(name: &str) -> Result<Strategy, String> {
    Strategy::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| format!("unknown strategy {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_class_buckets_to_powers_of_two() {
        assert_eq!(ShapeClass::of(512, 512, 512), ShapeClass { m: 512, k: 512, n: 512 });
        assert_eq!(ShapeClass::of(500, 300, 90), ShapeClass { m: 512, k: 256, n: 64 });
        assert_eq!(ShapeClass::of(1, 0, 3), ShapeClass { m: 1, k: 0, n: 4 });
        assert_eq!(ShapeClass::of(768, 768, 768).label(), "1024x1024x1024");
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for class in
            [ShapeClass::of(512, 512, 512), ShapeClass::of(500, 300, 90), ShapeClass::of(1, 0, 3)]
        {
            assert_eq!(ShapeClass::from_label(&class.label()), Some(class));
        }
        // Non-canonical dims are re-bucketed, not trusted.
        assert_eq!(ShapeClass::from_label("500x300x90"), Some(ShapeClass::of(500, 300, 90)));
        // Malformed labels are misses, never panics.
        for bad in ["", "512", "512x512", "512x512x512x512", "axbxc", "512x-1x512", "512x512x"] {
            assert_eq!(ShapeClass::from_label(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn explore_command_dedups_and_sorts_sizes() {
        let classes = [
            ShapeClass::of(1024, 512, 1024),
            ShapeClass::of(256, 256, 256),
            ShapeClass::of(1000, 1000, 1000),
        ];
        assert_eq!(
            explore_command(&classes, 1).as_deref(),
            Some("fmm_tune explore --sizes 256,1024")
        );
        assert_eq!(
            explore_command(&classes, 4).as_deref(),
            Some("fmm_tune explore --sizes 256,1024 --workers 4")
        );
        // Degenerate classes contribute nothing.
        assert_eq!(explore_command(&[ShapeClass::of(0, 0, 0)], 2), None);
        assert_eq!(explore_command(&[], 1), None);
    }

    #[test]
    fn kernel_fingerprint_gates_lookups() {
        let mut store = TuneStore::new();
        let class = ShapeClass::of(512, 512, 512);
        let d = TunedDecision { choice: TunedChoice::Gemm, gflops: 10.0 };
        store.set_decision(class, "f64", 1, "avx2_fma_8x4", d.clone());
        assert_eq!(store.decision(class, "f64", 1, "avx2_fma_8x4"), Some(&d));
        assert_eq!(store.decision(class, "f64", 1, "portable_8x4"), None, "kernel changed");
        assert_eq!(store.decision(class, "f64", 4, "avx2_fma_8x4"), None, "workers differ");
        assert_eq!(store.decision(class, "f32", 1, "avx2_fma_8x4"), None, "dtype differs");

        let arch = ArchParams::paper_machine();
        store.set_calibrated("f64", "avx2_fma_8x4", arch);
        assert_eq!(store.calibrated("f64", "avx2_fma_8x4"), Some(arch));
        assert_eq!(store.calibrated("f64", "portable_8x4"), None);
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let text = TuneStore::new()
            .to_json_string()
            .replace(&format!("\"schema_version\": {SCHEMA_VERSION}"), "\"schema_version\": 999");
        assert!(TuneStore::from_json_str(&text).is_err());
    }
}
