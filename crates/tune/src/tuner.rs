//! Empirical exploration: time the model's top candidates for real and
//! remember the measured winner.
//!
//! The model's job is to prune, not to decide: fringe effects, cache
//! conflicts, and scheduler overheads are deliberately outside it (paper
//! §4.4 measures the top-2 predictions for exactly this reason). The
//! [`Tuner`] generalizes that protocol — take the top-K `(plan, variant[,
//! strategy])` candidates plus plain GEMM from the ranking, execute each
//! through a pooled [`SchedContext`] under a warmup/rep/outlier
//! [`TunePolicy`], and record the fastest *measured* candidate in the
//! [`TuneStore`] under the problem's [`ShapeClass`].

use crate::store::{kernel_fingerprint, ShapeClass, TuneStore, TunedChoice, TunedDecision};
use fmm_core::registry::Registry;
use fmm_core::{fmm_execute, FmmPlan, Strategy, Variant};
use fmm_dense::{fill, norms, Matrix};
use fmm_gemm::{BlockingParams, GemmScalar};
use fmm_model::{rank_candidates, rank_scheduled, ArchParams, Impl};
use fmm_sched::SchedContext;
use std::sync::Arc;
use std::time::Instant;

/// Measurement discipline for one candidate timing.
#[derive(Clone, Copy, Debug)]
pub struct TunePolicy {
    /// Candidates taken from the top of the model ranking (GEMM included).
    pub top_k: usize,
    /// Untimed executions before sampling (page in buffers, size arenas).
    pub warmup: usize,
    /// Timed samples per candidate.
    pub reps: usize,
    /// Fraction of the *slowest* samples discarded as outliers before the
    /// estimate (preemption only ever adds time); the estimate is the
    /// mean of the kept samples.
    pub trim: f64,
    /// Check the winner's result against an exact blocked GEMM at the
    /// dtype's accuracy bound before storing it — a mistimed candidate
    /// must never be remembered, a wrong one must never exist.
    pub verify: bool,
}

impl Default for TunePolicy {
    fn default() -> Self {
        Self { top_k: 4, warmup: 1, reps: 3, trim: 0.5, verify: true }
    }
}

/// One timed candidate in an [`ExploreOutcome`].
#[derive(Clone, Debug)]
pub struct CandidateTiming {
    /// Display label, e.g. `"<2,2,2>+<2,2,2> ABC"` or `"GEMM"`.
    pub label: String,
    /// Robust per-call seconds under the policy.
    pub secs: f64,
    /// Effective GFLOP/s at the explored shape.
    pub gflops: f64,
    /// The model's predicted seconds (what ranked it into the top-K).
    pub predicted_secs: f64,
}

/// What one [`Tuner::explore`] call measured and stored.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Explored problem shape.
    pub shape: (usize, usize, usize),
    /// The shape class the decision was stored under.
    pub class: ShapeClass,
    /// Execution dtype name.
    pub dtype: &'static str,
    /// Worker count the decision applies to.
    pub workers: usize,
    /// Label of the measured winner.
    pub winner: String,
    /// Winner's effective GFLOP/s.
    pub winner_gflops: f64,
    /// Label of the model's own first pick (the empirical winner may
    /// differ — that difference is the whole point of tuning).
    pub model_pick: String,
    /// Every timed candidate, fastest first.
    pub candidates: Vec<CandidateTiming>,
    /// Winner-vs-reference relative error when the policy verified.
    pub verified_error: Option<f64>,
}

/// A reusable empirical autotuner over one registry and blocking-parameter
/// set. See the module docs.
pub struct Tuner {
    /// Measurement discipline.
    pub policy: TunePolicy,
    params: BlockingParams,
    registry: Arc<Registry>,
    /// Worker count candidates are ranked and executed for (`0` = the
    /// rayon pool width). `1` explores the sequential engine's world.
    workers: usize,
    max_levels: usize,
}

/// A ranked candidate, unified across the sequential and scheduled forms.
struct RankedCandidate {
    plan: Option<Arc<FmmPlan>>,
    variant: Option<Variant>,
    strategy: Strategy,
    predicted_secs: f64,
    label: String,
}

impl Tuner {
    /// Tuner over the standard registry and default blocking parameters.
    pub fn new(policy: TunePolicy, workers: usize, max_levels: usize) -> Self {
        Self::with_registry(
            policy,
            BlockingParams::default(),
            Registry::shared(),
            workers,
            max_levels,
        )
    }

    /// Tuner over an explicit registry and parameter set.
    pub fn with_registry(
        policy: TunePolicy,
        params: BlockingParams,
        registry: Arc<Registry>,
        workers: usize,
        max_levels: usize,
    ) -> Self {
        assert!(max_levels >= 1, "max_levels must be at least 1");
        Self { policy, params, registry, workers, max_levels }
    }

    /// Tuner for sequential (one-worker) execution — what the default
    /// process-global engines serve.
    pub fn sequential() -> Self {
        Self::new(TunePolicy::default(), 1, 2)
    }

    /// Worker count decisions are keyed under: the configured count, with
    /// `0` resolved to (and explicit counts clamped to) the rayon pool
    /// width, exactly as the engine and scheduler resolve it.
    pub fn effective_workers(&self) -> usize {
        let pool = rayon::current_num_threads();
        if self.workers == 0 {
            pool
        } else {
            self.workers.min(pool).max(1)
        }
    }

    /// Time the top-K model candidates for `(m, k, n)` and record the
    /// measured winner in `store` under the shape's class. `arch` should
    /// be host-calibrated ([`crate::host_arch`]); its memory terms are
    /// charged at `T`'s element width before ranking.
    pub fn explore<T: GemmScalar>(
        &self,
        store: &mut TuneStore,
        arch: &ArchParams,
        m: usize,
        k: usize,
        n: usize,
    ) -> ExploreOutcome {
        assert!(m > 0 && k > 0 && n > 0, "explore requires a non-degenerate shape");
        let workers = self.effective_workers();
        let arch = arch.with_elem_bytes(std::mem::size_of::<T>());
        let ranked = self.ranked_candidates(m, k, n, &arch, workers);
        let model_pick = ranked[0].label.clone();
        let top: Vec<&RankedCandidate> = ranked.iter().take(self.policy.top_k.max(1)).collect();

        let a = fill::bench_workload_t::<T>(m, k, 1);
        let b = fill::bench_workload_t::<T>(k, n, 2);
        let mut c = Matrix::<T>::zeros(m, n);
        // One pooled context serves every candidate and rep: arenas and
        // packing buffers grow to the high-water mark once, so the timed
        // region is the same warm path the engine serves.
        let mut ctx = SchedContext::<T>::new(self.params);

        let mut timings: Vec<(usize, CandidateTiming)> = Vec::new();
        for (i, cand) in top.iter().enumerate() {
            let secs = self.time_candidate(cand, &mut c, &a, &b, &mut ctx, workers);
            timings.push((
                i,
                CandidateTiming {
                    label: cand.label.clone(),
                    secs,
                    gflops: fmm_core::counts::effective_gflops(m, k, n, secs),
                    predicted_secs: cand.predicted_secs,
                },
            ));
        }
        timings.sort_by(|x, y| x.1.secs.partial_cmp(&y.1.secs).expect("finite timings"));
        let (winner_idx, winner_timing) = (timings[0].0, timings[0].1.clone());
        let winner = top[winner_idx];

        let verified_error = self.policy.verify.then(|| {
            let err = self.verify_candidate::<T>(winner, m, k, n, workers);
            let levels = winner.plan.as_ref().map_or(1, |p| p.num_levels());
            let bound = T::accuracy_bound(k, levels);
            assert!(
                err < bound,
                "tuned winner {} fails verification: rel error {err:.3e} >= bound {bound:.3e}",
                winner.label
            );
            err
        });

        let class = ShapeClass::of(m, k, n);
        let choice = match (&winner.plan, winner.variant) {
            (Some(plan), Some(variant)) => TunedChoice::Fmm {
                dims: plan.first_level().dims(),
                levels: plan.num_levels(),
                variant,
                strategy: winner.strategy,
            },
            _ => TunedChoice::Gemm,
        };
        store.set_decision(
            class,
            T::NAME,
            workers,
            &kernel_fingerprint::<T>(),
            TunedDecision { choice, gflops: winner_timing.gflops },
        );

        ExploreOutcome {
            shape: (m, k, n),
            class,
            dtype: T::NAME,
            workers,
            winner: winner_timing.label.clone(),
            winner_gflops: winner_timing.gflops,
            model_pick,
            candidates: timings.into_iter().map(|(_, t)| t).collect(),
            verified_error,
        }
    }

    /// The model ranking this tuner prunes with: every registry algorithm
    /// at 1..=`max_levels`, plus plain GEMM, sequential or scheduled form
    /// by worker count.
    fn ranked_candidates(
        &self,
        m: usize,
        k: usize,
        n: usize,
        arch: &ArchParams,
        workers: usize,
    ) -> Vec<RankedCandidate> {
        let mut plans = Vec::new();
        for (_, algo) in self.registry.paper_rows() {
            for levels in 1..=self.max_levels {
                plans.push(Arc::new(FmmPlan::from_arcs(vec![algo.clone(); levels])));
            }
        }
        if workers > 1 {
            rank_scheduled(m, k, n, &plans, &Impl::FMM_VARIANTS, arch, workers, true)
                .into_iter()
                .map(|c| RankedCandidate {
                    label: c.describe(),
                    plan: c.plan.clone(),
                    variant: c.impl_.to_variant(),
                    strategy: c.strategy,
                    predicted_secs: c.prediction.total,
                })
                .collect()
        } else {
            rank_candidates(m, k, n, &plans, &Impl::FMM_VARIANTS, arch, true)
                .into_iter()
                .map(|c| RankedCandidate {
                    label: c.describe(),
                    plan: c.plan.clone(),
                    variant: c.impl_.to_variant(),
                    strategy: Strategy::Dfs,
                    predicted_secs: c.prediction.total,
                })
                .collect()
        }
    }

    /// Execute one candidate once: the single dispatch point shared by
    /// timing and verification, so the tuner can never time one code path
    /// and verify a different one.
    fn run_candidate<T: GemmScalar>(
        &self,
        cand: &RankedCandidate,
        c: &mut Matrix<T>,
        a: &Matrix<T>,
        b: &Matrix<T>,
        ctx: &mut SchedContext<T>,
        workers: usize,
    ) {
        match (&cand.plan, cand.variant) {
            (Some(plan), Some(variant)) => {
                if workers > 1 {
                    fmm_sched::execute(
                        c.as_mut(),
                        a.as_ref(),
                        b.as_ref(),
                        plan,
                        variant,
                        cand.strategy,
                        ctx,
                        workers,
                    );
                } else {
                    fmm_execute(
                        c.as_mut(),
                        a.as_ref(),
                        b.as_ref(),
                        plan,
                        variant,
                        ctx.fmm_context(),
                    );
                }
            }
            _ => {
                if workers > 1 {
                    fmm_gemm::parallel::gemm_sums_parallel(
                        &mut [fmm_gemm::DestTile::new(c.as_mut(), T::ONE)],
                        &[(T::ONE, a.as_ref())],
                        &[(T::ONE, b.as_ref())],
                        &self.params,
                    );
                } else {
                    fmm_gemm::gemm_with_params(c.as_mut(), a.as_ref(), b.as_ref(), &self.params);
                }
            }
        }
    }

    /// Warmup + sampled timing of one candidate on the pooled context.
    fn time_candidate<T: GemmScalar>(
        &self,
        cand: &RankedCandidate,
        c: &mut Matrix<T>,
        a: &Matrix<T>,
        b: &Matrix<T>,
        ctx: &mut SchedContext<T>,
        workers: usize,
    ) -> f64 {
        for _ in 0..self.policy.warmup.max(1) {
            self.run_candidate(cand, c, a, b, ctx, workers);
        }
        let mut samples = Vec::with_capacity(self.policy.reps.max(1));
        for _ in 0..self.policy.reps.max(1) {
            let t0 = Instant::now();
            self.run_candidate(cand, c, a, b, ctx, workers);
            samples.push(t0.elapsed().as_secs_f64());
        }
        robust_secs(&mut samples, self.policy.trim)
    }

    /// Execute `cand` once from a zeroed destination and compare against
    /// an exact blocked GEMM; returns the relative error.
    fn verify_candidate<T: GemmScalar>(
        &self,
        cand: &RankedCandidate,
        m: usize,
        k: usize,
        n: usize,
        workers: usize,
    ) -> f64 {
        let a = fill::bench_workload_t::<T>(m, k, 1);
        let b = fill::bench_workload_t::<T>(k, n, 2);
        let mut c_ref = Matrix::<T>::zeros(m, n);
        fmm_gemm::gemm_with_params(c_ref.as_mut(), a.as_ref(), b.as_ref(), &self.params);
        let mut c = Matrix::<T>::zeros(m, n);
        let mut ctx = SchedContext::<T>::new(self.params);
        self.run_candidate(cand, &mut c, &a, &b, &mut ctx, workers);
        norms::rel_error(c.as_ref(), c_ref.as_ref())
    }
}

/// Sort samples, drop the slowest `trim` fraction as outliers, and
/// average what survives. With the default `trim = 0.5` and 3 reps this
/// averages the two fastest samples — close to the conventional min
/// estimator (noise only ever adds time) but less quantized, so two
/// near-equal candidates compare stably across runs.
fn robust_secs(samples: &mut [f64], trim: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let trim = trim.clamp(0.0, 0.9);
    let keep = ((samples.len() as f64) * (1.0 - trim)).ceil().max(1.0) as usize;
    let kept = &samples[..keep.min(samples.len())];
    kept.iter().sum::<f64>() / kept.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_secs_ignores_slow_outliers() {
        let mut samples = [1.0, 1.1, 0.9, 50.0];
        let est = robust_secs(&mut samples, 0.5);
        assert!(est <= 1.1, "outlier must not dominate, got {est}");
    }

    #[test]
    fn robust_secs_handles_single_sample() {
        assert_eq!(robust_secs(&mut [2.5], 0.5), 2.5);
    }
}
