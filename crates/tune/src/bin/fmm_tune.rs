//! `fmm_tune` — operate the persistent autotuning store from a shell.
//!
//! ```sh
//! fmm_tune calibrate [--scale 1.0] [--dtype f64|f32|both]
//! fmm_tune explore --sizes 256,512 [--workers N] [--top-k K] [--reps R]
//!          [--warmup W] [--levels L] [--no-verify] [--dtype f64|f32|both]
//! fmm_tune show
//! fmm_tune clear
//! ```
//!
//! The store lives at `~/.cache/fmm/tune.json` unless `FMM_TUNE_STORE`
//! points elsewhere. `calibrate` measures this host's `ArchParams` per
//! dtype (honoring the runtime-selected micro-kernel) and persists them;
//! `explore` times the model's top candidates at each size (squares) and
//! persists the measured winners, verifying every winner against an exact
//! blocked GEMM unless `--no-verify`; `show` prints the store; `clear`
//! deletes it.

use fmm_gemm::{BlockingParams, GemmScalar};
use fmm_tune::{calibrate_host, ExploreOutcome, TunePolicy, TuneStore, Tuner};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        usage_and_exit();
    };
    match command.as_str() {
        "calibrate" => cmd_calibrate(&argv[1..]),
        "explore" => cmd_explore(&argv[1..]),
        "show" => cmd_show(),
        "clear" => cmd_clear(),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: fmm_tune <calibrate|explore|show|clear> [options]\n\
         \n\
         calibrate [--scale S] [--dtype f64|f32|both]\n\
         explore --sizes N,N,... [--workers N] [--top-k K] [--reps R]\n\
         \x20        [--warmup W] [--levels L] [--no-verify] [--dtype f64|f32|both]\n\
         show\n\
         clear\n\
         \n\
         store: {} (override with FMM_TUNE_STORE)",
        TuneStore::default_path().display()
    );
    std::process::exit(2);
}

fn arg_value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    argv.get(*i).unwrap_or_else(|| {
        eprintln!("{flag} takes a value");
        std::process::exit(2);
    })
}

#[derive(Clone, Copy, PartialEq)]
enum Dtype {
    F64,
    F32,
    Both,
}

fn parse_dtype(s: &str) -> Dtype {
    match s {
        "f64" => Dtype::F64,
        "f32" => Dtype::F32,
        "both" => Dtype::Both,
        other => {
            eprintln!("unknown dtype {other:?} (expected f64, f32, or both)");
            std::process::exit(2);
        }
    }
}

fn cmd_calibrate(argv: &[String]) {
    let mut scale = 1.0_f64;
    let mut dtype = Dtype::F64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => scale = arg_value(argv, &mut i, "--scale").parse().expect("--scale: f64"),
            "--dtype" => dtype = parse_dtype(arg_value(argv, &mut i, "--dtype")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let path = TuneStore::default_path();
    let mut store = TuneStore::load(&path);
    if matches!(dtype, Dtype::F64 | Dtype::Both) {
        calibrate_one::<f64>(&mut store, scale);
    }
    if matches!(dtype, Dtype::F32 | Dtype::Both) {
        calibrate_one::<f32>(&mut store, scale);
    }
    store.save(&path).expect("save tune store");
    println!("saved {}", path.display());
}

fn calibrate_one<T: GemmScalar>(store: &mut TuneStore, scale: f64) {
    let kernel = fmm_tune::kernel_fingerprint::<T>();
    println!("calibrating {} ({kernel}) at scale {scale} ...", T::NAME);
    let arch = calibrate_host::<T>(&BlockingParams::default(), scale);
    println!(
        "  peak {:.2} GFLOP/s | bandwidth {:.2} GB/s | lambda {:.2}",
        arch.peak_gflops(),
        8.0 / arch.tau_b / 1e9,
        arch.lambda
    );
    store.set_calibrated(T::NAME, &kernel, arch);
}

fn cmd_explore(argv: &[String]) {
    let mut sizes: Vec<usize> = Vec::new();
    let mut policy = TunePolicy::default();
    let mut workers = 1usize;
    let mut levels = 2usize;
    let mut dtype = Dtype::F64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sizes" => {
                sizes = arg_value(argv, &mut i, "--sizes")
                    .split(',')
                    .map(|s| s.parse().expect("--sizes: comma-separated integers"))
                    .collect();
            }
            "--workers" => {
                workers = arg_value(argv, &mut i, "--workers").parse().expect("--workers: integer");
            }
            "--top-k" => {
                policy.top_k =
                    arg_value(argv, &mut i, "--top-k").parse().expect("--top-k: integer");
            }
            "--reps" => {
                policy.reps = arg_value(argv, &mut i, "--reps").parse().expect("--reps: integer");
            }
            "--warmup" => {
                policy.warmup =
                    arg_value(argv, &mut i, "--warmup").parse().expect("--warmup: integer");
            }
            "--levels" => {
                levels = arg_value(argv, &mut i, "--levels").parse().expect("--levels: integer");
            }
            "--no-verify" => policy.verify = false,
            "--verify" => policy.verify = true,
            "--dtype" => dtype = parse_dtype(arg_value(argv, &mut i, "--dtype")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if sizes.is_empty() {
        eprintln!("explore requires --sizes N,N,...");
        std::process::exit(2);
    }

    let path = TuneStore::default_path();
    let mut store = TuneStore::load(&path);
    let tuner = Tuner::new(policy, workers, levels);
    if matches!(dtype, Dtype::F64 | Dtype::Both) {
        explore_one::<f64>(&tuner, &mut store, &sizes);
    }
    if matches!(dtype, Dtype::F32 | Dtype::Both) {
        explore_one::<f32>(&tuner, &mut store, &sizes);
    }
    store.save(&path).expect("save tune store");
    println!("saved {} ({} decisions)", path.display(), store.decision_count());
}

fn explore_one<T: GemmScalar>(tuner: &Tuner, store: &mut TuneStore, sizes: &[usize]) {
    // Calibrated params from the store when fingerprint-fresh, else a
    // fresh measurement recorded into *this* store — the caller saves it,
    // so the calibration and the decisions land in the file together.
    let arch = fmm_tune::ensure_calibrated::<T>(store);
    for &n in sizes {
        let outcome = tuner.explore::<T>(store, &arch, n, n, n);
        print_outcome(&outcome);
    }
}

fn print_outcome(o: &ExploreOutcome) {
    println!(
        "{} {}³ (class {}, {} workers): winner {} at {:.2} GFLOP/s (model picked {})",
        o.dtype,
        o.shape.0,
        o.class.label(),
        o.workers,
        o.winner,
        o.winner_gflops,
        o.model_pick
    );
    for c in &o.candidates {
        println!(
            "    {:<32} {:>9.3} ms measured | {:>9.3} ms predicted | {:>7.2} GFLOP/s",
            c.label,
            c.secs * 1e3,
            c.predicted_secs * 1e3,
            c.gflops
        );
    }
    if let Some(err) = o.verified_error {
        println!("    verified against blocked GEMM: rel error {err:.3e}");
    }
}

fn cmd_show() {
    let path = TuneStore::default_path();
    let store = TuneStore::load(&path);
    println!("store: {}", path.display());
    println!(
        "{} calibrated dtype(s), {} decision(s)",
        store.calibrated_count(),
        store.decision_count()
    );
    println!("{}", store.to_json_string());
}

fn cmd_clear() {
    let path = TuneStore::default_path();
    match std::fs::remove_file(&path) {
        Ok(()) => println!("removed {}", path.display()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("nothing to clear at {}", path.display());
        }
        Err(e) => {
            eprintln!("failed to remove {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
