//! `fmm-tune` — host calibration, empirical autotuning, and the persistent
//! decision store that closes the model→reality loop.
//!
//! The paper's selection story (§6, Figs. 9–10) is a *model* ranking
//! validated against *empirical* timings: the model proposes, measurement
//! disposes. The rest of this workspace only implemented the first half —
//! every engine routed with [`ArchParams::paper_machine`], the 2017
//! experiment machine's constants. This crate supplies the second half as
//! a three-stage pipeline:
//!
//! 1. **Calibration** ([`host`]) — run the `fmm_model::calibrate`
//!    microbenchmarks on the running machine, per dtype and honoring the
//!    dtype's runtime-selected micro-kernel, to fit a host-specific
//!    [`ArchParams`]. [`host_arch`] caches the result process-wide and
//!    persists it in the tune store, so the measurement cost is paid once
//!    per machine, not per process.
//! 2. **Empirical exploration** ([`tuner`]) — for a problem shape, take
//!    the top-K candidates from the model ranking
//!    (`rank_candidates`/`rank_scheduled`, GEMM included) and time each
//!    for real through pooled [`FmmContext`](fmm_core::FmmContext)/
//!    [`SchedContext`](fmm_sched::SchedContext)s, under a configurable
//!    warmup/rep/outlier [`TunePolicy`]. The measured winner — not the
//!    model's guess — is what gets remembered.
//! 3. **Persistence** ([`store`]) — a versioned [`TuneStore`] (serialized
//!    with `fmm_core::json`, default location `~/.cache/fmm/tune.json`,
//!    `FMM_TUNE_STORE` override) holding the calibrated `ArchParams` plus
//!    the winning decision per (shape class, dtype, workers), each entry
//!    fingerprinted by micro-kernel name so a different CPU (or kernel
//!    selection) invalidates stale decisions instead of replaying them.
//!
//! `fmm-engine` consumes the store through `Routing::Tuned`: stored shape
//! classes route with **zero model re-ranking**, misses fall back to model
//! routing, and both paths are counted (`EngineStats::{tuned_hits,
//! tuned_misses}`). The `fmm_tune` CLI binary (`calibrate`, `explore`,
//! `show`, `clear`) makes the store operable from a shell.
//!
//! # Example
//!
//! ```no_run
//! use fmm_tune::{host_arch, ShapeClass, TuneStore, Tuner};
//!
//! let arch = host_arch::<f64>(); // calibrated for this machine, cached
//! let mut store = TuneStore::load_default();
//! let tuner = Tuner::sequential();
//! let outcome = tuner.explore::<f64>(&mut store, &arch, 512, 512, 512);
//! println!("{}: {:.1} GFLOP/s", outcome.winner, outcome.winner_gflops);
//! store.save(&TuneStore::default_path()).ok();
//! ```

pub mod host;
pub mod store;
pub mod tuner;

pub use fmm_model::ArchParams;
pub use host::{calibrate_host, ensure_calibrated, host_arch, QUICK_SCALE};
pub use store::{
    explore_command, kernel_fingerprint, ShapeClass, TuneStore, TunedChoice, TunedDecision,
    MAX_DECISION_LEVELS, SCHEMA_VERSION,
};
pub use tuner::{CandidateTiming, ExploreOutcome, TunePolicy, Tuner};
