//! Host calibration: measure this machine once, remember it forever.
//!
//! [`calibrate_host`] runs the `fmm_model::calibrate` microbenchmarks with
//! the dtype's runtime-selected micro-kernel and fits [`ArchParams`].
//! [`host_arch`] wraps it in two cache layers: a process-wide map (so an
//! engine construction never measures twice in one process) and the
//! persistent [`TuneStore`] (so a machine measures once *ever*, keyed by
//! dtype and fingerprinted by kernel name — a new CPU re-calibrates).
//!
//! Calibration is a performance input, never a correctness input, so every
//! failure path degrades instead of erroring: an unwritable store skips
//! persistence, implausible measurements (e.g. a timer quantized to zero
//! under a noisy CI neighbor) fall back to [`ArchParams::paper_machine`],
//! and `FMM_TUNE_CALIBRATE=0` skips measurement entirely.

use crate::store::{kernel_fingerprint, TuneStore};
use fmm_gemm::{BlockingParams, GemmScalar};
use fmm_model::calibrate::{fit, measure_t};
use fmm_model::ArchParams;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Measurement scale used for implicit (engine-construction-time)
/// calibration: large enough for stable rates, small enough (~tens of
/// milliseconds) that the one-time cost is invisible next to real traffic.
/// The CLI defaults to a fuller `1.0` scale.
pub const QUICK_SCALE: f64 = 0.25;

/// Environment variable: set to `0` to skip host measurement and use the
/// paper machine's constants (deterministic runs, constrained sandboxes).
pub const CALIBRATE_ENV: &str = "FMM_TUNE_CALIBRATE";

/// Measure this host with `T`'s selected kernel and fit [`ArchParams`].
/// The result is validated; implausible measurements fall back to
/// [`ArchParams::paper_machine`] rather than poisoning every ranking.
pub fn calibrate_host<T: GemmScalar>(params: &BlockingParams, scale: f64) -> ArchParams {
    let arch = fit(&measure_t::<T>(params, scale), params);
    if arch.validate().is_ok() {
        arch
    } else {
        ArchParams::paper_machine()
    }
}

/// Calibrated [`ArchParams`] for this host and dtype, resolved in order:
/// process cache → persistent store (kernel fingerprint must match) →
/// fresh [`calibrate_host`] measurement at [`QUICK_SCALE`] (persisted
/// best-effort). Always returns validated parameters.
pub fn host_arch<T: GemmScalar>() -> ArchParams {
    static CACHE: OnceLock<Mutex<BTreeMap<&'static str, ArchParams>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut cache = cache.lock().expect("host-arch cache poisoned");
    if let Some(&arch) = cache.get(T::NAME) {
        return arch;
    }
    let arch = resolve::<T>();
    cache.insert(T::NAME, arch);
    arch
}

fn resolve<T: GemmScalar>() -> ArchParams {
    if std::env::var(CALIBRATE_ENV).as_deref() == Ok("0") {
        return ArchParams::paper_machine();
    }
    // The fingerprint carries the build profile (see `kernel_fingerprint`),
    // so a release process never replays parameters measured by a debug
    // build and vice versa.
    let kernel = kernel_fingerprint::<T>();
    let path = TuneStore::default_path();
    let store = TuneStore::load(&path);
    if let Some(arch) = store.calibrated(T::NAME, &kernel) {
        if arch.validate().is_ok() {
            return arch;
        }
    }
    let arch = calibrate_host::<T>(&BlockingParams::default(), QUICK_SCALE);
    // Persist best-effort: reload first so concurrent tuners' decisions
    // are not clobbered, and ignore I/O failures (read-only homes, etc.).
    let mut fresh = TuneStore::load(&path);
    fresh.set_calibrated(T::NAME, &kernel, arch);
    let _ = fresh.save(&path);
    arch
}

/// Calibrated [`ArchParams`] for `T` from `store` if fingerprint-fresh;
/// otherwise measure at [`QUICK_SCALE`] and record the result **into
/// `store`** (the caller owns persistence). This is the store-coherent
/// form explore flows need: resolving through [`host_arch`] instead would
/// persist the calibration to the default path behind the caller's back
/// and then lose it when the caller saves its own (stale) snapshot.
pub fn ensure_calibrated<T: GemmScalar>(store: &mut TuneStore) -> ArchParams {
    let kernel = kernel_fingerprint::<T>();
    if let Some(arch) = store.calibrated(T::NAME, &kernel) {
        if arch.validate().is_ok() {
            return arch;
        }
    }
    let arch = calibrate_host::<T>(&BlockingParams::default(), QUICK_SCALE);
    store.set_calibrated(T::NAME, &kernel, arch);
    arch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_arch_is_cached_and_valid() {
        let a = host_arch::<f64>();
        a.validate().expect("host arch must validate");
        let b = host_arch::<f64>();
        assert_eq!(a, b, "second call served from the process cache");
    }
}
