//! TuneStore persistence contract: lossless round-trips, graceful
//! degradation on every corruption mode, fingerprint invalidation.

use fmm_core::{Strategy, Variant};
use fmm_model::ArchParams;
use fmm_tune::{ShapeClass, TuneStore, TunedChoice, TunedDecision};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fmm-tune-test-{tag}-{}.json", std::process::id()))
}

fn populated_store() -> TuneStore {
    let mut store = TuneStore::new();
    store.set_calibrated("f64", "avx512f_8x4", ArchParams::paper_machine());
    store.set_calibrated("f32", "avx2_fma_16x4", ArchParams::paper_machine().with_elem_bytes(4));
    store.set_decision(
        ShapeClass::of(512, 512, 512),
        "f64",
        1,
        "avx512f_8x4",
        TunedDecision {
            choice: TunedChoice::Fmm {
                dims: (2, 2, 2),
                levels: 2,
                variant: Variant::Abc,
                strategy: Strategy::Dfs,
            },
            gflops: 24.5,
        },
    );
    store.set_decision(
        ShapeClass::of(256, 256, 256),
        "f64",
        4,
        "avx512f_8x4",
        TunedDecision {
            choice: TunedChoice::Fmm {
                dims: (3, 3, 3),
                levels: 1,
                variant: Variant::Ab,
                strategy: Strategy::Hybrid,
            },
            gflops: 61.125,
        },
    );
    store.set_decision(
        ShapeClass::of(96, 4096, 96),
        "f32",
        1,
        "avx2_fma_16x4",
        TunedDecision { choice: TunedChoice::Gemm, gflops: 39.0 },
    );
    store
}

#[test]
fn save_load_is_lossless() {
    let store = populated_store();
    let path = temp_path("roundtrip");
    store.save(&path).expect("save");
    let loaded = TuneStore::load(&path);
    assert_eq!(loaded, store, "byte-for-byte semantic round-trip");
    // And the text itself re-parses to the same value (serializer and
    // parser agree on the schema).
    assert_eq!(TuneStore::from_json_str(&store.to_json_string()).unwrap(), store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_corruption_mode_degrades_to_empty_never_panics() {
    let path = temp_path("corrupt");
    let full = populated_store().to_json_string();
    let cases: Vec<String> = vec![
        String::new(),                           // empty file
        "not json at all".to_string(),           // garbage
        full[..full.len() / 2].to_string(),      // truncated mid-document
        "{\"schema_version\": 999}".to_string(), // future schema
        "{\"decisions\": {}}".to_string(),       // missing version stamp
        // Right shape, nonsense decision payload.
        "{\"schema_version\": 1, \"calibrated\": {}, \"decisions\": \
         {\"f64/512x512x512/w1\": {\"kernel\": \"k\", \"gflops\": 1.0, \"kind\": \"bogus\"}}}"
            .to_string(),
        // Parseable JSON whose levels would panic plan composition.
        "{\"schema_version\": 1, \"calibrated\": {}, \"decisions\": \
         {\"f64/512x512x512/w1\": {\"kernel\": \"k\", \"gflops\": 1.0, \"kind\": \"fmm\", \
          \"dims\": [2, 2, 2], \"levels\": 0, \"variant\": \"ABC\", \"strategy\": \"DFS\"}}}"
            .to_string(),
    ];
    for (i, text) in cases.iter().enumerate() {
        std::fs::write(&path, text).unwrap();
        let store = TuneStore::load(&path);
        assert!(store.is_empty(), "case {i} must degrade to an empty store");
    }
    std::fs::remove_file(&path).ok();
    // Missing file entirely.
    assert!(TuneStore::load(&path).is_empty());
}

#[test]
fn fingerprint_mismatch_ignores_stale_decisions() {
    let path = temp_path("fingerprint");
    populated_store().save(&path).expect("save");
    let loaded = TuneStore::load(&path);
    let class = ShapeClass::of(512, 512, 512);
    assert!(loaded.decision(class, "f64", 1, "avx512f_8x4").is_some(), "matching kernel hits");
    assert!(
        loaded.decision(class, "f64", 1, "portable_8x4").is_none(),
        "a different machine's kernel must not replay this machine's winners"
    );
    // Same for calibrated params.
    assert!(loaded.calibrated("f64", "avx512f_8x4").is_some());
    assert!(loaded.calibrated("f64", "portable_8x4").is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_creates_parent_directories_atomically() {
    let dir = std::env::temp_dir().join(format!("fmm-tune-test-dir-{}", std::process::id()));
    let path = dir.join("nested").join("tune.json");
    let store = populated_store();
    store.save(&path).expect("save with directory creation");
    assert_eq!(TuneStore::load(&path), store);
    std::fs::remove_dir_all(&dir).ok();
}
