//! Tuner end-to-end: exploration times real candidates, verifies the
//! winner, and records a fingerprinted decision the engine can consume.

use fmm_gemm::BlockingParams;
use fmm_model::ArchParams;
use fmm_tune::{kernel_fingerprint, ShapeClass, TunePolicy, TuneStore, Tuner};

fn quick_tuner(workers: usize) -> Tuner {
    Tuner::with_registry(
        TunePolicy { top_k: 3, warmup: 1, reps: 2, trim: 0.5, verify: true },
        BlockingParams::tiny(),
        fmm_core::registry::Registry::shared(),
        workers,
        1,
    )
}

#[test]
fn explore_records_a_verified_winner_for_f64() {
    let tuner = quick_tuner(1);
    let mut store = TuneStore::new();
    let arch = ArchParams::paper_machine();
    let outcome = tuner.explore::<f64>(&mut store, &arch, 96, 96, 96);

    assert_eq!(outcome.dtype, "f64");
    assert_eq!(outcome.workers, 1);
    assert_eq!(outcome.class, ShapeClass::of(96, 96, 96));
    assert!(!outcome.candidates.is_empty());
    for pair in outcome.candidates.windows(2) {
        assert!(pair[0].secs <= pair[1].secs, "candidates sorted fastest first");
    }
    assert_eq!(outcome.winner, outcome.candidates[0].label);
    assert!(outcome.winner_gflops > 0.0);
    let err = outcome.verified_error.expect("policy.verify was on");
    assert!(err < <f64 as fmm_dense::Scalar>::accuracy_bound(96, 1));

    let stored = store
        .decision(outcome.class, "f64", 1, &kernel_fingerprint::<f64>())
        .expect("winner persisted under the current kernel fingerprint");
    assert!((stored.gflops - outcome.winner_gflops).abs() < 1e-12);
}

#[test]
fn explore_keys_by_dtype_and_workers() {
    let tuner = quick_tuner(1);
    let mut store = TuneStore::new();
    let arch = ArchParams::paper_machine();
    tuner.explore::<f32>(&mut store, &arch, 64, 64, 64);
    let class = ShapeClass::of(64, 64, 64);
    let f32_kernel = kernel_fingerprint::<f32>();
    assert!(store.decision(class, "f32", 1, &f32_kernel).is_some());
    assert!(
        store.decision(class, "f64", 1, &kernel_fingerprint::<f64>()).is_none(),
        "an f32 exploration must not answer f64 routing"
    );
    assert!(store.decision(class, "f32", 4, &f32_kernel).is_none(), "worker count is in the key");
}
