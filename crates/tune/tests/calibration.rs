//! Calibration coverage: `fit` recovers known synthetic measurements, and
//! real host calibration always yields validating parameters (the CI
//! matrix runs this at both 1 and 4 workers).

use fmm_gemm::BlockingParams;
use fmm_model::calibrate::{fit, Measurements};
use fmm_model::predict::predict_gemm;
use fmm_model::ArchParams;
use fmm_tune::{calibrate_host, host_arch};

/// `fit` inverts the model: synthetic measurements generated from known
/// `(tau_a, tau_b, lambda)` are recovered within tolerance across the
/// admissible lambda range.
#[test]
fn fit_recovers_known_synthetic_measurements() {
    let params = BlockingParams::default();
    for lambda in [0.55, 0.7, 0.82, 0.95] {
        let truth = ArchParams { lambda, ..ArchParams::paper_machine() };
        let (m, k, n) = (4000, 256, 4000); // memory-sensitive shape
        let meas = Measurements {
            compute_gflops: truth.peak_gflops(),
            bandwidth_gbs: 8.0 / truth.tau_b / 1e9,
            reference_gemm: (m, k, n, predict_gemm(m, k, n, &truth).total),
        };
        let fitted = fit(&meas, &params);
        assert!((fitted.tau_a - truth.tau_a).abs() / truth.tau_a < 1e-9, "lambda={lambda}");
        assert!((fitted.tau_b - truth.tau_b).abs() / truth.tau_b < 1e-9, "lambda={lambda}");
        assert!((fitted.lambda - lambda).abs() < 0.02, "lambda={lambda}: fitted {}", fitted.lambda);
        fitted.validate().unwrap();
    }
}

/// Real (small-scale) host calibration produces validating parameters for
/// both dtypes — under every worker count CI runs this suite at.
#[test]
fn calibrated_params_validate_on_this_host() {
    let params = BlockingParams::default();
    let f64_arch = calibrate_host::<f64>(&params, 0.05);
    f64_arch.validate().expect("f64 host calibration must validate");
    assert!(f64_arch.peak_gflops() > 0.0);
    let f32_arch = calibrate_host::<f32>(&params, 0.05);
    f32_arch.validate().expect("f32 host calibration must validate");
}

/// The cached host-arch entry point always returns validating parameters
/// and is stable across calls within a process.
#[test]
fn host_arch_is_valid_and_stable() {
    let a = host_arch::<f64>();
    a.validate().unwrap();
    assert_eq!(a, host_arch::<f64>());
    let a32 = host_arch::<f32>();
    a32.validate().unwrap();
}
