//! Recursive block storage indexing (Morton-like ordering, paper §3.3).
//!
//! An L-level algorithm partitions each operand into a
//! `∏m̃_l x ∏k̃_l` grid whose submatrices carry a *single* flat index: at
//! each level the sub-blocks are numbered row-major, and levels compose by
//! digit nesting (Figure 3 of the paper shows the `<2,2>`, three-level
//! case). The flat index is what the Kronecker-product coefficient rows
//! refer to, so this mapping is load-bearing for multi-level correctness.
//!
//! Because every level splits its parent evenly, a flat index corresponds to
//! a contiguous `(rows/∏m̃) x (cols/∏k̃)` submatrix; this module computes
//! the `(block_row, block_col)` coordinates of that submatrix.

/// Per-level grid shapes, outermost level first, e.g. `[(2,2), (3,2)]` for
/// a two-level `<2,·,2>` then `<3,·,2>` partition of one operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockGrid {
    levels: Vec<(usize, usize)>,
    total_rows: usize,
    total_cols: usize,
}

impl BlockGrid {
    /// Build from per-level `(rows, cols)` grid shapes.
    pub fn new(levels: Vec<(usize, usize)>) -> Self {
        assert!(levels.iter().all(|&(r, c)| r >= 1 && c >= 1), "grid dims must be positive");
        let total_rows = levels.iter().map(|l| l.0).product();
        let total_cols = levels.iter().map(|l| l.1).product();
        Self { levels, total_rows, total_cols }
    }

    /// Total block rows `∏ rows_l`.
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    /// Total block columns `∏ cols_l`.
    pub fn cols(&self) -> usize {
        self.total_cols
    }

    /// Number of blocks (`rows() * cols()`), the range of flat indices.
    pub fn len(&self) -> usize {
        self.total_rows * self.total_cols
    }

    /// True when the grid has a single block.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a recursive-block flat index to `(block_row, block_col)`.
    ///
    /// The flat index is read as nested digits: the most significant digit
    /// is the row-major position within the outermost grid, and so on
    /// inward. Row/column coordinates accumulate per level.
    pub fn coords(&self, flat: usize) -> (usize, usize) {
        assert!(flat < self.len().max(1), "flat index {flat} out of range");
        let mut row = 0;
        let mut col = 0;
        let mut rem = flat;
        // Compute the digit at each level, outermost first.
        let mut radix: usize = self.levels.iter().map(|&(r, c)| r * c).product();
        for &(r, c) in &self.levels {
            radix /= r * c;
            let digit = rem / radix;
            rem %= radix;
            row = row * r + digit / c;
            col = col * c + digit % c;
        }
        (row, col)
    }

    /// Inverse of [`BlockGrid::coords`].
    pub fn flat(&self, row: usize, col: usize) -> usize {
        assert!(row < self.total_rows && col < self.total_cols, "block coords out of range");
        let mut flat = 0;
        let mut rr = row;
        let mut cc = col;
        // Extract digits innermost-first, then weight them outermost-first.
        let mut digits = Vec::with_capacity(self.levels.len());
        for &(r, c) in self.levels.iter().rev() {
            digits.push((rr % r) * c + (cc % c));
            rr /= r;
            cc /= c;
        }
        for (&(r, c), &digit) in self.levels.iter().zip(digits.iter().rev()) {
            flat = flat * (r * c) + digit;
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_is_row_major() {
        let g = BlockGrid::new(vec![(2, 3)]);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 3);
        let expect = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)];
        for (flat, &coords) in expect.iter().enumerate() {
            assert_eq!(g.coords(flat), coords, "flat={flat}");
            assert_eq!(g.flat(coords.0, coords.1), flat);
        }
    }

    #[test]
    fn paper_figure_3_three_level_2x2() {
        // Figure 3: m̃ = k̃ = 2, three levels; an 8x8 block grid where e.g.
        // the first block row reads 0 1 4 5 16 17 20 21.
        let g = BlockGrid::new(vec![(2, 2), (2, 2), (2, 2)]);
        assert_eq!(g.rows(), 8);
        assert_eq!(g.cols(), 8);
        let first_row: Vec<usize> = (0..8).map(|c| g.flat(0, c)).collect();
        assert_eq!(first_row, vec![0, 1, 4, 5, 16, 17, 20, 21]);
        let second_row: Vec<usize> = (0..8).map(|c| g.flat(1, c)).collect();
        assert_eq!(second_row, vec![2, 3, 6, 7, 18, 19, 22, 23]);
        // Bottom-right block of the figure is 63.
        assert_eq!(g.flat(7, 7), 63);
        assert_eq!(g.coords(63), (7, 7));
    }

    #[test]
    fn mixed_radix_two_level() {
        // Level 0: 2x3 grid; level 1: 3x2 grid -> 6x6 blocks.
        let g = BlockGrid::new(vec![(2, 3), (3, 2)]);
        assert_eq!(g.rows(), 6);
        assert_eq!(g.cols(), 6);
        // Flat 0..6 walk the first outer block's inner grid row-major.
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(1), (0, 1));
        assert_eq!(g.coords(2), (1, 0));
        assert_eq!(g.coords(5), (2, 1));
        // Flat 6 starts outer block (0, 1): columns shift by inner cols = 2.
        assert_eq!(g.coords(6), (0, 2));
    }

    #[test]
    fn coords_flat_roundtrip_exhaustive() {
        for levels in [
            vec![(2, 2)],
            vec![(3, 2), (2, 4)],
            vec![(2, 3), (3, 3), (2, 2)],
            vec![(1, 5)],
            vec![(4, 1), (1, 3)],
        ] {
            let g = BlockGrid::new(levels.clone());
            for flat in 0..g.len() {
                let (r, c) = g.coords(flat);
                assert!(r < g.rows() && c < g.cols());
                assert_eq!(g.flat(r, c), flat, "levels={levels:?} flat={flat}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_out_of_range_panics() {
        let g = BlockGrid::new(vec![(2, 2)]);
        g.coords(4);
    }
}
