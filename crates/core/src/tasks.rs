//! Task decomposition of a composed plan for the BFS/DFS/hybrid schedulers.
//!
//! The paper parallelizes only *inside* each block product (loop-3 data
//! parallelism, §5.1); Benson & Ballard (PPoPP 2015) show that fanning the
//! `R_L` submultiplications out as *tasks* (BFS), or mixing task and data
//! parallelism (hybrid), dominates for small-to-medium problems. This
//! module defines the strategy vocabulary and computes, for a given core
//! problem, the per-task workspace shapes a scheduler must carve — the
//! execution itself lives in `fmm-sched`, which stays dependency-light by
//! reading everything it needs from here.

use crate::executor::{ArenaLayout, Variant};
use crate::indexing::BlockGrid;
use crate::plan::FmmPlan;

/// How a scheduler maps an [`FmmPlan`]'s submultiplications onto workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Depth-first: the `R_L` products run sequentially, each block
    /// product data-parallel across workers (the paper's §5.1 scheme).
    Dfs,
    /// Breadth-first: all `R_L` products fan out as tasks, each computing
    /// its `M_r` into a task-private workspace region, followed by a merge
    /// phase accumulating the `W`-side combinations into `C`.
    Bfs,
    /// BFS across the `R_1` level-1 products, DFS (sequential execution of
    /// the remaining levels) within each task.
    Hybrid,
}

impl Strategy {
    /// All strategies, DFS (the sequential-products baseline) first.
    pub const ALL: [Strategy; 3] = [Strategy::Dfs, Strategy::Bfs, Strategy::Hybrid];

    /// Display name matching Benson–Ballard's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Dfs => "DFS",
            Strategy::Bfs => "BFS",
            Strategy::Hybrid => "Hybrid",
        }
    }

    /// How many tasks this strategy fans out for `plan` (1 for DFS: the
    /// products stay sequential).
    pub fn task_count(self, plan: &FmmPlan) -> usize {
        match self {
            Strategy::Dfs => 1,
            Strategy::Bfs => plan.rank(),
            Strategy::Hybrid => plan.first_level().rank(),
        }
    }
}

/// Per-task workspace layout for BFS execution of `plan` as `variant` on a
/// core problem `(m, k, n)` (dimensions divisible by the plan's aggregate
/// partition dims).
///
/// Every BFS task must materialize its `M_r` — the multi-destination
/// scatter of the ABC variant cannot run concurrently, because distinct
/// products update overlapping sets of `C` blocks. The AB and ABC variants
/// still fold the operand sums into packing (no `T_A`/`T_B`); Naive
/// materializes them per task.
pub fn bfs_task_layout(
    variant: Variant,
    plan: &FmmPlan,
    m: usize,
    k: usize,
    n: usize,
) -> ArenaLayout {
    let (mt, kt, nt) = plan.partition_dims();
    let (bm, bk, bn) = (m / mt, k / kt, n / nt);
    match variant {
        Variant::Naive => ArenaLayout { ta: (bm, bk), tb: (bk, bn), mr: (bm, bn) },
        Variant::Ab | Variant::Abc => ArenaLayout { ta: (0, 0), tb: (0, 0), mr: (bm, bn) },
    }
}

/// Per-task workspace layout for hybrid execution: each level-1 task
/// materializes its operand sums `T_A = Σ U₁[i,r]·A_i`, `T_B = Σ V₁[j,r]·B_j`
/// and its product `M_r = T_A·T_B` (computed depth-first with the plan's
/// [`FmmPlan::inner_plan`]), all at level-1 block granularity.
pub fn hybrid_task_layout(plan: &FmmPlan, m: usize, k: usize, n: usize) -> ArenaLayout {
    let (m1, k1, n1) = plan.first_level().dims();
    let (bm, bk, bn) = (m / m1, k / k1, n / n1);
    ArenaLayout { ta: (bm, bk), tb: (bk, bn), mr: (bm, bn) }
}

/// The level-1 block grids of the three operands — what the hybrid
/// scheduler slices `A`, `B`, `C` by (one partition level, row-major flat
/// order), as opposed to the composed plan's full recursive grids.
pub fn level1_grids(plan: &FmmPlan) -> (BlockGrid, BlockGrid, BlockGrid) {
    let (m1, k1, n1) = plan.first_level().dims();
    (BlockGrid::new(vec![(m1, k1)]), BlockGrid::new(vec![(k1, n1)]), BlockGrid::new(vec![(m1, n1)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::strassen;

    #[test]
    fn strategy_names_and_task_counts() {
        let two = FmmPlan::uniform(strassen(), 2);
        assert_eq!(Strategy::Dfs.name(), "DFS");
        assert_eq!(Strategy::Bfs.name(), "BFS");
        assert_eq!(Strategy::Hybrid.name(), "Hybrid");
        assert_eq!(Strategy::Dfs.task_count(&two), 1);
        assert_eq!(Strategy::Bfs.task_count(&two), 49);
        assert_eq!(Strategy::Hybrid.task_count(&two), 7);
    }

    #[test]
    fn bfs_layout_always_materializes_mr() {
        let plan = FmmPlan::new(vec![strassen()]);
        let (m, k, n) = (16, 12, 20);
        for variant in Variant::ALL {
            let l = bfs_task_layout(variant, &plan, m, k, n);
            assert_eq!(l.mr, (8, 10), "every BFS task owns an M_r");
        }
        let naive = bfs_task_layout(Variant::Naive, &plan, m, k, n);
        assert_eq!(naive.ta, (8, 6));
        assert_eq!(naive.tb, (6, 10));
        let abc = bfs_task_layout(Variant::Abc, &plan, m, k, n);
        assert_eq!(abc.ta, (0, 0), "AB/ABC fold operand sums into packing");
    }

    #[test]
    fn hybrid_layout_uses_level1_blocks() {
        let plan = FmmPlan::uniform(strassen(), 2);
        // Level-1 blocks are halves, not the composed plan's quarters.
        let l = hybrid_task_layout(&plan, 32, 32, 32);
        assert_eq!(l.ta, (16, 16));
        assert_eq!(l.tb, (16, 16));
        assert_eq!(l.mr, (16, 16));
        let (a, b, c) = level1_grids(&plan);
        assert_eq!((a.rows(), a.cols()), (2, 2));
        assert_eq!((b.rows(), b.cols()), (2, 2));
        assert_eq!((c.rows(), c.cols()), (2, 2));
    }
}
