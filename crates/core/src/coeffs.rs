//! Coefficient matrices for `[[U, V, W]]` triples.
//!
//! Coefficients of practical FMM algorithms are *dyadic rationals* (integers
//! divided by powers of two: every published algorithm the paper's Figure 2
//! cites uses values like ±1, ±1/2, ±1/4). Dyadic rationals of modest size
//! are exactly representable in `f64`, and — crucially — sums and products
//! of a bounded number of them are computed *exactly* in `f64` arithmetic.
//! This lets [`crate::brent`] verify algorithms with exact `==` comparisons
//! instead of tolerances.

use crate::json;

/// Largest denominator (as a power of two) accepted for a coefficient.
pub const MAX_DEN_POW2: u32 = 20;

/// True if `x` is a dyadic rational `n / 2^e` with `e <= MAX_DEN_POW2` and
/// `|n|` small enough that triple products and R-fold sums stay exact.
pub fn is_dyadic(x: f64) -> bool {
    if !x.is_finite() {
        return false;
    }
    let scaled = x * f64::from(1u32 << MAX_DEN_POW2);
    scaled == scaled.trunc() && scaled.abs() < 2.0_f64.powi(40)
}

/// A dense row-major coefficient matrix.
///
/// For a `<m̃, k̃, ñ>` algorithm of rank `R`: `U` is `(m̃·k̃) x R`, `V` is
/// `(k̃·ñ) x R`, `W` is `(m̃·ñ) x R`; column `r` holds the coefficients of
/// the `r`-th sub-multiplication (paper eq. (3)).
#[derive(Clone, Debug, PartialEq)]
pub struct CoeffMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CoeffMatrix {
    /// Build from row-major data. Panics unless every entry is dyadic.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CoeffMatrix: wrong data length");
        for (idx, &x) in data.iter().enumerate() {
            assert!(is_dyadic(x), "CoeffMatrix: non-dyadic coefficient {x} at index {idx}");
        }
        Self { rows, cols, data }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the rank `R` for U/V/W matrices).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "CoeffMatrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Set entry `(i, j)`; the value must be dyadic.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "CoeffMatrix index out of bounds");
        assert!(is_dyadic(v), "CoeffMatrix: non-dyadic coefficient {v}");
        self.data[i * self.cols + j] = v;
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Registry-format JSON value: `{"rows": .., "cols": .., "data": [..]}`.
    pub fn to_json_value(&self) -> json::Value {
        json::Value::Object(std::collections::BTreeMap::from([
            ("rows".to_string(), json::Value::Int(self.rows as i64)),
            ("cols".to_string(), json::Value::Int(self.cols as i64)),
            (
                "data".to_string(),
                json::Value::Array(self.data.iter().map(|&x| json::Value::Number(x)).collect()),
            ),
        ]))
    }

    /// Parse the registry-format JSON value, re-validating every entry
    /// (non-dyadic coefficients are rejected, as in [`CoeffMatrix::from_rows`]).
    pub fn from_json_value(v: &json::Value) -> Result<Self, String> {
        let rows = v.get("rows")?.as_usize()?;
        let cols = v.get("cols")?.as_usize()?;
        let data: Vec<f64> =
            v.get("data")?.as_array()?.iter().map(|x| x.as_number()).collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(format!(
                "CoeffMatrix JSON: {rows}x{cols} needs {} entries, got {}",
                rows * cols,
                data.len()
            ));
        }
        for (idx, &x) in data.iter().enumerate() {
            if !is_dyadic(x) {
                return Err(format!("CoeffMatrix JSON: non-dyadic coefficient {x} at index {idx}"));
            }
        }
        Ok(Self::from_rows(rows, cols, data))
    }

    /// Number of non-zero entries (`nnz` in the paper's performance model).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Number of non-zero entries in column `j`.
    pub fn nnz_col(&self, j: usize) -> usize {
        (0..self.rows).filter(|&i| self.at(i, j) != 0.0).count()
    }

    /// Iterate the non-zero `(row, value)` pairs of column `j`.
    pub fn col_nonzeros(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(j < self.cols, "column out of bounds");
        (0..self.rows).filter_map(move |i| {
            let v = self.data[i * self.cols + j];
            (v != 0.0).then_some((i, v))
        })
    }

    /// Iterate the non-zero `(col, value)` pairs of row `i` — for a `W`
    /// matrix, the products contributing to destination block `i` (what a
    /// BFS merge phase walks per output block).
    pub fn row_nonzeros(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row out of bounds");
        (0..self.cols).filter_map(move |j| {
            let v = self.data[i * self.cols + j];
            (v != 0.0).then_some((j, v))
        })
    }

    /// Kronecker product `self ⊗ other`:
    /// `(X ⊗ Y)[p*r2 + v, q*c2 + w] = X[p, q] * Y[v, w]`.
    ///
    /// This is the paper's multi-level composition operator (§3.4): the
    /// coefficients of a two-level algorithm are `U ⊗ U'`, `V ⊗ V'`,
    /// `W ⊗ W'`.
    pub fn kron(&self, other: &CoeffMatrix) -> CoeffMatrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        let mut out = CoeffMatrix::zeros(rows, cols);
        for p in 0..self.rows {
            for q in 0..self.cols {
                let x = self.at(p, q);
                if x == 0.0 {
                    continue;
                }
                for v in 0..other.rows {
                    for w in 0..other.cols {
                        let y = other.at(v, w);
                        if y != 0.0 {
                            out.data[(p * other.rows + v) * cols + (q * other.cols + w)] = x * y;
                        }
                    }
                }
            }
        }
        out
    }

    /// The `1 x 1` identity for Kronecker folding.
    pub fn kron_identity() -> CoeffMatrix {
        CoeffMatrix::from_rows(1, 1, vec![1.0])
    }

    /// Horizontal concatenation `[self | other]` (same row count).
    pub fn hcat(&self, other: &CoeffMatrix) -> CoeffMatrix {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = CoeffMatrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * cols + j] = self.at(i, j);
            }
            for j in 0..other.cols {
                out.data[i * cols + self.cols + j] = other.at(i, j);
            }
        }
        out
    }

    /// Apply a row permutation/re-map: `out[i, :] = self[map(i), :]` where
    /// `out` has `new_rows` rows. Used by the symmetry transforms, which
    /// re-flatten grid indices.
    pub fn remap_rows(&self, new_rows: usize, map: impl Fn(usize) -> usize) -> CoeffMatrix {
        let mut out = CoeffMatrix::zeros(new_rows, self.cols);
        for i in 0..new_rows {
            let src = map(i);
            assert!(src < self.rows, "remap_rows: source row {src} out of bounds");
            for j in 0..self.cols {
                out.data[i * self.cols + j] = self.at(src, j);
            }
        }
        out
    }

    /// Embed into a taller matrix: `out[row_map(i), col0 + j] = self[i, j]`,
    /// other entries zero. Used by direct-sum composition.
    pub fn embed(
        &self,
        new_rows: usize,
        new_cols: usize,
        col0: usize,
        row_map: impl Fn(usize) -> usize,
    ) -> CoeffMatrix {
        assert!(col0 + self.cols <= new_cols, "embed: columns out of range");
        let mut out = CoeffMatrix::zeros(new_rows, new_cols);
        for i in 0..self.rows {
            let dst = row_map(i);
            assert!(dst < new_rows, "embed: destination row out of bounds");
            for j in 0..self.cols {
                out.data[dst * new_cols + col0 + j] = self.at(i, j);
            }
        }
        out
    }

    /// Entrywise sum of two embedded matrices (entries must not overlap
    /// unless one side is zero — checked).
    pub fn merge_disjoint(&self, other: &CoeffMatrix) -> CoeffMatrix {
        assert_eq!(self.rows, other.rows, "merge: rows differ");
        assert_eq!(self.cols, other.cols, "merge: cols differ");
        let mut out = self.clone();
        for idx in 0..self.data.len() {
            let (a, b) = (self.data[idx], other.data[idx]);
            assert!(a == 0.0 || b == 0.0, "merge_disjoint: overlapping non-zeros at {idx}");
            out.data[idx] = a + b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_accepts_common_coefficients() {
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 2.0, 0.0625, -1.5] {
            assert!(is_dyadic(v), "{v}");
        }
    }

    #[test]
    fn dyadic_rejects_irrationals_and_thirds() {
        assert!(!is_dyadic(1.0 / 3.0));
        assert!(!is_dyadic(std::f64::consts::PI));
        assert!(!is_dyadic(f64::NAN));
        assert!(!is_dyadic(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "non-dyadic")]
    fn from_rows_rejects_nondyadic() {
        CoeffMatrix::from_rows(1, 1, vec![0.3]);
    }

    #[test]
    fn nnz_counts() {
        let m = CoeffMatrix::from_rows(2, 3, vec![1.0, 0.0, -1.0, 0.0, 0.5, 0.0]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.nnz_col(0), 1);
        assert_eq!(m.nnz_col(1), 1);
        assert_eq!(m.nnz_col(2), 1);
        let nz: Vec<_> = m.col_nonzeros(0).collect();
        assert_eq!(nz, vec![(0, 1.0)]);
    }

    #[test]
    fn kron_small_example() {
        let x = CoeffMatrix::from_rows(2, 1, vec![1.0, -1.0]);
        let y = CoeffMatrix::from_rows(1, 2, vec![2.0, 0.5]);
        let k = x.kron(&y);
        assert_eq!(k.rows(), 2);
        assert_eq!(k.cols(), 2);
        assert_eq!(k.at(0, 0), 2.0);
        assert_eq!(k.at(0, 1), 0.5);
        assert_eq!(k.at(1, 0), -2.0);
        assert_eq!(k.at(1, 1), -0.5);
    }

    #[test]
    fn kron_index_identity_matches_definition() {
        // (X ⊗ Y)[p*r2+v, q*c2+w] == X[p,q] * Y[v,w] for a random-ish pair.
        let x = CoeffMatrix::from_rows(2, 3, vec![1.0, 0.0, -0.5, 2.0, 1.0, 0.0]);
        let y = CoeffMatrix::from_rows(3, 2, vec![1.0, -1.0, 0.0, 0.5, 2.0, 1.0]);
        let k = x.kron(&y);
        for p in 0..2 {
            for q in 0..3 {
                for v in 0..3 {
                    for w in 0..2 {
                        assert_eq!(k.at(p * 3 + v, q * 2 + w), x.at(p, q) * y.at(v, w));
                    }
                }
            }
        }
    }

    #[test]
    fn kron_with_identity_is_noop() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = CoeffMatrix::kron_identity();
        assert_eq!(x.kron(&id), x);
        assert_eq!(id.kron(&x), x);
    }

    #[test]
    fn kron_nnz_is_product_of_nnz() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, 0.0, -1.0, 1.0]);
        let y = CoeffMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 1.0]);
        assert_eq!(x.kron(&y).nnz(), x.nnz() * y.nnz());
    }

    #[test]
    fn hcat_concatenates_columns() {
        let x = CoeffMatrix::from_rows(2, 1, vec![1.0, 2.0]);
        let y = CoeffMatrix::from_rows(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let h = x.hcat(&y);
        assert_eq!(h.cols(), 3);
        assert_eq!(h.at(0, 0), 1.0);
        assert_eq!(h.at(0, 1), 3.0);
        assert_eq!(h.at(1, 2), 6.0);
    }

    #[test]
    fn remap_rows_permutes() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = x.remap_rows(2, |i| 1 - i);
        assert_eq!(y.at(0, 0), 3.0);
        assert_eq!(y.at(1, 1), 2.0);
    }

    #[test]
    fn embed_places_block() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let e = x.embed(4, 5, 3, |i| i + 2);
        assert_eq!(e.at(2, 3), 1.0);
        assert_eq!(e.at(3, 4), 4.0);
        assert_eq!(e.nnz(), 4);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn merge_disjoint_detects_overlap() {
        let x = CoeffMatrix::from_rows(1, 1, vec![1.0]);
        let _ = x.merge_disjoint(&x);
    }

    #[test]
    fn json_roundtrip() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, -0.5, 0.0, 1.0]);
        let text = crate::json::to_string_pretty(&x.to_json_value());
        let back = CoeffMatrix::from_json_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn json_rejects_wrong_data_length() {
        let x = CoeffMatrix::from_rows(2, 2, vec![1.0, -0.5, 0.0, 1.0]);
        let text =
            crate::json::to_string_pretty(&x.to_json_value()).replace("\"rows\": 2", "\"rows\": 3");
        assert!(CoeffMatrix::from_json_value(&crate::json::parse(&text).unwrap()).is_err());
    }
}
