//! The named algorithm family (paper Figure 2).
//!
//! The registry holds one verified algorithm per `<m̃,k̃,ñ>` shape the paper
//! evaluates. Provenance is threefold (see DESIGN.md §7):
//!
//! 1. **Paper-exact**: Strassen's `[[U,V,W]]` transcribed from eq. (4), plus
//!    Winograd's variant.
//! 2. **Constructive**: direct sums / nesting / symmetry orientations of the
//!    base algorithms ([`crate::compose`]). These reproduce the published
//!    ranks for the `{2,2,3}`, `{2,2,4}` and `{2,2,5}` permutation families.
//! 3. **Discovered**: algorithms found by the `fmm-search` crate's ALS +
//!    rounding pipeline, stored as JSON in `registry/data/` and re-verified
//!    at load time.
//!
//! Every entry passes the exact Brent-equation check; shapes where the best
//! verified rank exceeds the published rank are reported as such by
//! [`paper_table`] (`r_paper` vs. the registry rank).

mod discovered;
mod family;
mod strassen;

pub use self::strassen::{strassen, winograd};
pub use discovered::discovered_algorithms;
pub use family::best_constructive;

use crate::algorithm::FmmAlgorithm;
use crate::compose;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One row of the paper's Figure 2 table.
#[derive(Clone, Debug)]
pub struct PaperEntry {
    /// Partition dimensions `<m̃, k̃, ñ>`.
    pub dims: (usize, usize, usize),
    /// Rank reported in the paper (Fig. 2, column `R`).
    pub r_paper: usize,
    /// Source cited by the paper for this algorithm.
    pub source: &'static str,
}

/// The 23 `<m̃,k̃,ñ>` algorithms of the paper's Figure 2, with their
/// published ranks.
pub const PAPER_TABLE: &[PaperEntry] = &[
    PaperEntry { dims: (2, 2, 2), r_paper: 7, source: "Strassen [11]" },
    PaperEntry { dims: (2, 3, 2), r_paper: 11, source: "Benson-Ballard [1]" },
    PaperEntry { dims: (2, 3, 4), r_paper: 20, source: "Benson-Ballard [1]" },
    PaperEntry { dims: (2, 4, 3), r_paper: 20, source: "Ballard et al. [10]" },
    PaperEntry { dims: (2, 5, 2), r_paper: 18, source: "Ballard et al. [10]" },
    PaperEntry { dims: (3, 2, 2), r_paper: 11, source: "Ballard et al. [10]" },
    PaperEntry { dims: (3, 2, 3), r_paper: 15, source: "Ballard et al. [10]" },
    PaperEntry { dims: (3, 2, 4), r_paper: 20, source: "Ballard et al. [10]" },
    PaperEntry { dims: (3, 3, 2), r_paper: 15, source: "Ballard et al. [10]" },
    PaperEntry { dims: (3, 3, 3), r_paper: 23, source: "Smirnov [12]" },
    PaperEntry { dims: (3, 3, 6), r_paper: 40, source: "Smirnov [12]" },
    PaperEntry { dims: (3, 4, 2), r_paper: 20, source: "Benson-Ballard [1]" },
    PaperEntry { dims: (3, 4, 3), r_paper: 29, source: "Smirnov [12]" },
    PaperEntry { dims: (3, 5, 3), r_paper: 36, source: "Smirnov [12]" },
    PaperEntry { dims: (3, 6, 3), r_paper: 40, source: "Smirnov [12]" },
    PaperEntry { dims: (4, 2, 2), r_paper: 14, source: "Ballard et al. [10]" },
    PaperEntry { dims: (4, 2, 3), r_paper: 20, source: "Benson-Ballard [1]" },
    PaperEntry { dims: (4, 2, 4), r_paper: 26, source: "Ballard et al. [10]" },
    PaperEntry { dims: (4, 3, 2), r_paper: 20, source: "Ballard et al. [10]" },
    PaperEntry { dims: (4, 3, 3), r_paper: 29, source: "Ballard et al. [10]" },
    PaperEntry { dims: (4, 4, 2), r_paper: 26, source: "Ballard et al. [10]" },
    PaperEntry { dims: (5, 2, 2), r_paper: 18, source: "Ballard et al. [10]" },
    PaperEntry { dims: (6, 3, 3), r_paper: 40, source: "Smirnov [12]" },
];

/// A catalog of verified algorithms, keyed by partition dims. For each shape
/// the registry keeps the lowest-rank algorithm known to it.
pub struct Registry {
    by_dims: BTreeMap<(usize, usize, usize), Arc<FmmAlgorithm>>,
}

impl Registry {
    /// Build the full registry: paper-exact + discovered + constructive
    /// algorithms for the 23 paper shapes (and a few bonus shapes).
    pub fn standard() -> Self {
        let mut reg = Self { by_dims: BTreeMap::new() };
        reg.insert(strassen());
        // Discovered algorithms (ALS + rounding, re-verified at load).
        for algo in discovered_algorithms() {
            reg.insert_with_orientations(&algo);
        }
        // Constructive fallbacks for every paper shape not already covered
        // by something at least as good (one shared memo across shapes).
        let targets: Vec<_> = PAPER_TABLE.iter().map(|e| e.dims).collect();
        for candidate in family::best_constructive_many(&targets, &reg) {
            reg.insert(candidate);
        }
        reg
    }

    /// A globally shared instance (built once; construction verifies every
    /// algorithm, which costs a few milliseconds).
    pub fn shared() -> Arc<Registry> {
        static SHARED: Mutex<Option<Arc<Registry>>> = Mutex::new(None);
        let mut guard = SHARED.lock();
        guard.get_or_insert_with(|| Arc::new(Registry::standard())).clone()
    }

    /// Build a registry from an explicit list of algorithms (no discovered
    /// or constructive entries added). Useful for tests and for exploring
    /// what the constructive generator achieves from a given base set.
    pub fn from_algorithms(algos: Vec<FmmAlgorithm>) -> Self {
        let mut reg = Self { by_dims: BTreeMap::new() };
        for a in algos {
            reg.insert(a);
        }
        reg
    }

    /// Insert `algo` if it improves on (or first covers) its shape.
    pub fn insert(&mut self, algo: FmmAlgorithm) {
        let dims = algo.dims();
        match self.by_dims.get(&dims) {
            Some(existing) if existing.rank() <= algo.rank() => {}
            _ => {
                self.by_dims.insert(dims, Arc::new(algo));
            }
        }
    }

    /// Insert `algo` and every symmetry orientation of it.
    pub fn insert_with_orientations(&mut self, algo: &FmmAlgorithm) {
        for o in compose::all_orientations(algo) {
            self.insert(o);
        }
    }

    /// Best known algorithm for exactly these partition dims.
    pub fn get(&self, dims: (usize, usize, usize)) -> Option<Arc<FmmAlgorithm>> {
        self.by_dims.get(&dims).cloned()
    }

    /// All registered algorithms, ordered by dims.
    pub fn all(&self) -> impl Iterator<Item = &Arc<FmmAlgorithm>> {
        self.by_dims.values()
    }

    /// Number of registered shapes.
    pub fn len(&self) -> usize {
        self.by_dims.len()
    }

    /// True when no algorithms are registered.
    pub fn is_empty(&self) -> bool {
        self.by_dims.is_empty()
    }

    /// The paper's Figure 2 rows paired with this registry's algorithm for
    /// each shape (`(entry, algorithm)`).
    pub fn paper_rows(&self) -> Vec<(PaperEntry, Arc<FmmAlgorithm>)> {
        PAPER_TABLE
            .iter()
            .map(|e| {
                let algo = self
                    .get(e.dims)
                    .unwrap_or_else(|| panic!("registry must cover paper shape {:?}", e.dims));
                (e.clone(), algo)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_all_paper_shapes() {
        let reg = Registry::standard();
        for entry in PAPER_TABLE {
            let algo = reg.get(entry.dims).unwrap_or_else(|| panic!("missing {:?}", entry.dims));
            assert_eq!(algo.dims(), entry.dims);
            // Faster than classical for all paper shapes.
            assert!(
                algo.rank() < algo.classical_rank(),
                "{:?}: rank {} not fast",
                entry.dims,
                algo.rank()
            );
            // Never better than the published rank (that would be a new
            // scientific result, i.e. almost surely a bug).
            assert!(
                algo.rank() >= entry.r_paper,
                "{:?}: rank {} beats published {}",
                entry.dims,
                algo.rank(),
                entry.r_paper
            );
        }
    }

    #[test]
    fn registry_reproduces_published_ranks_for_strassen_family() {
        let reg = Registry::standard();
        for (dims, r) in [
            ((2, 2, 2), 7),
            ((2, 3, 2), 11),
            ((3, 2, 2), 11),
            ((2, 5, 2), 18),
            ((5, 2, 2), 18),
            ((4, 2, 2), 14),
        ] {
            assert_eq!(reg.get(dims).unwrap().rank(), r, "dims {dims:?}");
        }
    }

    #[test]
    fn insert_keeps_best_rank() {
        let mut reg = Registry { by_dims: BTreeMap::new() };
        reg.insert(crate::compose::classical(2, 2, 2)); // rank 8
        assert_eq!(reg.get((2, 2, 2)).unwrap().rank(), 8);
        reg.insert(strassen()); // rank 7 improves
        assert_eq!(reg.get((2, 2, 2)).unwrap().rank(), 7);
        reg.insert(crate::compose::classical(2, 2, 2)); // rank 8 ignored
        assert_eq!(reg.get((2, 2, 2)).unwrap().rank(), 7);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn shared_registry_is_memoized() {
        let a = Registry::shared();
        let b = Registry::shared();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn paper_rows_returns_23_entries() {
        let reg = Registry::standard();
        assert_eq!(reg.paper_rows().len(), 23);
    }
}
