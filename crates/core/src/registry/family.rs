//! Constructive fallback algorithms for every paper shape.
//!
//! For shapes whose published rank is attainable by composition (the
//! `{2,2,3}` / `{2,2,4}` / `{2,2,5}` permutation families), the construction
//! *is* the registry algorithm. For shapes that require numerically
//! discovered decompositions (Smirnov / Benson–Ballard), these constructions
//! are the fallback used when no discovered algorithm is available; they are
//! valid FMM algorithms of somewhat higher rank, and the benchmark harness
//! reports both ranks side by side.
//!
//! Construction is memoized per [`Builder`]: every composition is verified
//! once against the Brent equations (via `FmmAlgorithm::new`) and reused.

use super::strassen::strassen;
use super::Registry;
use crate::algorithm::FmmAlgorithm;
use crate::compose::{all_orientations, classical, nest, stack_k, stack_m, stack_n};
use std::collections::HashMap;
use std::sync::Arc;

/// Memoizing constructive-algorithm builder over a base registry.
pub struct Builder {
    memo: HashMap<(usize, usize, usize), Arc<FmmAlgorithm>>,
}

impl Builder {
    /// Seed the memo with every registry entry *and all its symmetry
    /// orientations*, so discovered low-rank algorithms propagate into the
    /// compositions of larger shapes.
    pub fn new(reg: &Registry) -> Self {
        let mut memo: HashMap<_, Arc<FmmAlgorithm>> = HashMap::new();
        let mut remember = |algo: FmmAlgorithm| {
            let dims = algo.dims();
            match memo.get(&dims) {
                Some(prev) if prev.rank() <= algo.rank() => {}
                _ => {
                    memo.insert(dims, Arc::new(algo));
                }
            }
        };
        remember(strassen());
        for entry in reg.all() {
            for o in all_orientations(entry) {
                remember(o);
            }
        }
        Self { memo }
    }

    /// Best memoized/constructed algorithm for `dims`.
    pub fn block(&mut self, dims: (usize, usize, usize)) -> Arc<FmmAlgorithm> {
        if let Some(hit) = self.memo.get(&dims) {
            return hit.clone();
        }
        let built = Arc::new(self.build(dims));
        self.memo.insert(dims, built.clone());
        built
    }

    /// Construct the best candidate for `dims` from splits and nestings.
    fn build(&mut self, dims: (usize, usize, usize)) -> FmmAlgorithm {
        let (m, k, n) = dims;
        assert!(m >= 1 && k >= 1 && n >= 1, "partition dims must be positive");
        let mut best = classical(m, k, n);
        let consider = |cand: FmmAlgorithm, best: &mut FmmAlgorithm| {
            if cand.rank() < best.rank() {
                *best = cand;
            }
        };
        // Direct-sum splits along each dimension.
        if m >= 2 {
            for m1 in 1..=m / 2 {
                let a = self.block((m1, k, n));
                let b = self.block((m - m1, k, n));
                consider(stack_m(&a, &b), &mut best);
            }
        }
        if k >= 2 {
            for k1 in 1..=k / 2 {
                let a = self.block((m, k1, n));
                let b = self.block((m, k - k1, n));
                consider(stack_k(&a, &b), &mut best);
            }
        }
        if n >= 2 {
            for n1 in 1..=n / 2 {
                let a = self.block((m, k, n1));
                let b = self.block((m, k, n - n1));
                consider(stack_n(&a, &b), &mut best);
            }
        }
        // Kronecker nestings over non-trivial factorizations.
        for (m1, m2) in factor_pairs(m) {
            for (k1, k2) in factor_pairs(k) {
                for (n1, n2) in factor_pairs(n) {
                    if m1 * k1 * n1 == 1 || m2 * k2 * n2 == 1 {
                        continue;
                    }
                    let outer = self.block((m1, k1, n1));
                    let inner = self.block((m2, k2, n2));
                    consider(nest(&outer, &inner), &mut best);
                }
            }
        }
        best
    }
}

/// Best constructive algorithm for partition dims `target`, consulting
/// `reg` for already-registered building blocks.
pub fn best_constructive(target: (usize, usize, usize), reg: &Registry) -> FmmAlgorithm {
    let mut builder = Builder::new(reg);
    let algo = builder.block(target);
    (*algo).clone().with_name(format!("<{},{},{}>", target.0, target.1, target.2))
}

/// Build constructive algorithms for many targets sharing one memo.
pub fn best_constructive_many(
    targets: &[(usize, usize, usize)],
    reg: &Registry,
) -> Vec<FmmAlgorithm> {
    let mut builder = Builder::new(reg);
    targets
        .iter()
        .map(|&t| {
            let algo = builder.block(t);
            (*algo).clone().with_name(format!("<{},{},{}>", t.0, t.1, t.2))
        })
        .collect()
}

fn factor_pairs(x: usize) -> Vec<(usize, usize)> {
    (1..=x).filter(|d| x.is_multiple_of(*d)).map(|d| (d, x / d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal registry holding only Strassen, so these tests measure
    /// what the constructive generator achieves on its own.
    fn empty_reg() -> Registry {
        Registry::from_algorithms(vec![strassen()])
    }

    #[test]
    fn constructive_ranks_for_strassen_family() {
        let reg = empty_reg();
        let targets = [
            ((2, 2, 3), 11),
            ((2, 3, 2), 11),
            ((3, 2, 2), 11),
            ((2, 2, 4), 14),
            ((4, 2, 2), 14),
            ((2, 2, 5), 18),
            ((2, 5, 2), 18),
            ((5, 2, 2), 18),
        ];
        let dims: Vec<_> = targets.iter().map(|t| t.0).collect();
        let algos = best_constructive_many(&dims, &reg);
        for ((dims, want), algo) in targets.iter().zip(algos.iter()) {
            assert_eq!(algo.dims(), *dims);
            assert!(algo.rank() <= *want, "{dims:?}: got rank {}, want <= {want}", algo.rank());
        }
    }

    #[test]
    fn constructive_never_worse_than_classical() {
        let reg = empty_reg();
        let dims: Vec<_> = super::super::PAPER_TABLE.iter().map(|e| e.dims).collect();
        let algos = best_constructive_many(&dims, &reg);
        for algo in algos {
            assert!(algo.rank() <= algo.classical_rank(), "{:?}", algo.dims());
        }
    }

    #[test]
    fn uneven_split_shapes_work() {
        let reg = empty_reg();
        let a = best_constructive((3, 3, 3), &reg);
        assert_eq!(a.dims(), (3, 3, 3));
        assert!(a.rank() < 27, "rank {}", a.rank());
    }

    #[test]
    fn builder_memoizes_blocks() {
        let reg = empty_reg();
        let mut b = Builder::new(&reg);
        let x = b.block((3, 3, 3));
        let y = b.block((3, 3, 3));
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn discovered_blocks_improve_compositions() {
        // Registering a better <2,2,3> (rank 11 vs classical 12) must make
        // the (2,2,6) composition at most 22 = 11 + 11.
        let reg = empty_reg();
        let mut b = Builder::new(&reg);
        let a226 = b.block((2, 2, 6));
        assert!(a226.rank() <= 22, "rank {}", a226.rank());
    }

    #[test]
    fn factor_pairs_enumerates_divisors() {
        assert_eq!(factor_pairs(6), vec![(1, 6), (2, 3), (3, 2), (6, 1)]);
        assert_eq!(factor_pairs(1), vec![(1, 1)]);
    }
}
