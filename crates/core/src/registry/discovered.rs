//! Algorithms discovered by the `fmm-search` ALS pipeline.
//!
//! Each JSON file under `registry/data/` serializes one
//! [`crate::algorithm::FmmAlgorithm`]. Files are embedded at compile time
//! and **re-verified against the Brent equations at load**, so a corrupted
//! or mis-discovered file cannot enter the registry: loading panics with the
//! offending file name, turning data corruption into a loud CI failure
//! (exercised by unit tests).

use crate::algorithm::FmmAlgorithm;

/// `(file name, JSON contents)` pairs embedded from `registry/data/`.
///
/// New discoveries are added here after `fmm-search` finds and verifies
/// them (see the `discover` example and EXPERIMENTS.md).
const DATA: &[(&str, &str)] = &[("mkn223_r11.json", include_str!("data/mkn223_r11.json"))];

/// Deserialize and re-verify every embedded algorithm.
pub fn discovered_algorithms() -> Vec<FmmAlgorithm> {
    DATA.iter()
        .map(|(name, json)| {
            FmmAlgorithm::from_json(json)
                .unwrap_or_else(|e| panic!("embedded algorithm {name} failed verification: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_embedded_algorithms_verify() {
        for algo in discovered_algorithms() {
            // from_json re-verifies; reaching here means all passed.
            assert!(algo.rank() > 0);
            assert!(algo.rank() <= algo.classical_rank());
        }
    }

    #[test]
    fn embedded_set_contains_the_223_seed() {
        let algos = discovered_algorithms();
        assert!(algos.iter().any(|a| a.dims() == (2, 2, 3) && a.rank() == 11));
    }
}
