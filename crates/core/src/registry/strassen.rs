//! The `<2,2,2>` rank-7 algorithms: Strassen (exactly as printed in the
//! paper's eq. (4)) and Winograd's 15-addition variant.

use crate::algorithm::FmmAlgorithm;
use crate::coeffs::CoeffMatrix;

/// One-level Strassen, with `[[U, V, W]]` transcribed verbatim from the
/// paper's equation (4) (which itself encodes the computations (2)).
pub fn strassen() -> FmmAlgorithm {
    #[rustfmt::skip]
    let u = CoeffMatrix::from_rows(4, 7, vec![
        1.0, 0.0, 1.0, 0.0, 1.0, -1.0, 0.0,
        0.0, 0.0, 0.0, 0.0, 1.0,  0.0, 1.0,
        0.0, 1.0, 0.0, 0.0, 0.0,  1.0, 0.0,
        1.0, 1.0, 0.0, 1.0, 0.0,  0.0, -1.0,
    ]);
    #[rustfmt::skip]
    let v = CoeffMatrix::from_rows(4, 7, vec![
        1.0, 1.0,  0.0, -1.0, 0.0, 1.0, 0.0,
        0.0, 0.0,  1.0,  0.0, 0.0, 1.0, 0.0,
        0.0, 0.0,  0.0,  1.0, 0.0, 0.0, 1.0,
        1.0, 0.0, -1.0,  0.0, 1.0, 0.0, 1.0,
    ]);
    #[rustfmt::skip]
    let w = CoeffMatrix::from_rows(4, 7, vec![
        1.0,  0.0, 0.0, 1.0, -1.0, 0.0, 1.0,
        0.0,  0.0, 1.0, 0.0,  1.0, 0.0, 0.0,
        0.0,  1.0, 0.0, 1.0,  0.0, 0.0, 0.0,
        1.0, -1.0, 1.0, 0.0,  0.0, 1.0, 0.0,
    ]);
    FmmAlgorithm::new("strassen", (2, 2, 2), u, v, w)
        .expect("Strassen's algorithm (paper eq. (4)) is valid")
}

/// Winograd's variant of Strassen: rank 7 with only 15 additions
/// (vs. Strassen's 18). Same `<2,2,2>` partition; different `[[U, V, W]]`.
///
/// Products (0-indexed quadrants `A0..A3`, `B0..B3`):
/// `M0 = A0·B0`, `M1 = A1·B2`, `M2 = (A0+A1-A2-A3)·B3`,
/// `M3 = A3·(B0-B1+B3-B2)`, `M4 = (A2+A3)·(B1-B0)`,
/// `M5 = (A2+A3-A0)·(B0-B1+B3)`, `M6 = (A0-A2)·(B3-B1)`.
pub fn winograd() -> FmmAlgorithm {
    #[rustfmt::skip]
    let u = CoeffMatrix::from_rows(4, 7, vec![
        1.0, 0.0,  1.0, 0.0,  0.0, -1.0,  1.0,
        0.0, 1.0,  1.0, 0.0,  0.0,  0.0,  0.0,
        0.0, 0.0, -1.0, 0.0,  1.0,  1.0, -1.0,
        0.0, 0.0, -1.0, 1.0,  1.0,  1.0,  0.0,
    ]);
    #[rustfmt::skip]
    let v = CoeffMatrix::from_rows(4, 7, vec![
        1.0, 0.0, 0.0,  1.0, -1.0,  1.0,  0.0,
        0.0, 0.0, 0.0, -1.0,  1.0, -1.0, -1.0,
        0.0, 1.0, 0.0, -1.0,  0.0,  0.0,  0.0,
        0.0, 0.0, 1.0,  1.0,  0.0,  1.0,  1.0,
    ]);
    #[rustfmt::skip]
    let w = CoeffMatrix::from_rows(4, 7, vec![
        1.0, 1.0, 0.0,  0.0, 0.0, 0.0, 0.0,
        1.0, 0.0, 1.0,  0.0, 1.0, 1.0, 0.0,
        1.0, 0.0, 0.0, -1.0, 0.0, 1.0, 1.0,
        1.0, 0.0, 0.0,  0.0, 1.0, 1.0, 1.0,
    ]);
    FmmAlgorithm::new("winograd", (2, 2, 2), u, v, w).expect("Winograd's Strassen variant is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strassen_is_valid_rank_7() {
        let s = strassen();
        assert_eq!(s.dims(), (2, 2, 2));
        assert_eq!(s.rank(), 7);
        assert!((s.speedup_per_level() - 8.0 / 7.0).abs() < 1e-15);
    }

    #[test]
    fn strassen_matches_paper_computations_eq2() {
        let s = strassen();
        // M1 = (A2 + A3)·B0; C2 += M1; C3 -= M1 (second row of eq. (2)).
        let u_col1: Vec<f64> = (0..4).map(|i| s.u().at(i, 1)).collect();
        assert_eq!(u_col1, vec![0.0, 0.0, 1.0, 1.0]);
        let v_col1: Vec<f64> = (0..4).map(|i| s.v().at(i, 1)).collect();
        assert_eq!(v_col1, vec![1.0, 0.0, 0.0, 0.0]);
        let w_col1: Vec<f64> = (0..4).map(|i| s.w().at(i, 1)).collect();
        assert_eq!(w_col1, vec![0.0, 0.0, 1.0, -1.0]);
    }

    #[test]
    fn winograd_is_valid_rank_7() {
        let wg = winograd();
        assert_eq!(wg.dims(), (2, 2, 2));
        assert_eq!(wg.rank(), 7);
    }

    #[test]
    fn winograd_differs_from_strassen_but_same_rank() {
        // Winograd's famous "15 additions" requires reusing common
        // subexpressions (S1..S4, T1..T4 are shared across products). In the
        // [[U,V,W]] representation — where each product packs its own
        // operand sums — Winograd actually has *more* non-zeros than
        // Strassen (42 vs 36), which is why the paper benchmarks Strassen's
        // coefficients. Both are rank 7.
        let s = strassen();
        let wg = winograd();
        assert_eq!(wg.rank(), s.rank());
        let nnz = |a: &FmmAlgorithm| a.u().nnz() + a.v().nnz() + a.w().nnz();
        assert_eq!(nnz(&s), 36);
        assert_eq!(nnz(&wg), 42);
    }
}
